//! Structured diagnostics for the solve layers.
//!
//! The SolveDB+ static analyzer (`solvedbplus-core::check`) and the
//! engine itself report model defects as [`Diagnostic`] values — a
//! stable `SD0xx` code, a severity, a one-line message and an optional
//! multi-line detail. Diagnostics travel on the result type
//! ([`crate::exec::ExecResult::warnings`]), across the wire protocol
//! (see `crates/server/PROTOCOL.md`) and render rustc-style in the
//! `solvedb` shell. The full catalogue lives in `DIAGNOSTICS.md` at the
//! repository root.

use crate::table::{Column, Schema, Table};
use crate::types::{DataType, Value};

/// How serious a diagnostic is.
///
/// `Error`-level diagnostics describe models that cannot solve as
/// written (the solver would fail at run time); they surface through
/// `EXPLAIN CHECK`. `Warning` and `Note` levels describe suspicious but
/// solvable models and are attached to successful results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    /// Lower-case name, as rendered in `error[SD004]: ...`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Wire encoding (stable across protocol versions).
    pub fn code(self) -> u8 {
        match self {
            Severity::Note => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }

    /// Inverse of [`Severity::code`]; unknown bytes decode as `Note` so
    /// newer peers never make a frame unreadable.
    pub fn from_code(c: u8) -> Severity {
        match c {
            2 => Severity::Error,
            1 => Severity::Warning,
            _ => Severity::Note,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from the pre-solve static analyzer (or the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable identifier, `SD001`..`SD012` today (see DIAGNOSTICS.md).
    pub code: String,
    pub severity: Severity,
    /// One-line summary of the finding.
    pub message: String,
    /// Optional elaboration: the offending construct, or a fix-it hint.
    pub detail: Option<String>,
}

impl Diagnostic {
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { code: code.into(), severity, message: message.into(), detail: None }
    }

    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, message)
    }

    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, message)
    }

    pub fn note(code: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Note, message)
    }

    pub fn with_detail(mut self, detail: impl Into<String>) -> Diagnostic {
        self.detail = Some(detail.into());
        self
    }
}

/// Rustc-style rendering:
///
/// ```text
/// warning[SD003]: decision column 'load' is never referenced by any rule
///   = note: unreferenced variables are pruned before solving (§4.3)
/// ```
impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(detail) = &self.detail {
            for line in detail.lines() {
                write!(f, "\n  = note: {line}")?;
            }
        }
        Ok(())
    }
}

/// Render a diagnostic list as a relation (`EXPLAIN CHECK` output):
/// columns `code`, `severity`, `message`, `detail`.
pub fn diagnostics_table(diags: &[Diagnostic]) -> Table {
    let schema = Schema::new(vec![
        Column::new("code", DataType::Text),
        Column::new("severity", DataType::Text),
        Column::new("message", DataType::Text),
        Column::new("detail", DataType::Text),
    ]);
    let rows = diags
        .iter()
        .map(|d| {
            vec![
                Value::Text(d.code.as_str().into()),
                Value::Text(d.severity.as_str().into()),
                Value::Text(d.message.as_str().into()),
                d.detail.as_deref().map_or(Value::Null, |s| Value::Text(s.into())),
            ]
        })
        .collect();
    Table::with_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_roundtrip_and_order() {
        for s in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_code(s.code()), s);
        }
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!(Severity::from_code(200), Severity::Note);
    }

    #[test]
    fn display_matches_rustc_shape() {
        let d = Diagnostic::warning("SD003", "decision column 'x' is never referenced")
            .with_detail("unused variables are pruned before solving");
        assert_eq!(
            d.to_string(),
            "warning[SD003]: decision column 'x' is never referenced\n  \
             = note: unused variables are pruned before solving"
        );
        let plain = Diagnostic::error("SD004", "constraint is trivially false");
        assert_eq!(plain.to_string(), "error[SD004]: constraint is trivially false");
    }

    #[test]
    fn diagnostics_table_shape() {
        let t = diagnostics_table(&[
            Diagnostic::warning("SD006", "objective has no decision variables"),
            Diagnostic::error("SD007", "two objectives").with_detail("drop one"),
        ]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.rows[0][3], Value::Null);
        assert_eq!(t.rows[1][0], Value::Text("SD007".into()));
    }
}
