//! Recursive-descent parser for the SolveDB+ SQL dialect.
//!
//! Covers a practical PostgreSQL subset (queries with CTEs incl.
//! `WITH RECURSIVE`, joins, LATERAL, subqueries, set operations, DML and
//! DDL) plus the SolveDB+ extensions of the paper: `SOLVESELECT`,
//! `SOLVEMODEL`, CDTEs with decision columns, `INLINE`, `MODELEVAL`,
//! named solver parameters (`p := expr`), comparison chains
//! (`0 <= x <= 5`) and the `<<` model-instantiation operator.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token};
use crate::types::{BinOp, DataType, UnOp};

/// Parse a single statement (trailing `;` allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat(&Token::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.peek() == &Token::Eof {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.eat(&Token::Semi) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Split a script into the SQL text of its individual statements
/// without parsing them: `;` separators are recognized lexically,
/// honouring single-quoted strings (with `''` escapes), double-quoted
/// identifiers, `--` line comments and `/* ... */` block comments
/// (nested, as the lexer accepts them). Used by clients that forward
/// statements one at a time — e.g. the `solvedb` shell talking to a
/// remote `solvedbd` — so the server sees the REPL's `;` semantics.
///
/// Pieces that are empty or all-whitespace/comments are dropped. An
/// unterminated string or comment yields the remainder as one piece
/// (the parser will report the real error).
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut pieces = Vec::new();
    let mut start = 0;
    for i in top_level_semicolons(sql) {
        pieces.push(&sql[start..i]);
        start = i + 1;
    }
    pieces.push(&sql[start..]);
    pieces
        .into_iter()
        .map(str::trim)
        .filter(|p| !p.is_empty() && !is_all_comments(p))
        .map(str::to_string)
        .collect()
}

/// True when the buffered input ends at a statement boundary: its last
/// top-level `;` is followed only by whitespace and comments. The
/// `solvedb` shell uses this instead of a raw `ends_with(';')` test, so
/// a trailing `-- comment`, a `;` inside a string literal, or an open
/// `/* block comment */` no longer confuses the continuation prompt.
pub fn script_complete(sql: &str) -> bool {
    match top_level_semicolons(sql).last() {
        Some(&i) => is_all_comments(&sql[i + 1..]),
        None => false,
    }
}

/// Byte offsets of every `;` that sits outside single-quoted strings
/// (with `''` escapes), double-quoted identifiers, `--` line comments
/// and (nested) `/* ... */` block comments. An unterminated string or
/// comment swallows the remainder, so no offsets are reported inside it.
fn top_level_semicolons(sql: &str) -> Vec<usize> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            i += 2; // '' escape
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                i = (i + 1).min(bytes.len());
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b';' => {
                out.push(i);
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// True when the piece tokenizes to nothing (whitespace/comments only).
fn is_all_comments(piece: &str) -> bool {
    matches!(tokenize(piece).as_deref(), Ok([Token::Eof]) | Ok([]))
}

/// Parse a complete query (SELECT / VALUES / WITH ...).
pub fn parse_query(sql: &str) -> Result<Query> {
    let mut p = Parser::new(sql)?;
    let q = p.parse_query()?;
    p.eat(&Token::Semi);
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone scalar expression (used in tests and by solvers).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Keywords that terminate an implicit (AS-less) alias position.
const RESERVED_AFTER_TABLE: &[&str] = &[
    "where",
    "group",
    "having",
    "order",
    "limit",
    "offset",
    "union",
    "intersect",
    "except",
    "on",
    "using",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "cross",
    "natural",
    "when",
    "then",
    "else",
    "end",
    "from",
    "as",
    "and",
    "or",
    "not",
    "minimize",
    "maximize",
    "subjectto",
    "inline",
    "with",
    "in",
    "is",
    "between",
    "like",
    "ilike",
    "returning",
    "set",
    "values",
    "lateral",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { toks: tokenize(sql)?, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek_at(&self, off: usize) -> &Token {
        self.toks.get(self.pos + off).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(format!("expected '{t}', found '{}'", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected keyword {}, found '{}'",
                kw.to_uppercase(),
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(Error::parse(format!("unexpected trailing input: '{}'", self.peek())))
        }
    }

    /// Any identifier (unquoted is already lower-cased by the lexer).
    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(Error::parse(format!("expected identifier, found '{other}'"))),
        }
    }

    /// Identifier usable as an implicit alias (not a reserved clause word).
    fn alias_ident(&mut self) -> Option<String> {
        match self.peek() {
            Token::Ident(s) if !RESERVED_AFTER_TABLE.contains(&s.as_str()) => {
                let s = s.clone();
                self.next();
                Some(s)
            }
            Token::QuotedIdent(s) => {
                let s = s.clone();
                self.next();
                Some(s)
            }
            _ => None,
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select")
            || self.peek_kw("values")
            || self.peek_kw("with")
            || self.peek_kw("table")
            || self.peek() == &Token::LParen
        {
            return Ok(Statement::Query(self.parse_query()?));
        }
        if self.peek_kw("solveselect") || self.peek_kw("solvemodel") {
            return Ok(Statement::Solve(self.parse_solve()?));
        }
        if self.eat_kw("explain") {
            // `EXPLAIN SCRIPT '<path or inline sql>'` — whole-script
            // static analysis (scriptcheck).
            if self.peek_kw("script") {
                if let Token::Str(s) = self.peek_at(1).clone() {
                    self.next(); // SCRIPT
                    self.next(); // the string literal
                    return Ok(Statement::ExplainScript { source: s });
                }
            }
            let mode = if self.eat_kw("check") {
                ExplainMode::Check
            } else if self.eat_kw("analyze") {
                ExplainMode::Analyze
            } else if self.eat_kw("presolve") {
                ExplainMode::Presolve
            } else {
                ExplainMode::Plan
            };
            if self.peek_kw("solveselect") || self.peek_kw("solvemodel") {
                return Ok(Statement::Explain { mode, stmt: Box::new(self.parse_solve()?) });
            }
            // Plain queries support EXPLAIN / EXPLAIN ANALYZE (logical
            // plan rendering); CHECK and PRESOLVE stay solve-only.
            if matches!(mode, ExplainMode::Plan | ExplainMode::Analyze) && self.starts_query_at(0) {
                return Ok(Statement::ExplainQuery {
                    analyze: mode == ExplainMode::Analyze,
                    query: Box::new(self.parse_query()?),
                });
            }
            return Err(Error::parse(format!(
                "EXPLAIN {}expects a {}SOLVESELECT or SOLVEMODEL statement, found '{}'",
                match mode {
                    ExplainMode::Plan => "",
                    ExplainMode::Check => "CHECK ",
                    ExplainMode::Analyze => "ANALYZE ",
                    ExplainMode::Presolve => "PRESOLVE ",
                },
                match mode {
                    ExplainMode::Plan | ExplainMode::Analyze => "query, ",
                    _ => "",
                },
                self.peek()
            )));
        }
        if self.eat_kw("modeleval") {
            self.expect(&Token::LParen)?;
            let select = self.parse_query()?;
            self.expect(&Token::RParen)?;
            self.expect_kw("in")?;
            self.expect(&Token::LParen)?;
            let model = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::ModelEval { select, model });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            let mut columns = Vec::new();
            // Disambiguate `(cols)` from `(SELECT ...)`.
            if self.peek() == &Token::LParen && !self.starts_query_at(1) {
                self.expect(&Token::LParen)?;
                loop {
                    columns.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            let source = self.parse_query()?;
            return Ok(Statement::Insert { table, columns, source });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&Token::Eq)?;
                let e = self.parse_expr()?;
                assignments.push((col, e));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let where_ = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::Update { table, assignments, where_ });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let where_ = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::Delete { table, where_ });
        }
        if self.eat_kw("create") {
            let or_replace = if self.eat_kw("or") {
                self.expect_kw("replace")?;
                true
            } else {
                false
            };
            if self.eat_kw("view") {
                let name = self.ident()?;
                self.expect_kw("as")?;
                let query = self.parse_query()?;
                return Ok(Statement::CreateView { name, or_replace, query });
            }
            // Accept and ignore TEMP/TEMPORARY.
            let _ = self.eat_kw("temp") || self.eat_kw("temporary");
            self.expect_kw("table")?;
            let if_not_exists = if self.eat_kw("if") {
                self.expect_kw("not")?;
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            if self.eat_kw("as") {
                let q = self.parse_query()?;
                return Ok(Statement::CreateTable {
                    name,
                    if_not_exists,
                    columns: vec![],
                    as_query: Some(q),
                });
            }
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = self.parse_type_name()?;
                // Ignore simple column constraints.
                loop {
                    if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                    } else if self.eat_kw("not") {
                        self.expect_kw("null")?;
                    } else if self.eat_kw("unique") || self.eat_kw("null") {
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef { name: cname, ty });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateTable { name, if_not_exists, columns, as_query: None });
        }
        if self.eat_kw("checkpoint") {
            return Ok(Statement::Checkpoint);
        }
        if self.eat_kw("set") {
            let name = self.ident()?;
            // Accept `SET x = v` and PostgreSQL-style `SET x TO v`.
            if !self.eat(&Token::Eq) {
                self.expect_kw("to")?;
            }
            let value = match self.next() {
                Token::Int(n) => n.to_string(),
                Token::Float(x) => x.to_string(),
                Token::Str(s) => s,
                Token::Ident(s) | Token::QuotedIdent(s) => s,
                other => {
                    return Err(Error::parse(format!(
                        "expected a value after SET, found '{other}'"
                    )))
                }
            };
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw("cancel") {
            let session = match self.next() {
                Token::Int(n) if n >= 0 => n as u64,
                other => {
                    return Err(Error::parse(format!(
                        "CANCEL expects a session id, found '{other}'"
                    )))
                }
            };
            return Ok(Statement::Cancel { session });
        }
        if self.eat_kw("drop") {
            let is_view = if self.eat_kw("view") {
                true
            } else {
                self.expect_kw("table")?;
                false
            };
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(if is_view {
                Statement::DropView { name, if_exists }
            } else {
                Statement::DropTable { name, if_exists }
            });
        }
        Err(Error::parse(format!("unexpected token '{}' at start of statement", self.peek())))
    }

    fn parse_type_name(&mut self) -> Result<DataType> {
        let first = self.ident()?;
        // Two-word types: double precision, character varying, bit varying.
        let name = match first.as_str() {
            "double" if self.peek_kw("precision") => {
                self.next();
                "double precision".to_string()
            }
            "character" if self.peek_kw("varying") => {
                self.next();
                "character varying".to_string()
            }
            "bit" if self.peek_kw("varying") => {
                self.next();
                "bit varying".to_string()
            }
            _ => first,
        };
        // Ignore type parameters like varchar(10) / numeric(10,2).
        if self.eat(&Token::LParen) {
            while self.peek() != &Token::RParen && self.peek() != &Token::Eof {
                self.next();
            }
            self.expect(&Token::RParen)?;
        }
        DataType::from_sql_name(&name)
    }

    // -- queries ------------------------------------------------------------

    /// Does a query start at lookahead offset `off`?
    fn starts_query_at(&self, off: usize) -> bool {
        let mut i = off;
        // Skip nested parens.
        while self.peek_at(i) == &Token::LParen {
            i += 1;
        }
        let t = self.peek_at(i);
        t.is_kw("select")
            || t.is_kw("values")
            || t.is_kw("with")
            || t.is_kw("table")
            || t.is_kw("solveselect")
            || t.is_kw("solvemodel")
    }

    fn parse_query(&mut self) -> Result<Query> {
        let mut with = Vec::new();
        let mut recursive = false;
        if self.eat_kw("with") {
            recursive = self.eat_kw("recursive");
            loop {
                let name = self.ident()?;
                let mut columns = Vec::new();
                if self.eat(&Token::LParen) {
                    loop {
                        columns.push(self.ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                self.expect_kw("as")?;
                self.expect(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                with.push(Cte { name, columns, query });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                let nulls_first = if self.eat_kw("nulls") {
                    if self.eat_kw("first") {
                        Some(true)
                    } else {
                        self.expect_kw("last")?;
                        Some(false)
                    }
                } else {
                    None
                };
                order_by.push(OrderItem { expr, desc, nulls_first });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("limit") {
                limit = Some(if self.eat_kw("all") {
                    Expr::Literal(Literal::Null)
                } else {
                    self.parse_expr()?
                });
            } else if self.eat_kw("offset") {
                offset = Some(self.parse_expr()?);
                let _ = self.eat_kw("rows") || self.eat_kw("row");
            } else {
                break;
            }
        }
        Ok(Query { with, recursive, body, order_by, limit, offset })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        loop {
            let op = if self.peek_kw("union") {
                SetOp::Union
            } else if self.peek_kw("except") {
                SetOp::Except
            } else {
                break;
            };
            self.next();
            let all = self.parse_set_quantifier()?;
            let right = self.parse_set_term()?;
            left = SetExpr::SetOp { op, all, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_primary()?;
        while self.peek_kw("intersect") {
            self.next();
            let all = self.parse_set_quantifier()?;
            let right = self.parse_set_primary()?;
            left = SetExpr::SetOp {
                op: SetOp::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_quantifier(&mut self) -> Result<bool> {
        if self.eat_kw("all") {
            Ok(true)
        } else {
            self.eat_kw("distinct");
            Ok(false)
        }
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr> {
        if self.peek_kw("solveselect") {
            let sv = self.parse_solve()?;
            return Ok(SetExpr::Solve(Box::new(sv)));
        }
        if self.eat(&Token::LParen) {
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(SetExpr::Query(Box::new(q)));
        }
        if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(SetExpr::Values(rows));
        }
        if self.eat_kw("table") {
            // `TABLE t` = `SELECT * FROM t`.
            let name = self.ident()?;
            let mut sel = Select::empty();
            sel.projection.push(SelectItem::Wildcard { qualifier: None });
            sel.from.push(TableRef::Named { name, alias: None });
            return Ok(SetExpr::Select(Box::new(sel)));
        }
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let _ = self.eat_kw("all");
        let mut projection = Vec::new();
        loop {
            if self.peek() == &Token::Star {
                self.next();
                projection.push(SelectItem::Wildcard { qualifier: None });
            } else if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                && self.peek_at(1) == &Token::Dot
                && self.peek_at(2) == &Token::Star
            {
                let q = self.ident()?;
                self.next(); // .
                self.next(); // *
                projection.push(SelectItem::Wildcard { qualifier: Some(q) });
            } else {
                let expr = self.parse_expr()?;
                let alias =
                    if self.eat_kw("as") { Some(self.ident()?) } else { self.alias_ident() };
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let where_ = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        let mut grouping_sets = None;
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            (group_by, grouping_sets) = self.parse_group_by()?;
        }
        let having = if self.eat_kw("having") { Some(self.parse_expr()?) } else { None };
        Ok(SetExpr::Select(Box::new(Select {
            distinct,
            projection,
            from,
            where_,
            group_by,
            grouping_sets,
            having,
        })))
    }

    /// Parse the list after `GROUP BY`: either a plain expression list or
    /// one of the grouping-set constructs. ROLLUP and CUBE are contextual
    /// keywords — recognized only when immediately followed by `(` — so
    /// `GROUP BY rollup` still groups by a column named `rollup`.
    fn parse_group_by(&mut self) -> Result<(Vec<Expr>, Option<Vec<Vec<usize>>>)> {
        if self.peek_kw("rollup") && self.peek_at(1) == &Token::LParen {
            self.next();
            let keys = self.parse_paren_expr_list()?;
            // ROLLUP(a, b) = GROUPING SETS ((a, b), (a), ())
            let sets: Vec<Vec<usize>> = (0..=keys.len()).rev().map(|k| (0..k).collect()).collect();
            return Ok((keys, Some(sets)));
        }
        if self.peek_kw("cube") && self.peek_at(1) == &Token::LParen {
            self.next();
            let keys = self.parse_paren_expr_list()?;
            let n = keys.len();
            if n > 12 {
                return Err(Error::parse("CUBE supports at most 12 columns"));
            }
            // CUBE(a, b) = GROUPING SETS ((a, b), (a), (b), ()), i.e. the
            // powerset in PostgreSQL's output order (descending masks).
            let sets: Vec<Vec<usize>> = (0..(1usize << n))
                .rev()
                .map(|mask| (0..n).filter(|&i| mask & (1 << (n - 1 - i)) != 0).collect())
                .collect();
            return Ok((keys, Some(sets)));
        }
        if self.peek_kw("grouping") && self.peek_at(1).is_kw("sets") {
            self.next();
            self.next();
            self.expect(&Token::LParen)?;
            // Each element is `(expr, ...)`, `()` or a bare expression
            // (a singleton set). Distinct key expressions are collected
            // in first-appearance order; sets index into that list.
            let mut keys: Vec<Expr> = Vec::new();
            let mut sets: Vec<Vec<usize>> = Vec::new();
            let key_index = |keys: &mut Vec<Expr>, e: Expr| -> usize {
                if let Some(i) = keys.iter().position(|k| *k == e) {
                    i
                } else {
                    keys.push(e);
                    keys.len() - 1
                }
            };
            loop {
                let mut set = Vec::new();
                if self.eat(&Token::LParen) {
                    if !self.eat(&Token::RParen) {
                        loop {
                            let idx = key_index(&mut keys, self.parse_expr()?);
                            if !set.contains(&idx) {
                                set.push(idx);
                            }
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                } else {
                    set.push(key_index(&mut keys, self.parse_expr()?));
                }
                sets.push(set);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok((keys, Some(sets)));
        }
        let mut group_by = Vec::new();
        loop {
            group_by.push(self.parse_expr()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok((group_by, None))
    }

    /// `( expr [, expr]* )` — shared by ROLLUP and CUBE.
    fn parse_paren_expr_list(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                out.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(out)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.eat_kw("left") {
                let _ = self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.eat_kw("right") {
                let _ = self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Right
            } else if self.eat_kw("full") {
                let _ = self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Full
            } else if self.eat_kw("join") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let constraint = if kind == JoinKind::Cross {
                JoinConstraint::None
            } else if self.eat_kw("on") {
                JoinConstraint::On(self.parse_expr()?)
            } else if self.eat_kw("using") {
                self.expect(&Token::LParen)?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                JoinConstraint::Using(cols)
            } else {
                JoinConstraint::None
            };
            left =
                TableRef::Join { left: Box::new(left), right: Box::new(right), kind, constraint };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        let lateral = self.eat_kw("lateral");
        if self.peek() == &Token::LParen {
            self.expect(&Token::LParen)?;
            // Either a derived table or a parenthesised join.
            if self.starts_query_at(0) {
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                let alias = self.parse_table_alias()?;
                return Ok(TableRef::Subquery { query: Box::new(q), lateral, alias });
            }
            let inner = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        if lateral {
            return Err(Error::parse("LATERAL must be followed by a subquery"));
        }
        let name = self.ident()?;
        let alias = self.parse_table_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn parse_table_alias(&mut self) -> Result<Option<TableAlias>> {
        let name = if self.eat_kw("as") { Some(self.ident()?) } else { self.alias_ident() };
        let Some(name) = name else { return Ok(None) };
        let mut columns = Vec::new();
        if self.peek() == &Token::LParen && !self.starts_query_at(1) {
            self.expect(&Token::LParen)?;
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Some(TableAlias { name, columns }))
    }

    // -- SOLVESELECT / SOLVEMODEL --------------------------------------------

    fn parse_solve(&mut self) -> Result<SolveStmt> {
        let kind = if self.eat_kw("solveselect") {
            SolveKind::Select
        } else {
            self.expect_kw("solvemodel")?;
            SolveKind::Model
        };
        let input = self.parse_dec_rel()?;
        let mut inlines = Vec::new();
        while self.eat_kw("inline") {
            loop {
                let alias = if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                    && self.peek_at(1).is_kw("as")
                {
                    let a = self.ident()?;
                    self.expect_kw("as")?;
                    Some(a)
                } else {
                    None
                };
                self.expect(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                inlines.push(InlineSpec { alias, query });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                ctes.push(self.parse_dec_rel()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut minimize = None;
        let mut maximize = None;
        loop {
            if self.eat_kw("minimize") {
                if minimize.is_some() {
                    return Err(Error::parse("duplicate MINIMIZE clause"));
                }
                self.expect(&Token::LParen)?;
                minimize = Some(self.parse_query()?);
                self.expect(&Token::RParen)?;
            } else if self.eat_kw("maximize") {
                if maximize.is_some() {
                    return Err(Error::parse("duplicate MAXIMIZE clause"));
                }
                self.expect(&Token::LParen)?;
                maximize = Some(self.parse_query()?);
                self.expect(&Token::RParen)?;
            } else {
                break;
            }
        }
        let mut subjectto = Vec::new();
        if self.eat_kw("subjectto") {
            loop {
                let alias = if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                    && self.peek_at(1).is_kw("as")
                {
                    let a = self.ident()?;
                    self.expect_kw("as")?;
                    Some(a)
                } else {
                    None
                };
                self.expect(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                subjectto.push(NamedRule { alias, query });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let using = if self.eat_kw("using") {
            let solver = self.ident()?;
            let method = if self.eat(&Token::Dot) { Some(self.ident()?) } else { None };
            let mut params = Vec::new();
            if self.eat(&Token::LParen) {
                if self.peek() != &Token::RParen {
                    loop {
                        let name = if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                            && self.peek_at(1) == &Token::Assign
                        {
                            let n = self.ident()?;
                            self.expect(&Token::Assign)?;
                            Some(n)
                        } else {
                            None
                        };
                        let value = self.parse_arg_value()?;
                        params.push((name, value));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
            }
            Some(SolverCall { solver, method, params })
        } else {
            None
        };
        Ok(SolveStmt { kind, input, inlines, ctes, minimize, maximize, subjectto, using })
    }

    /// `[alias[(cols|*)] AS] (query)` — a decision relation.
    fn parse_dec_rel(&mut self) -> Result<DecRel> {
        // Lookahead: does an alias come first?
        let has_alias = matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_));
        if !has_alias {
            self.expect(&Token::LParen)?;
            let query = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(DecRel { alias: None, dec_cols: DecCols::None, query });
        }
        let alias = self.ident()?;
        let mut dec_cols = DecCols::None;
        if self.eat(&Token::LParen) {
            if self.eat(&Token::Star) {
                dec_cols = DecCols::Star;
            } else if self.peek() != &Token::RParen {
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                dec_cols = DecCols::List(cols);
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_kw("as")?;
        self.expect(&Token::LParen)?;
        let query = self.parse_query()?;
        self.expect(&Token::RParen)?;
        Ok(DecRel { alias: Some(alias), dec_cols, query })
    }

    /// Argument value in function calls / solver params: an expression, or
    /// a bare `SELECT ...` treated as a scalar subquery (paper §3.2 style:
    /// `ar := SELECT ar FROM p`). The bare query's extent runs to the next
    /// comma or `)` at the current paren depth, so `f(a := SELECT x FROM t,
    /// b := 2)` splits correctly.
    fn parse_arg_value(&mut self) -> Result<Expr> {
        if self.peek_kw("select") || self.peek_kw("with") {
            let mut depth = 0usize;
            let mut end = self.pos;
            loop {
                match &self.toks[end] {
                    Token::Eof => break,
                    Token::LParen => depth += 1,
                    Token::RParen => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Token::Comma if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let mut slice: Vec<Token> = self.toks[self.pos..end].to_vec();
            slice.push(Token::Eof);
            let mut sub = Parser { toks: slice, pos: 0 };
            let q = sub.parse_query()?;
            sub.expect_eof()?;
            self.pos = end;
            return Ok(Expr::ScalarSubquery(Box::new(q)));
        }
        self.parse_expr()
    }

    // -- expressions ----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::BinOp { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("and") {
            let rhs = self.parse_not()?;
            lhs = Expr::BinOp { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::UnOp { op: UnOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    /// Comparisons, including SolveDB+ chains: `a <= b <= c` becomes a
    /// single `Chain` node (standard SQL would reject it).
    fn parse_comparison(&mut self) -> Result<Expr> {
        let first = self.parse_postfix_predicates()?;
        let mut rest: Vec<(BinOp, Expr)> = Vec::new();
        loop {
            let op = match self.peek() {
                Token::Eq => BinOp::Eq,
                Token::NotEq => BinOp::Ne,
                Token::Lt => BinOp::Lt,
                Token::LtEq => BinOp::Le,
                Token::Gt => BinOp::Gt,
                Token::GtEq => BinOp::Ge,
                _ => break,
            };
            self.next();
            let operand = self.parse_postfix_predicates()?;
            rest.push((op, operand));
        }
        let mut it = rest.into_iter();
        Ok(match (it.next(), it.next()) {
            (None, _) => first,
            (Some((op, rhs)), None) => Expr::BinOp { op, lhs: Box::new(first), rhs: Box::new(rhs) },
            (Some(a), Some(b)) => {
                let mut rest = vec![a, b];
                rest.extend(it);
                Expr::Chain { first: Box::new(first), rest }
            }
        })
    }

    /// IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE — tighter than
    /// comparisons, looser than arithmetic.
    fn parse_postfix_predicates(&mut self) -> Result<Expr> {
        let mut e = self.parse_misc_ops()?;
        loop {
            if self.eat_kw("is") {
                let negated = self.eat_kw("not");
                if self.eat_kw("null") {
                    e = Expr::IsNull { expr: Box::new(e), negated };
                } else if self.eat_kw("true") {
                    let cmp = Expr::BinOp {
                        op: BinOp::Eq,
                        lhs: Box::new(e),
                        rhs: Box::new(Expr::Literal(Literal::Bool(true))),
                    };
                    e = if negated {
                        Expr::UnOp { op: UnOp::Not, expr: Box::new(cmp) }
                    } else {
                        cmp
                    };
                } else if self.eat_kw("false") {
                    let cmp = Expr::BinOp {
                        op: BinOp::Eq,
                        lhs: Box::new(e),
                        rhs: Box::new(Expr::Literal(Literal::Bool(false))),
                    };
                    e = if negated {
                        Expr::UnOp { op: UnOp::Not, expr: Box::new(cmp) }
                    } else {
                        cmp
                    };
                } else if self.eat_kw("distinct") {
                    self.expect_kw("from")?;
                    let rhs = self.parse_misc_ops()?;
                    // a IS DISTINCT FROM b  ==  NOT (a IS NOT DISTINCT FROM b)
                    let eq = Expr::Func {
                        name: "not_distinct".into(),
                        args: vec![
                            FuncArg { name: None, value: e },
                            FuncArg { name: None, value: rhs },
                        ],
                        distinct: false,
                    };
                    e = if negated { eq } else { Expr::UnOp { op: UnOp::Not, expr: Box::new(eq) } };
                } else {
                    return Err(Error::parse(format!(
                        "expected NULL/TRUE/FALSE/DISTINCT after IS, found '{}'",
                        self.peek()
                    )));
                }
                continue;
            }
            let negated = if self.peek_kw("not")
                && (self.peek_at(1).is_kw("in")
                    || self.peek_at(1).is_kw("between")
                    || self.peek_at(1).is_kw("like")
                    || self.peek_at(1).is_kw("ilike"))
            {
                self.next();
                true
            } else {
                false
            };
            if self.eat_kw("in") {
                self.expect(&Token::LParen)?;
                if self.starts_query_at(0) {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    e = Expr::InSubquery { expr: Box::new(e), query: Box::new(q), negated };
                } else {
                    let mut list = Vec::new();
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    e = Expr::InList { expr: Box::new(e), list, negated };
                }
                continue;
            }
            if self.eat_kw("between") {
                let low = self.parse_misc_ops()?;
                self.expect_kw("and")?;
                let high = self.parse_misc_ops()?;
                e = Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            let ci = self.peek_kw("ilike");
            if self.eat_kw("like") || self.eat_kw("ilike") {
                let pattern = self.parse_misc_ops()?;
                e = Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(pattern),
                    negated,
                    case_insensitive: ci,
                };
                continue;
            }
            if negated {
                return Err(Error::parse("dangling NOT"));
            }
            break;
        }
        Ok(e)
    }

    /// `||`, `&`, `|`, `#`, `<<` — one precedence level between
    /// comparison and additive (PostgreSQL's "any other operator" slot).
    fn parse_misc_ops(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Token::Concat => BinOp::Concat,
                Token::Amp => BinOp::BitAnd,
                Token::Pipe => BinOp::BitOr,
                Token::Hash => BinOp::BitXor,
                Token::Shl => BinOp::Instantiate,
                _ => break,
            };
            self.next();
            let rhs = self.parse_additive()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::BinOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    /// PostgreSQL precedence: `^` binds tighter than unary minus, so
    /// `-2 ^ 2` is `-(2 ^ 2)`.
    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Token::Minus => {
                self.next();
                let inner = self.parse_unary()?;
                // Fold negative numeric literals.
                Ok(match inner {
                    Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                    Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                    other => Expr::UnOp { op: UnOp::Neg, expr: Box::new(other) },
                })
            }
            Token::Plus => {
                self.next();
                self.parse_unary()
            }
            Token::Tilde => {
                self.next();
                let inner = self.parse_unary()?;
                Ok(Expr::UnOp { op: UnOp::BitNot, expr: Box::new(inner) })
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let lhs = self.parse_postfix_cast()?;
        if self.eat(&Token::Caret) {
            // Right-associative; the exponent may itself be signed.
            let rhs = self.parse_unary()?;
            return Ok(Expr::BinOp { op: BinOp::Pow, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn parse_postfix_cast(&mut self) -> Result<Expr> {
        let mut e = self.parse_atom()?;
        while self.eat(&Token::DoubleColon) {
            let ty = self.parse_type_name()?;
            e = Expr::Cast { expr: Box::new(e), ty };
        }
        Ok(e)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        // Literals and keyword-led forms.
        match self.peek().clone() {
            Token::Int(i) => {
                self.next();
                return Ok(Expr::Literal(Literal::Int(i)));
            }
            Token::Float(x) => {
                self.next();
                return Ok(Expr::Literal(Literal::Float(x)));
            }
            Token::Str(s) => {
                self.next();
                return Ok(Expr::Literal(Literal::Str(s)));
            }
            Token::BitStr(s) => {
                self.next();
                return Ok(Expr::Literal(Literal::BitStr(s)));
            }
            Token::LParen => {
                self.next();
                if self.starts_query_at(0) {
                    if self.peek_kw("solvemodel") {
                        let s = self.parse_solve()?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::SolveModel(Box::new(s)));
                    }
                    // Ambiguity: `((SELECT a) + 1)` — the inner parens
                    // may open an expression whose first atom is a
                    // subquery rather than a bare subquery. Try the
                    // query parse and backtrack if it doesn't close.
                    let mark = self.pos;
                    if let Ok(q) = self.parse_query() {
                        if self.eat(&Token::RParen) {
                            return Ok(Expr::ScalarSubquery(Box::new(q)));
                        }
                    }
                    self.pos = mark;
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                return Ok(e);
            }
            Token::Star => {
                // `count(*)`-style wildcard; validity is checked by the binder.
                self.next();
                return Ok(Expr::Wildcard { qualifier: None });
            }
            _ => {}
        }
        if self.eat_kw("null") {
            return Ok(Expr::Literal(Literal::Null));
        }
        if self.eat_kw("true") {
            return Ok(Expr::Literal(Literal::Bool(true)));
        }
        if self.eat_kw("false") {
            return Ok(Expr::Literal(Literal::Bool(false)));
        }
        if self.peek_kw("interval") {
            if let Token::Str(s) = self.peek_at(1).clone() {
                self.next();
                self.next();
                return Ok(Expr::Literal(Literal::Interval(s)));
            }
        }
        if self.peek_kw("timestamp") {
            if let Token::Str(s) = self.peek_at(1).clone() {
                self.next();
                self.next();
                return Ok(Expr::Literal(Literal::Timestamp(s)));
            }
        }
        if self.eat_kw("case") {
            let operand =
                if !self.peek_kw("when") { Some(Box::new(self.parse_expr()?)) } else { None };
            let mut branches = Vec::new();
            while self.eat_kw("when") {
                let c = self.parse_expr()?;
                self.expect_kw("then")?;
                let r = self.parse_expr()?;
                branches.push((c, r));
            }
            let else_ = if self.eat_kw("else") { Some(Box::new(self.parse_expr()?)) } else { None };
            self.expect_kw("end")?;
            return Ok(Expr::Case { operand, branches, else_ });
        }
        if self.eat_kw("cast") {
            self.expect(&Token::LParen)?;
            let e = self.parse_expr()?;
            self.expect_kw("as")?;
            let ty = self.parse_type_name()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Cast { expr: Box::new(e), ty });
        }
        if self.eat_kw("exists") {
            self.expect(&Token::LParen)?;
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Exists { query: Box::new(q), negated: false });
        }
        if self.peek_kw("solvemodel") {
            let s = self.parse_solve()?;
            return Ok(Expr::SolveModel(Box::new(s)));
        }

        // Identifier: column ref, qualified wildcard, or function call.
        // Reserved clause keywords cannot start an expression unquoted.
        if let Token::Ident(s) = self.peek() {
            if RESERVED_AFTER_TABLE.contains(&s.as_str()) {
                return Err(Error::parse(format!("unexpected keyword '{s}' in expression")));
            }
        }
        let name = self.ident()?;
        if self.peek() == &Token::LParen {
            self.next();
            let distinct = self.eat_kw("distinct");
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    if self.peek() == &Token::Star {
                        self.next();
                        args.push(FuncArg {
                            name: None,
                            value: Expr::Wildcard { qualifier: None },
                        });
                    } else {
                        let arg_name =
                            if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                                && self.peek_at(1) == &Token::Assign
                            {
                                let n = self.ident()?;
                                self.expect(&Token::Assign)?;
                                Some(n)
                            } else {
                                None
                            };
                        let value = self.parse_arg_value()?;
                        args.push(FuncArg { name: arg_name, value });
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Func { name, args, distinct });
        }
        if self.peek() == &Token::Dot {
            if self.peek_at(1) == &Token::Star {
                self.next();
                self.next();
                return Ok(Expr::Wildcard { qualifier: Some(name) });
            }
            self.next();
            let col = self.ident()?;
            return Ok(Expr::Column { qualifier: Some(name), name: col });
        }
        Ok(Expr::Column { qualifier: None, name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_expr(sql: &str) -> String {
        parse_expr(sql).unwrap().to_string()
    }

    #[test]
    fn precedence() {
        assert_eq!(roundtrip_expr("1 + 2 * 3"), "(1 + (2 * 3))");
        assert_eq!(roundtrip_expr("(1 + 2) * 3"), "((1 + 2) * 3)");
        assert_eq!(roundtrip_expr("2 ^ 3 ^ 2"), "(2 ^ (3 ^ 2))");
        // PostgreSQL: ^ binds tighter than unary minus.
        assert_eq!(roundtrip_expr("-2 ^ 2"), "(-(2 ^ 2))");
        assert_eq!(roundtrip_expr("a or b and c"), "(a OR (b AND c))");
        assert_eq!(roundtrip_expr("not a = b"), "(NOT (a = b))");
    }

    #[test]
    fn explain_and_explain_check_parse() {
        let sql = "SOLVESELECT q(x) AS (SELECT * FROM v) \
                   MAXIMIZE (SELECT x FROM q) USING solverlp()";
        let plain = parse_statement(&format!("EXPLAIN {sql}")).unwrap();
        let Statement::Explain { mode: ExplainMode::Plan, ref stmt } = plain else {
            panic!("expected EXPLAIN, got {plain:?}")
        };
        assert!(stmt.using.is_some());
        let checked = parse_statement(&format!("EXPLAIN CHECK {sql}")).unwrap();
        assert!(matches!(checked, Statement::Explain { mode: ExplainMode::Check, .. }));
        // Display round-trips through the parser.
        let again = parse_statement(&checked.to_string()).unwrap();
        assert!(matches!(again, Statement::Explain { mode: ExplainMode::Check, .. }));
        // Plain queries get EXPLAIN too (logical plan rendering)...
        let q = parse_statement("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(q, Statement::ExplainQuery { analyze: false, .. }), "got {q:?}");
        assert_eq!(q.to_string(), "EXPLAIN SELECT 1");
        assert_eq!(parse_statement(&q.to_string()).unwrap(), q);
        // ...but CHECK / PRESOLVE stay solve-only.
        let err = parse_statement("EXPLAIN CHECK SELECT 1").unwrap_err().to_string();
        assert!(err.contains("CHECK"), "error: {err}");
        let err = parse_statement("EXPLAIN PRESOLVE SELECT 1").unwrap_err().to_string();
        assert!(err.contains("PRESOLVE"), "error: {err}");
        let err = parse_statement("EXPLAIN 42").unwrap_err().to_string();
        assert!(err.contains("SOLVESELECT"), "error: {err}");
    }

    #[test]
    fn explain_analyze_parses_and_roundtrips() {
        let sql = "SOLVESELECT q(x) AS (SELECT * FROM v) \
                   MAXIMIZE (SELECT x FROM q) USING solverlp()";
        let parsed = parse_statement(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let Statement::Explain { mode: ExplainMode::Analyze, ref stmt } = parsed else {
            panic!("expected EXPLAIN ANALYZE, got {parsed:?}")
        };
        assert!(stmt.using.is_some());
        // Display round-trips through the parser.
        let shown = parsed.to_string();
        assert!(shown.starts_with("EXPLAIN ANALYZE SOLVESELECT"), "display: {shown}");
        let again = parse_statement(&shown).unwrap();
        assert_eq!(again, parsed);
        // ANALYZE also applies to plain queries.
        let q = parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(q, Statement::ExplainQuery { analyze: true, .. }), "got {q:?}");
        assert_eq!(q.to_string(), "EXPLAIN ANALYZE SELECT 1");
        assert_eq!(parse_statement(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn grouping_sets_parse_and_roundtrip() {
        // ROLLUP expands to prefix sets.
        let q = parse_query("SELECT a, b, sum(c) FROM t GROUP BY ROLLUP(a, b)").unwrap();
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.group_by.len(), 2);
        assert_eq!(sel.grouping_sets, Some(vec![vec![0, 1], vec![0], vec![]]));
        // CUBE expands to the powerset in PostgreSQL order.
        let q = parse_query("SELECT a, b FROM t GROUP BY CUBE(a, b)").unwrap();
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.grouping_sets, Some(vec![vec![0, 1], vec![0], vec![1], vec![]]));
        // GROUPING SETS with paren lists, bare expressions and the empty set.
        let q = parse_query("SELECT a, b FROM t GROUP BY GROUPING SETS ((a, b), b, ())").unwrap();
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.group_by.len(), 2);
        assert_eq!(sel.grouping_sets, Some(vec![vec![0, 1], vec![1], vec![]]));
        // Display renders canonical GROUPING SETS form and round-trips.
        let shown = q.to_string();
        assert!(shown.contains("GROUP BY GROUPING SETS ((a, b), (b), ())"), "display: {shown}");
        assert_eq!(parse_query(&shown).unwrap(), q);
        let rollup = parse_query("SELECT a FROM t GROUP BY ROLLUP(a)").unwrap();
        assert_eq!(parse_query(&rollup.to_string()).unwrap(), rollup);
        // Contextual keywords: `rollup` without parens is a column name.
        let q = parse_query("SELECT rollup FROM t GROUP BY rollup").unwrap();
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert_eq!(sel.grouping_sets, None);
        assert_eq!(sel.group_by.len(), 1);
    }

    #[test]
    fn chained_comparison() {
        let e = parse_expr("0 <= ar <= 5").unwrap();
        assert!(matches!(e, Expr::Chain { ref rest, .. } if rest.len() == 2));
        assert_eq!(e.to_string(), "(0 <= ar <= 5)");
        // Two ops = plain BinOp, not a chain.
        assert!(matches!(parse_expr("a <= b").unwrap(), Expr::BinOp { .. }));
    }

    #[test]
    fn casts_and_literals() {
        assert_eq!(roundtrip_expr("NULL::int"), "(NULL)::int8");
        assert_eq!(roundtrip_expr("21.0::float8"), "(21.0)::float8");
        assert_eq!(roundtrip_expr("interval '1 hour'"), "interval '1 hour'");
        assert_eq!(roundtrip_expr("cast(x as text)"), "(x)::text");
        assert!(parse_expr("x::double precision").is_ok());
    }

    #[test]
    fn function_calls() {
        assert_eq!(roundtrip_expr("sum(error)"), "sum(error)");
        assert_eq!(roundtrip_expr("count(*)"), "count(*)");
        assert_eq!(roundtrip_expr("count(distinct x)"), "count(DISTINCT x)");
        let e = parse_expr("arima_rmse(ar := 1, i := 2)").unwrap();
        let Expr::Func { args, .. } = &e else { panic!() };
        assert_eq!(args[0].name.as_deref(), Some("ar"));
    }

    #[test]
    fn bare_select_as_named_arg() {
        // Paper §3.2: arima_rmse(ar := SELECT ar FROM p, ...)
        let e = parse_expr("arima_rmse(ar := SELECT ar FROM p, i := SELECT i FROM p)").unwrap();
        let Expr::Func { args, .. } = &e else { panic!() };
        assert!(matches!(args[0].value, Expr::ScalarSubquery(_)));
        assert!(matches!(args[1].value, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn simple_select() {
        let q =
            parse_query("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 3").unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        assert_eq!(s.projection.len(), 2);
        assert!(s.where_.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert!(q.limit.is_some());
    }

    #[test]
    fn joins() {
        let q = parse_query(
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id JOIN c USING (id) CROSS JOIN d",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        assert_eq!(s.from.len(), 1);
        let mut joins = 0;
        fn count(t: &TableRef, joins: &mut usize) {
            if let TableRef::Join { left, right, .. } = t {
                *joins += 1;
                count(left, joins);
                count(right, joins);
            }
        }
        count(&s.from[0], &mut joins);
        assert_eq!(joins, 3);
    }

    #[test]
    fn lateral_join_from_paper() {
        // §4.4 LTI model listing uses LEFT JOIN LATERAL.
        let q = parse_query(
            "SELECT t.time FROM t LEFT JOIN LATERAL (SELECT time FROM data) AS n \
             ON t.time = n.time - interval '1 hour'",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        let TableRef::Join { right, .. } = &s.from[0] else { panic!() };
        let TableRef::Subquery { lateral, .. } = right.as_ref() else { panic!() };
        assert!(lateral);
    }

    #[test]
    fn recursive_cte() {
        let q = parse_query(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM t WHERE n < 5) \
             SELECT * FROM t",
        )
        .unwrap();
        assert!(q.recursive);
        assert_eq!(q.with[0].columns, vec!["n"]);
    }

    #[test]
    fn set_operations_precedence() {
        let q = parse_query("SELECT 1 UNION SELECT 2 INTERSECT SELECT 2").unwrap();
        // INTERSECT binds tighter: UNION(1, INTERSECT(2, 2)).
        let SetExpr::SetOp { op: SetOp::Union, right, .. } = &q.body else { panic!() };
        assert!(matches!(**right, SetExpr::SetOp { op: SetOp::Intersect, .. }));
    }

    #[test]
    fn values_rows() {
        let q = parse_query("VALUES (1, 'a'), (2, 'b')").unwrap();
        let SetExpr::Values(rows) = &q.body else { panic!() };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn dml_and_ddl() {
        assert!(matches!(
            parse_statement("INSERT INTO t (a, b) VALUES (1, 2)").unwrap(),
            Statement::Insert { .. }
        ));
        assert!(matches!(
            parse_statement("INSERT INTO t SELECT * FROM s").unwrap(),
            Statement::Insert { .. }
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1 WHERE b = 2").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a IS NULL").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE TABLE t (a int, b float8, ts timestamp)").unwrap(),
            Statement::CreateTable { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE TABLE t AS SELECT 1 AS x").unwrap(),
            Statement::CreateTable { as_query: Some(_), .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
    }

    #[test]
    fn solveselect_paper_prediction_query() {
        // Paper §3.1.
        let s = parse_statement(
            "SOLVESELECT t(pvSupply) AS (SELECT * FROM input) \
             USING arima_solver(predictions := 5, time_window := 5, features := outTemp)",
        )
        .unwrap();
        let Statement::Solve(sv) = s else { panic!() };
        assert_eq!(sv.kind, SolveKind::Select);
        assert_eq!(sv.input.alias.as_deref(), Some("t"));
        assert_eq!(sv.input.dec_cols, DecCols::List(vec!["pvsupply".into()]));
        let u = sv.using.unwrap();
        assert_eq!(u.solver, "arima_solver");
        assert_eq!(u.params.len(), 3);
        assert_eq!(u.params[0].0.as_deref(), Some("predictions"));
    }

    #[test]
    fn solveselect_lr_fitting_query() {
        // Paper §4.1 LR parameter estimation.
        let s = parse_statement(
            "SOLVESELECT p(pOTemp, pMonth, pEps) AS (SELECT * FROM pars) \
             WITH e(error) AS (SELECT *, NULL::float8 AS error FROM input) \
             MINIMIZE (SELECT sum(error) FROM e) \
             SUBJECTTO (SELECT -1*error <= (pOTemp*outTemp + pMonth*month(time) + pEps - pvSupply) <= error FROM e, p) \
             USING solverlp.cbc()",
        )
        .unwrap();
        let Statement::Solve(sv) = s else { panic!() };
        assert_eq!(sv.ctes.len(), 1);
        assert_eq!(sv.ctes[0].alias.as_deref(), Some("e"));
        assert_eq!(sv.ctes[0].dec_cols, DecCols::List(vec!["error".into()]));
        assert!(sv.minimize.is_some());
        assert_eq!(sv.subjectto.len(), 1);
        let u = sv.using.unwrap();
        assert_eq!((u.solver.as_str(), u.method.as_deref()), ("solverlp", Some("cbc")));
    }

    #[test]
    fn solveselect_asterisk_notation() {
        let s = parse_statement("SOLVESELECT p(*) AS (SELECT * FROM pars) USING s()").unwrap();
        let Statement::Solve(sv) = s else { panic!() };
        assert_eq!(sv.input.dec_cols, DecCols::Star);
    }

    #[test]
    fn solvemodel_as_expression_with_instantiation() {
        // Paper §4.4 model instantiation.
        let s = parse_statement(
            "SELECT m << (SOLVEMODEL pars(b2) AS \
             (SELECT 0.995 AS a1, 0.001 AS b1, 0.2::float8 AS b2)) FROM model",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.projection[0] else { panic!() };
        let Expr::BinOp { op: BinOp::Instantiate, rhs, .. } = expr else { panic!() };
        assert!(matches!(**rhs, Expr::SolveModel(_)));
    }

    #[test]
    fn modeleval_statement() {
        let s = parse_statement("MODELEVAL (SELECT a1, b1, b2 FROM pars) IN (SELECT m FROM model)")
            .unwrap();
        assert!(matches!(s, Statement::ModelEval { .. }));
    }

    #[test]
    fn solveselect_with_inline() {
        // Paper §4.4 cost optimization with INLINE.
        let s = parse_statement(
            "SOLVESELECT t(hload, itemp) AS (SELECT * FROM input WHERE hload IS NULL) \
             INLINE m AS (SELECT m << (SOLVEMODEL data AS (SELECT time FROM t)) FROM model) \
             MINIMIZE (SELECT sum((hload - pvsupply)*0.12) FROM t) \
             SUBJECTTO (SELECT t.intemp = m_simul.x FROM m_simul, t), \
                       (SELECT 20 <= intemp <= 25 FROM t) \
             USING solverlp.cbc()",
        )
        .unwrap();
        let Statement::Solve(sv) = s else { panic!() };
        assert_eq!(sv.inlines.len(), 1);
        assert_eq!(sv.inlines[0].alias.as_deref(), Some("m"));
        assert_eq!(sv.subjectto.len(), 2);
    }

    #[test]
    fn minimize_and_maximize_both_orders() {
        for sql in [
            "SOLVESELECT t(x) AS (SELECT 1 AS x) MINIMIZE (SELECT 1) MAXIMIZE (SELECT 2) USING s()",
            "SOLVESELECT t(x) AS (SELECT 1 AS x) MAXIMIZE (SELECT 2) MINIMIZE (SELECT 1) USING s()",
        ] {
            let Statement::Solve(sv) = parse_statement(sql).unwrap() else { panic!() };
            assert!(sv.minimize.is_some() && sv.maximize.is_some());
        }
    }

    #[test]
    fn pretty_printed_statements_reparse() {
        let sqls = [
            "SELECT a, b FROM t WHERE a > 1 GROUP BY a, b HAVING count(*) > 2 ORDER BY a LIMIT 5",
            "WITH x AS (SELECT 1 AS a) SELECT * FROM x",
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
            "SOLVESELECT t(pvsupply) AS (SELECT * FROM input) USING predictive_solver()",
            "MODELEVAL (SELECT a FROM p) IN (SELECT m FROM model)",
            "INSERT INTO t (a) SELECT 1",
            "VALUES (1, 2), (3, 4)",
        ];
        for sql in sqls {
            let s1 = parse_statement(sql).unwrap();
            let printed = s1.to_string();
            let s2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(s1, s2, "roundtrip mismatch for `{sql}`");
        }
    }

    #[test]
    fn between_and_in() {
        assert_eq!(roundtrip_expr("x between 1 and 5"), "(x BETWEEN 1 AND 5)");
        assert_eq!(roundtrip_expr("x not in (1, 2)"), "(x NOT IN (1, 2))");
        let e = parse_expr("x in (select y from t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { .. }));
    }

    #[test]
    fn implicit_alias_stops_at_keywords() {
        let q = parse_query("SELECT a FROM t WHERE a = 1").unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        let TableRef::Named { alias, .. } = &s.from[0] else { panic!() };
        assert!(alias.is_none());
        let q = parse_query("SELECT x.a FROM t x").unwrap();
        let SetExpr::Select(s) = &q.body else { panic!() };
        let TableRef::Named { alias, .. } = &s.from[0] else { panic!() };
        assert_eq!(alias.as_ref().unwrap().name, "x");
    }

    #[test]
    fn multi_statement_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SOLVESELECT t(x) AS SELECT 1").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn split_statements_on_semicolons() {
        let pieces =
            split_statements("CREATE TABLE t (a int); INSERT INTO t VALUES (1);\nSELECT * FROM t");
        assert_eq!(
            pieces,
            vec!["CREATE TABLE t (a int)", "INSERT INTO t VALUES (1)", "SELECT * FROM t"]
        );
    }

    #[test]
    fn split_statements_ignores_quoted_and_commented_semicolons() {
        let pieces = split_statements(
            "SELECT 'a;''b' -- trailing; comment\n, \"odd;name\" /* c; */; SELECT 2;;",
        );
        assert_eq!(pieces.len(), 2, "{pieces:?}");
        assert!(pieces[0].contains("'a;''b'"));
        assert_eq!(pieces[1], "SELECT 2");
    }

    #[test]
    fn split_statements_drops_comment_only_pieces() {
        let pieces = split_statements("-- nothing here\n; /* still nothing */;SELECT 1");
        assert_eq!(pieces, vec!["SELECT 1"]);
        assert!(split_statements("  \n\t ").is_empty());
    }

    #[test]
    fn split_pieces_parse_individually() {
        let script = "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t;";
        for piece in split_statements(script) {
            parse_statement(&piece).unwrap();
        }
    }

    #[test]
    fn split_statements_semicolon_in_line_comment_does_not_split() {
        // A `;` inside a `--` comment must not terminate the statement,
        // even when the comment sits mid-statement.
        let pieces = split_statements("SELECT 1 -- first; not a boundary\n+ 2; SELECT 3");
        assert_eq!(pieces.len(), 2, "{pieces:?}");
        assert!(pieces[0].ends_with("+ 2"), "{pieces:?}");
        assert_eq!(pieces[1], "SELECT 3");
        // Same for a comment on the final line with no trailing newline.
        let pieces = split_statements("SELECT 1; -- done; really");
        assert_eq!(pieces.len(), 1, "{pieces:?}");
        assert_eq!(pieces[0], "SELECT 1");
    }

    #[test]
    fn split_statements_semicolon_in_nested_block_comment() {
        let pieces = split_statements("SELECT /* a /* b; */ c; */ 1; SELECT 2");
        assert_eq!(pieces.len(), 2, "{pieces:?}");
        assert_eq!(pieces[1], "SELECT 2");
    }

    #[test]
    fn script_complete_recognizes_terminators() {
        assert!(script_complete("SELECT 1;"));
        assert!(script_complete("SELECT 1; -- trailing comment"));
        assert!(script_complete("SELECT 1;\n/* done */\n"));
        assert!(!script_complete("SELECT 1"));
        assert!(!script_complete("SELECT ';'")); // ; only inside a string
        assert!(!script_complete("SELECT 1; SELECT 2")); // second stmt open
        assert!(!script_complete("SELECT 1; /* open comment")); // unterminated
        assert!(!script_complete(""));
        assert!(!script_complete("-- just a comment\n"));
    }
}
