//! The database catalog: tables, views, user-defined functions, and the
//! hook through which the SolveDB+ layer plugs into query execution.

use crate::ast::{Query, SolveStmt};
use crate::diag::Diagnostic;
use crate::error::{Error, Result};
use crate::table::{coerce, Row, Table, TableRef};
use crate::types::Value;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scalar user-defined function. `param_names` enables named-argument
/// notation (`f(a := 1)`); positional arguments map in declaration order.
#[derive(Clone)]
pub struct ScalarUdf {
    pub name: String,
    pub param_names: Vec<String>,
    /// Default values for trailing parameters (by name).
    pub defaults: HashMap<String, Value>,
    pub func: Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>,
}

impl std::fmt::Debug for ScalarUdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarUdf")
            .field("name", &self.name)
            .field("param_names", &self.param_names)
            .finish()
    }
}

/// CTE environment threaded through execution: names visible as
/// relations beyond the catalog (WITH members, SOLVESELECT decision
/// relations, inlined model relations).
#[derive(Debug, Clone, Default)]
pub struct Ctes {
    map: HashMap<String, TableRef>,
}

impl Ctes {
    pub fn new() -> Ctes {
        Ctes::default()
    }

    pub fn get(&self, name: &str) -> Option<&TableRef> {
        self.map.get(name)
    }

    pub fn with(&self, name: &str, table: TableRef) -> Ctes {
        let mut next = self.clone();
        next.map.insert(name.to_string(), table);
        next
    }

    pub fn insert(&mut self, name: &str, table: TableRef) {
        self.map.insert(name.to_string(), table);
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|s| s.as_str())
    }

    /// True when no CTE bindings are visible (plan-cache eligibility:
    /// cached plans must not capture per-execution CTE data).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Hook implemented by the SolveDB+ layer (crate `solvedbplus-core`).
/// The engine routes `SOLVESELECT`, `SOLVEMODEL` expressions and
/// `MODELEVAL` through it; without a handler these constructs error,
/// mirroring a PostgreSQL install without the SolveDB+ extension.
pub trait SolveHandler: Send + Sync {
    /// Execute a `SOLVESELECT`, returning the output relation.
    ///
    /// Before solving, the handler may run its pre-solve static
    /// analyzer and push advisory findings into `warnings`; the
    /// executor attaches `Warning`/`Note`-severity entries to the
    /// statement's [`crate::exec::ExecResult`].
    ///
    /// When `trace` is present the handler records its stage tree
    /// (plan → rewrite → instantiate → solve → ...) and solver
    /// telemetry into it; `None` skips instrumentation (nested solves,
    /// handlers that predate tracing).
    fn solve_select(
        &self,
        db: &Database,
        stmt: &SolveStmt,
        ctes: &Ctes,
        warnings: &mut Vec<Diagnostic>,
        trace: Option<&obs::Trace>,
    ) -> Result<Table>;

    /// `EXPLAIN SOLVESELECT ...`: describe the compiled problem (one
    /// text column, one row per plan line) without solving it.
    fn explain_solve(&self, _db: &Database, _stmt: &SolveStmt, _ctes: &Ctes) -> Result<Table> {
        Err(Error::unsupported("EXPLAIN SOLVESELECT requires the SolveDB+ solve handler"))
    }

    /// `EXPLAIN CHECK SOLVESELECT ...`: run the pre-solve static
    /// analyzer and return all findings (every severity) without
    /// solving.
    fn check_solve(
        &self,
        _db: &Database,
        _stmt: &SolveStmt,
        _ctes: &Ctes,
    ) -> Result<Vec<Diagnostic>> {
        Err(Error::unsupported("EXPLAIN CHECK requires the SolveDB+ solve handler"))
    }

    /// `EXPLAIN PRESOLVE SOLVESELECT ...`: run interval propagation
    /// over the compiled model and return the reduction log (one text
    /// column, one row per line) without solving.
    fn presolve_solve(&self, _db: &Database, _stmt: &SolveStmt, _ctes: &Ctes) -> Result<Table> {
        Err(Error::unsupported("EXPLAIN PRESOLVE requires the SolveDB+ solve handler"))
    }

    /// Evaluate a `SOLVEMODEL`, returning a model value.
    fn solve_model(&self, db: &Database, stmt: &SolveStmt, ctes: &Ctes) -> Result<Value>;

    /// Execute `MODELEVAL (select) IN (model-select)`.
    fn model_eval(
        &self,
        db: &Database,
        select: &Query,
        model: &Query,
        ctes: &Ctes,
    ) -> Result<Table>;
}

/// A logical catalog mutation — the unit the durability subsystem
/// records. Every mutation of the catalog's persistent state (tables,
/// views) flows through exactly one of these commit points; replaying
/// the sequence against an empty [`Database`] reconstructs the catalog.
///
/// Mutations carry [`TableRef`]s (cheap `Arc` clones of the
/// copy-on-write table handles), so emitting one never copies row data.
#[derive(Debug, Clone)]
pub enum CatalogMutation {
    /// `CREATE TABLE` / `CREATE TABLE AS` (the table may carry rows).
    CreateTable {
        name: String,
        table: TableRef,
    },
    DropTable {
        name: String,
    },
    /// Wholesale replacement (UPDATE/DELETE rewrite, solution
    /// materialization, programmatic `put_table`).
    PutTable {
        name: String,
        table: TableRef,
    },
    /// Rows appended by `INSERT` (already coerced to column types).
    AppendRows {
        name: String,
        rows: Vec<Row>,
    },
    /// `CREATE [OR REPLACE] VIEW` — the view's definition re-parses from
    /// its canonical SQL rendering.
    CreateView {
        name: String,
        sql: String,
    },
    DropView {
        name: String,
    },
}

impl CatalogMutation {
    /// The relation this mutation touches.
    pub fn relation(&self) -> &str {
        match self {
            CatalogMutation::CreateTable { name, .. }
            | CatalogMutation::DropTable { name }
            | CatalogMutation::PutTable { name, .. }
            | CatalogMutation::AppendRows { name, .. }
            | CatalogMutation::CreateView { name, .. }
            | CatalogMutation::DropView { name } => name,
        }
    }

    /// Apply this mutation to a database (the replay side of recovery).
    /// Applications are last-writer-wins and idempotent at the
    /// full-state level, so re-applying a suffix after a snapshot that
    /// already contains it is safe.
    pub fn apply(&self, db: &mut Database) -> Result<()> {
        match self {
            CatalogMutation::CreateTable { name, table } => {
                db.tables.insert(name.clone(), table.clone());
            }
            CatalogMutation::DropTable { name } => {
                db.tables.remove(name);
            }
            CatalogMutation::PutTable { name, table } => {
                db.tables.insert(name.clone(), table.clone());
            }
            CatalogMutation::AppendRows { name, rows } => {
                let t = db
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| Error::catalog(format!("replay: table '{name}' missing")))?;
                Arc::make_mut(t).rows.extend(rows.iter().cloned());
            }
            CatalogMutation::CreateView { name, sql } => {
                let q = crate::parser::parse_query(sql)?;
                db.views.insert(name.clone(), Arc::new(q));
            }
            CatalogMutation::DropView { name } => {
                db.views.remove(name);
            }
        }
        db.bump_epoch();
        Ok(())
    }
}

/// Hook implemented by the durability subsystem (`crates/storage`).
/// The catalog invokes [`DurabilityHook::record`] at every mutation
/// commit point *after* the in-memory mutation succeeded; an attached
/// session then calls the engine's group-commit entry point once per
/// statement to flush the batch to the write-ahead log.
pub trait DurabilityHook: Send + Sync {
    /// Buffer one committed catalog mutation for the next group commit.
    fn record(&self, mutation: CatalogMutation);

    /// `CHECKPOINT`: snapshot the full database state and rotate the
    /// log. Returns a one-row status relation. `trace`, when present,
    /// receives `checkpoint` stage spans.
    fn checkpoint(&self, db: &Database, trace: Option<&obs::Trace>) -> Result<Table>;

    /// Does `name` already exist in the *durable* catalog — possibly
    /// committed by another connection after this session hydrated its
    /// private catalog? `CREATE TABLE` / `CREATE VIEW` consult this
    /// before mutating, so a name conflict across connections fails
    /// the statement instead of letting two sessions commit tables of
    /// the same name with different schemas.
    fn durable_relation_exists(&self, _name: &str) -> bool {
        false
    }
}

/// Provider of *virtual tables*: relations synthesized on demand
/// rather than stored in the catalog (the `sdb_*` observability views
/// — `sdb_stat_statements`, `sdb_solver_stats`, `sdb_sessions`).
/// Ordinary tables, views and CTEs all shadow a virtual table of the
/// same name; the provider is only consulted when catalog resolution
/// misses.
pub trait VirtualTableProvider: Send + Sync {
    /// Names this provider can materialize.
    fn names(&self) -> Vec<String>;

    /// Materialize a snapshot of the named virtual table, or `None` if
    /// the name is not one of [`Self::names`].
    fn table(&self, name: &str) -> Option<Table>;
}

/// The database: named tables, views, UDFs and the solve hook.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, TableRef>,
    views: HashMap<String, Arc<Query>>,
    udfs: HashMap<String, ScalarUdf>,
    solve_handler: Option<Arc<dyn SolveHandler>>,
    virtual_tables: Option<Arc<dyn VirtualTableProvider>>,
    durability: Option<Arc<dyn DurabilityHook>>,
    /// Tables mutated through [`Database::table_mut`] since the last
    /// [`Database::flush_dirty`] — the escape hatch that keeps direct
    /// mutable access from bypassing the durability hook. The statement
    /// executor flushes after every statement.
    dirty_tables: HashSet<String>,
    /// Monotone counter bumped on every catalog mutation; cached plans
    /// are keyed on it so DDL and DML invalidate the plan cache.
    pub(crate) catalog_epoch: AtomicU64,
    /// Per-table statistics used by the cost-based planner, keyed by the
    /// table allocation identity (see `plan::stats`). Interior-mutable so
    /// read-only query paths can populate it lazily.
    pub(crate) stats_cache:
        std::sync::Mutex<HashMap<(usize, usize), Arc<crate::plan::stats::TableStats>>>,
    /// Cache of optimized plans keyed by `(catalog epoch, exact query
    /// rendering)` — see `plan::cache`. Hit/miss counters feed
    /// `sdb_stat_statements`.
    pub(crate) plan_cache:
        std::sync::Mutex<HashMap<crate::plan::cache::PlanCacheKey, Arc<crate::plan::PlannedQuery>>>,
    /// Per-session solver wall-clock budget in milliseconds
    /// (`SET solver_timeout_ms`); `None` = unlimited.
    solver_timeout_ms: Option<u64>,
    /// This session's own live counters when it is server-hosted — the
    /// kill flag a `CANCEL` from another session sets is read from here
    /// at solve progress points.
    own_counters: Option<Arc<obs::SessionCounters>>,
    /// All live server sessions; the execution target of
    /// `CANCEL <session>`.
    session_registry: Option<Arc<obs::SessionRegistry>>,
    /// Sink for live solve-progress events (the server streams them as
    /// PROGRESS frames; the CLI renders a status line).
    progress_sink: Option<Arc<dyn Fn(&obs::ProgressEvent) + Send + Sync>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("views", &self.views.keys().collect::<Vec<_>>())
            .field("udfs", &self.udfs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Bump the catalog epoch (invalidates cached plans).
    pub(crate) fn bump_epoch(&self) {
        self.catalog_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Current catalog epoch (monotone across mutations).
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch.load(Ordering::Relaxed)
    }

    // -- session control (solver watchdog, live progress) ------------------

    /// Set the session's solver wall-clock budget (`None` = unlimited).
    pub fn set_solver_timeout_ms(&mut self, ms: Option<u64>) {
        self.solver_timeout_ms = ms;
    }

    pub fn solver_timeout_ms(&self) -> Option<u64> {
        self.solver_timeout_ms
    }

    /// Attach this session's own live counters (server sessions only);
    /// running solves poll the counters' kill flag.
    pub fn set_own_counters(&mut self, counters: Option<Arc<obs::SessionCounters>>) {
        self.own_counters = counters;
    }

    pub fn own_counters(&self) -> Option<&Arc<obs::SessionCounters>> {
        self.own_counters.as_ref()
    }

    /// Attach the registry of live sessions (`CANCEL`'s lookup table).
    pub fn set_session_registry(&mut self, registry: Option<Arc<obs::SessionRegistry>>) {
        self.session_registry = registry;
    }

    pub fn session_registry(&self) -> Option<&Arc<obs::SessionRegistry>> {
        self.session_registry.as_ref()
    }

    /// Install a sink for live solve-progress events.
    pub fn set_progress_sink(
        &mut self,
        sink: Option<Arc<dyn Fn(&obs::ProgressEvent) + Send + Sync>>,
    ) {
        self.progress_sink = sink;
    }

    pub fn progress_sink(&self) -> Option<&Arc<dyn Fn(&obs::ProgressEvent) + Send + Sync>> {
        self.progress_sink.as_ref()
    }

    /// Emit a committed mutation to the durability hook, if one is
    /// attached. Called *after* the in-memory mutation succeeded.
    fn emit(&self, mutation: CatalogMutation) {
        if let Some(hook) = &self.durability {
            hook.record(mutation);
        }
    }

    // -- tables ------------------------------------------------------------

    pub fn create_table(&mut self, name: &str, table: Table, if_not_exists: bool) -> Result<()> {
        if self.tables.contains_key(name) || self.views.contains_key(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(Error::catalog(format!("relation '{name}' already exists")));
        }
        // Not in this session's private catalog — but another
        // connection may have committed it durably since hydration.
        if self.durability.as_ref().is_some_and(|h| h.durable_relation_exists(name)) {
            if if_not_exists {
                return Ok(());
            }
            return Err(Error::catalog(format!(
                "relation '{name}' already exists in the durable catalog \
                 (created by another connection)"
            )));
        }
        let table = Arc::new(table);
        self.tables.insert(name.to_string(), table.clone());
        self.bump_epoch();
        self.emit(CatalogMutation::CreateTable { name: name.to_string(), table });
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.tables.remove(name).is_none() {
            if !if_exists {
                return Err(Error::catalog(format!("table '{name}' does not exist")));
            }
            return Ok(());
        }
        self.dirty_tables.remove(name);
        self.bump_epoch();
        self.emit(CatalogMutation::DropTable { name: name.to_string() });
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&TableRef> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::catalog(format!("relation '{name}' does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Mutable access for DML; clones on shared access (copy-on-write).
    ///
    /// When a durability hook is attached the table is marked dirty and
    /// its full state is re-published at the next [`Self::flush_dirty`]
    /// (the statement executor flushes after every statement), so direct
    /// mutable access cannot bypass the write-ahead log. Prefer
    /// [`Self::append_rows`] / [`Self::put_table`], whose records are
    /// precise.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        if self.durability.is_some() && self.tables.contains_key(name) {
            self.dirty_tables.insert(name.to_string());
        }
        self.bump_epoch();
        let arc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| Error::catalog(format!("table '{name}' does not exist")))?;
        Ok(Arc::make_mut(arc))
    }

    /// Append pre-built rows to a table, coercing each value to the
    /// column's declared type — the single commit point for `INSERT`.
    /// Validation is all-or-nothing: a coercion failure leaves the
    /// table untouched (and nothing is logged).
    pub fn append_rows(&mut self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let arc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| Error::catalog(format!("table '{name}' does not exist")))?;
        let schema = arc.schema.clone();
        let mut coerced = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.len() {
                return Err(Error::eval(format!(
                    "row has {} values, table has {} columns",
                    row.len(),
                    schema.len()
                )));
            }
            let mut out = Vec::with_capacity(row.len());
            for (v, col) in row.into_iter().zip(&schema.columns) {
                out.push(coerce(v, &col.ty)?);
            }
            coerced.push(out);
        }
        let n = coerced.len();
        Arc::make_mut(arc).rows.extend(coerced.iter().cloned());
        self.bump_epoch();
        self.emit(CatalogMutation::AppendRows { name: name.to_string(), rows: coerced });
        Ok(n)
    }

    /// Replace a table's contents wholesale.
    pub fn put_table(&mut self, name: &str, table: Table) {
        let table = Arc::new(table);
        self.tables.insert(name.to_string(), table.clone());
        self.dirty_tables.remove(name);
        self.bump_epoch();
        self.emit(CatalogMutation::PutTable { name: name.to_string(), table });
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// All tables as `(name, handle)` pairs, sorted by name — the
    /// snapshot surface for the durability subsystem (`Arc` clones, no
    /// row copies).
    pub fn tables_snapshot(&self) -> Vec<(String, TableRef)> {
        let mut v: Vec<(String, TableRef)> =
            self.tables.iter().map(|(n, t)| (n.clone(), t.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All views as `(name, canonical SQL)` pairs, sorted by name.
    pub fn views_snapshot(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> =
            self.views.iter().map(|(n, q)| (n.clone(), q.to_string())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Names of registered UDFs, sorted (recorded in snapshots for
    /// observability; the session re-registers its built-in UDFs itself).
    pub fn udf_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.udfs.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    // -- views -------------------------------------------------------------

    pub fn create_view(&mut self, name: &str, query: Query, or_replace: bool) -> Result<()> {
        if !or_replace && (self.views.contains_key(name) || self.tables.contains_key(name)) {
            return Err(Error::catalog(format!("relation '{name}' already exists")));
        }
        if !or_replace && self.durability.as_ref().is_some_and(|h| h.durable_relation_exists(name))
        {
            return Err(Error::catalog(format!(
                "relation '{name}' already exists in the durable catalog \
                 (created by another connection)"
            )));
        }
        let sql = query.to_string();
        self.views.insert(name.to_string(), Arc::new(query));
        self.bump_epoch();
        self.emit(CatalogMutation::CreateView { name: name.to_string(), sql });
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.views.remove(name).is_none() {
            if !if_exists {
                return Err(Error::catalog(format!("view '{name}' does not exist")));
            }
            return Ok(());
        }
        self.bump_epoch();
        self.emit(CatalogMutation::DropView { name: name.to_string() });
        Ok(())
    }

    pub fn view(&self, name: &str) -> Option<&Arc<Query>> {
        self.views.get(name)
    }

    // -- functions -----------------------------------------------------------

    pub fn register_udf(&mut self, udf: ScalarUdf) {
        self.udfs.insert(udf.name.clone(), udf);
    }

    pub fn udf(&self, name: &str) -> Option<&ScalarUdf> {
        self.udfs.get(name)
    }

    // -- durability ----------------------------------------------------------

    /// Attach the durability hook. Call *after* recovery has populated
    /// the database — mutations applied before attachment are not
    /// re-logged.
    pub fn set_durability_hook(&mut self, hook: Arc<dyn DurabilityHook>) {
        self.durability = Some(hook);
    }

    /// The attached durability hook, if any.
    pub fn durability_hook(&self) -> Option<&Arc<dyn DurabilityHook>> {
        self.durability.as_ref()
    }

    /// Publish the full state of every table mutated through
    /// [`Self::table_mut`] since the last flush as `PutTable` records.
    /// The statement executor calls this after every statement, making
    /// the durability hook observe *all* catalog mutations regardless of
    /// which mutation API the writer used.
    pub fn flush_dirty(&mut self) {
        if self.durability.is_none() || self.dirty_tables.is_empty() {
            return;
        }
        let dirty: Vec<String> = self.dirty_tables.drain().collect();
        for name in dirty {
            if let Some(table) = self.tables.get(&name) {
                let table = table.clone();
                self.emit(CatalogMutation::PutTable { name, table });
            }
        }
    }

    /// `CHECKPOINT`: force a snapshot and rotate the log through the
    /// attached durability hook.
    pub fn checkpoint(&mut self, trace: Option<&obs::Trace>) -> Result<Table> {
        // Dirty tables must reach the log before the snapshot covers them.
        self.flush_dirty();
        let hook = self.durability.clone().ok_or_else(|| {
            Error::unsupported("CHECKPOINT requires a data directory (start with --data-dir)")
        })?;
        hook.checkpoint(self, trace)
    }

    // -- solve hook ----------------------------------------------------------

    pub fn set_solve_handler(&mut self, handler: Arc<dyn SolveHandler>) {
        self.solve_handler = Some(handler);
    }

    pub fn solve_handler(&self) -> Result<Arc<dyn SolveHandler>> {
        self.solve_handler.clone().ok_or_else(|| {
            Error::unsupported(
                "no solver infrastructure registered (SOLVESELECT requires the SolveDB+ layer)",
            )
        })
    }

    // -- virtual tables ------------------------------------------------------

    /// Install (or replace) the virtual-table provider.
    pub fn set_virtual_tables(&mut self, provider: Arc<dyn VirtualTableProvider>) {
        self.virtual_tables = Some(provider);
    }

    /// Materialize a virtual table by name, if a provider serves it.
    pub fn virtual_table(&self, name: &str) -> Option<Table> {
        self.virtual_tables.as_ref().and_then(|p| p.table(name))
    }

    /// Names served by the installed virtual-table provider, sorted.
    pub fn virtual_table_names(&self) -> Vec<String> {
        let mut v = self.virtual_tables.as_ref().map(|p| p.names()).unwrap_or_default();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;

    #[test]
    fn create_and_drop_tables() {
        let mut db = Database::new();
        db.create_table("t", Table::new(Schema::from_names(&["a"])), false).unwrap();
        assert!(db.has_table("t"));
        assert!(db.create_table("t", Table::default(), false).is_err());
        db.create_table("t", Table::default(), true).unwrap(); // no-op
        db.drop_table("t", false).unwrap();
        assert!(db.drop_table("t", false).is_err());
        db.drop_table("t", true).unwrap();
    }

    #[test]
    fn table_mut_is_copy_on_write() {
        let mut db = Database::new();
        db.create_table("t", Table::from_rows(&["a"], vec![vec![Value::Int(1)]]), false).unwrap();
        let snapshot = db.table("t").unwrap().clone();
        db.table_mut("t").unwrap().rows.push(vec![Value::Int(2)]);
        assert_eq!(snapshot.num_rows(), 1);
        assert_eq!(db.table("t").unwrap().num_rows(), 2);
    }

    #[test]
    fn cte_env_shadows_immutably() {
        let ctes = Ctes::new();
        let with_x = ctes.with("x", Arc::new(Table::default()));
        assert!(ctes.get("x").is_none());
        assert!(with_x.get("x").is_some());
    }

    #[test]
    fn missing_solve_handler_errors() {
        let db = Database::new();
        assert!(db.solve_handler().is_err());
    }
}
