//! The database catalog: tables, views, user-defined functions, and the
//! hook through which the SolveDB+ layer plugs into query execution.

use crate::ast::{Query, SolveStmt};
use crate::diag::Diagnostic;
use crate::error::{Error, Result};
use crate::table::{Table, TableRef};
use crate::types::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar user-defined function. `param_names` enables named-argument
/// notation (`f(a := 1)`); positional arguments map in declaration order.
#[derive(Clone)]
pub struct ScalarUdf {
    pub name: String,
    pub param_names: Vec<String>,
    /// Default values for trailing parameters (by name).
    pub defaults: HashMap<String, Value>,
    pub func: Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>,
}

impl std::fmt::Debug for ScalarUdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarUdf")
            .field("name", &self.name)
            .field("param_names", &self.param_names)
            .finish()
    }
}

/// CTE environment threaded through execution: names visible as
/// relations beyond the catalog (WITH members, SOLVESELECT decision
/// relations, inlined model relations).
#[derive(Debug, Clone, Default)]
pub struct Ctes {
    map: HashMap<String, TableRef>,
}

impl Ctes {
    pub fn new() -> Ctes {
        Ctes::default()
    }

    pub fn get(&self, name: &str) -> Option<&TableRef> {
        self.map.get(name)
    }

    pub fn with(&self, name: &str, table: TableRef) -> Ctes {
        let mut next = self.clone();
        next.map.insert(name.to_string(), table);
        next
    }

    pub fn insert(&mut self, name: &str, table: TableRef) {
        self.map.insert(name.to_string(), table);
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|s| s.as_str())
    }
}

/// Hook implemented by the SolveDB+ layer (crate `solvedbplus-core`).
/// The engine routes `SOLVESELECT`, `SOLVEMODEL` expressions and
/// `MODELEVAL` through it; without a handler these constructs error,
/// mirroring a PostgreSQL install without the SolveDB+ extension.
pub trait SolveHandler: Send + Sync {
    /// Execute a `SOLVESELECT`, returning the output relation.
    ///
    /// Before solving, the handler may run its pre-solve static
    /// analyzer and push advisory findings into `warnings`; the
    /// executor attaches `Warning`/`Note`-severity entries to the
    /// statement's [`crate::exec::ExecResult`].
    ///
    /// When `trace` is present the handler records its stage tree
    /// (plan → rewrite → instantiate → solve → ...) and solver
    /// telemetry into it; `None` skips instrumentation (nested solves,
    /// handlers that predate tracing).
    fn solve_select(
        &self,
        db: &Database,
        stmt: &SolveStmt,
        ctes: &Ctes,
        warnings: &mut Vec<Diagnostic>,
        trace: Option<&obs::Trace>,
    ) -> Result<Table>;

    /// `EXPLAIN SOLVESELECT ...`: describe the compiled problem (one
    /// text column, one row per plan line) without solving it.
    fn explain_solve(&self, _db: &Database, _stmt: &SolveStmt, _ctes: &Ctes) -> Result<Table> {
        Err(Error::unsupported("EXPLAIN SOLVESELECT requires the SolveDB+ solve handler"))
    }

    /// `EXPLAIN CHECK SOLVESELECT ...`: run the pre-solve static
    /// analyzer and return all findings (every severity) without
    /// solving.
    fn check_solve(
        &self,
        _db: &Database,
        _stmt: &SolveStmt,
        _ctes: &Ctes,
    ) -> Result<Vec<Diagnostic>> {
        Err(Error::unsupported("EXPLAIN CHECK requires the SolveDB+ solve handler"))
    }

    /// `EXPLAIN PRESOLVE SOLVESELECT ...`: run interval propagation
    /// over the compiled model and return the reduction log (one text
    /// column, one row per line) without solving.
    fn presolve_solve(&self, _db: &Database, _stmt: &SolveStmt, _ctes: &Ctes) -> Result<Table> {
        Err(Error::unsupported("EXPLAIN PRESOLVE requires the SolveDB+ solve handler"))
    }

    /// Evaluate a `SOLVEMODEL`, returning a model value.
    fn solve_model(&self, db: &Database, stmt: &SolveStmt, ctes: &Ctes) -> Result<Value>;

    /// Execute `MODELEVAL (select) IN (model-select)`.
    fn model_eval(
        &self,
        db: &Database,
        select: &Query,
        model: &Query,
        ctes: &Ctes,
    ) -> Result<Table>;
}

/// Provider of *virtual tables*: relations synthesized on demand
/// rather than stored in the catalog (the `sdb_*` observability views
/// — `sdb_stat_statements`, `sdb_solver_stats`, `sdb_sessions`).
/// Ordinary tables, views and CTEs all shadow a virtual table of the
/// same name; the provider is only consulted when catalog resolution
/// misses.
pub trait VirtualTableProvider: Send + Sync {
    /// Names this provider can materialize.
    fn names(&self) -> Vec<String>;

    /// Materialize a snapshot of the named virtual table, or `None` if
    /// the name is not one of [`Self::names`].
    fn table(&self, name: &str) -> Option<Table>;
}

/// The database: named tables, views, UDFs and the solve hook.
#[derive(Default)]
pub struct Database {
    tables: HashMap<String, TableRef>,
    views: HashMap<String, Arc<Query>>,
    udfs: HashMap<String, ScalarUdf>,
    solve_handler: Option<Arc<dyn SolveHandler>>,
    virtual_tables: Option<Arc<dyn VirtualTableProvider>>,
    /// Per-table statistics used by the cost-based planner, keyed by the
    /// table allocation identity (see `plan::stats`). Interior-mutable so
    /// read-only query paths can populate it lazily.
    pub(crate) stats_cache:
        std::sync::Mutex<HashMap<(usize, usize), Arc<crate::plan::stats::TableStats>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("views", &self.views.keys().collect::<Vec<_>>())
            .field("udfs", &self.udfs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    // -- tables ------------------------------------------------------------

    pub fn create_table(&mut self, name: &str, table: Table, if_not_exists: bool) -> Result<()> {
        if self.tables.contains_key(name) || self.views.contains_key(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(Error::catalog(format!("relation '{name}' already exists")));
        }
        self.tables.insert(name.to_string(), Arc::new(table));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.tables.remove(name).is_none() && !if_exists {
            return Err(Error::catalog(format!("table '{name}' does not exist")));
        }
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&TableRef> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::catalog(format!("relation '{name}' does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Mutable access for DML; clones on shared access (copy-on-write).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let arc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| Error::catalog(format!("table '{name}' does not exist")))?;
        Ok(Arc::make_mut(arc))
    }

    /// Replace a table's contents wholesale.
    pub fn put_table(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), Arc::new(table));
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    // -- views -------------------------------------------------------------

    pub fn create_view(&mut self, name: &str, query: Query, or_replace: bool) -> Result<()> {
        if !or_replace && (self.views.contains_key(name) || self.tables.contains_key(name)) {
            return Err(Error::catalog(format!("relation '{name}' already exists")));
        }
        self.views.insert(name.to_string(), Arc::new(query));
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str, if_exists: bool) -> Result<()> {
        if self.views.remove(name).is_none() && !if_exists {
            return Err(Error::catalog(format!("view '{name}' does not exist")));
        }
        Ok(())
    }

    pub fn view(&self, name: &str) -> Option<&Arc<Query>> {
        self.views.get(name)
    }

    // -- functions -----------------------------------------------------------

    pub fn register_udf(&mut self, udf: ScalarUdf) {
        self.udfs.insert(udf.name.clone(), udf);
    }

    pub fn udf(&self, name: &str) -> Option<&ScalarUdf> {
        self.udfs.get(name)
    }

    // -- solve hook ----------------------------------------------------------

    pub fn set_solve_handler(&mut self, handler: Arc<dyn SolveHandler>) {
        self.solve_handler = Some(handler);
    }

    pub fn solve_handler(&self) -> Result<Arc<dyn SolveHandler>> {
        self.solve_handler.clone().ok_or_else(|| {
            Error::unsupported(
                "no solver infrastructure registered (SOLVESELECT requires the SolveDB+ layer)",
            )
        })
    }

    // -- virtual tables ------------------------------------------------------

    /// Install (or replace) the virtual-table provider.
    pub fn set_virtual_tables(&mut self, provider: Arc<dyn VirtualTableProvider>) {
        self.virtual_tables = Some(provider);
    }

    /// Materialize a virtual table by name, if a provider serves it.
    pub fn virtual_table(&self, name: &str) -> Option<Table> {
        self.virtual_tables.as_ref().and_then(|p| p.table(name))
    }

    /// Names served by the installed virtual-table provider, sorted.
    pub fn virtual_table_names(&self) -> Vec<String> {
        let mut v = self.virtual_tables.as_ref().map(|p| p.names()).unwrap_or_default();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;

    #[test]
    fn create_and_drop_tables() {
        let mut db = Database::new();
        db.create_table("t", Table::new(Schema::from_names(&["a"])), false).unwrap();
        assert!(db.has_table("t"));
        assert!(db.create_table("t", Table::default(), false).is_err());
        db.create_table("t", Table::default(), true).unwrap(); // no-op
        db.drop_table("t", false).unwrap();
        assert!(db.drop_table("t", false).is_err());
        db.drop_table("t", true).unwrap();
    }

    #[test]
    fn table_mut_is_copy_on_write() {
        let mut db = Database::new();
        db.create_table("t", Table::from_rows(&["a"], vec![vec![Value::Int(1)]]), false).unwrap();
        let snapshot = db.table("t").unwrap().clone();
        db.table_mut("t").unwrap().rows.push(vec![Value::Int(2)]);
        assert_eq!(snapshot.num_rows(), 1);
        assert_eq!(db.table("t").unwrap().num_rows(), 2);
    }

    #[test]
    fn cte_env_shadows_immutably() {
        let ctes = Ctes::new();
        let with_x = ctes.with("x", Arc::new(Table::default()));
        assert!(ctes.get("x").is_none());
        assert!(with_x.get("x").is_some());
    }

    #[test]
    fn missing_solve_handler_errors() {
        let db = Database::new();
        assert!(db.solve_handler().is_err());
    }
}
