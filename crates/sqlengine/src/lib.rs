//! # sqlengine — the relational substrate of the SolveDB+ reproduction
//!
//! An in-memory SQL engine (PostgreSQL-flavoured subset) with the
//! SolveDB+ language extensions parsed natively: `SOLVESELECT`,
//! `SOLVEMODEL`, common decision table expressions, `INLINE`,
//! `MODELEVAL`, named solver parameters and comparison chains.
//!
//! The engine is deliberately self-contained: lexer → parser → binder →
//! executor over row-oriented in-memory tables. The SolveDB+ semantics
//! (solver framework, symbolic evaluation, model management) live in the
//! `solvedbplus-core` crate and plug in through [`catalog::SolveHandler`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod catalog;
pub mod diag;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod script;
pub mod shape;
pub mod table;
pub mod types;
pub mod wire;

pub use catalog::{
    CatalogMutation, Ctes, Database, DurabilityHook, ScalarUdf, SolveHandler, VirtualTableProvider,
};
pub use diag::{Diagnostic, Severity};
pub use error::{Error, Result};
pub use exec::select::set_force_row_interpreter;
pub use exec::{
    execute_script, execute_sql, execute_statement, execute_statement_timed, run_query, ExecResult,
    Outcome,
};
pub use shape::statement_shape;
pub use table::{Column, Row, Schema, Table};
pub use types::{DataType, Value};
