//! Compact binary serialization for [`Value`], [`Schema`] and [`Table`].
//!
//! This is the payload format of the `solvedbd` network protocol (see
//! `crates/server/PROTOCOL.md`): result tables produced by the engine
//! must cross a process boundary, so every value variant — including
//! NULLs, timestamps, intervals and bit strings — has a stable,
//! versionless byte encoding. All multi-byte integers are little-endian.
//!
//! Layout summary:
//!
//! ```text
//! value   := tag:u8 payload
//!   0x00 NULL
//!   0x01 BOOL       b:u8 (0|1)
//!   0x02 INT        i64
//!   0x03 FLOAT      f64 bits
//!   0x04 TEXT       len:u32 utf8[len]
//!   0x05 TIMESTAMP  micros:i64
//!   0x06 INTERVAL   micros:i64
//!   0x07 BITS       width:u8 raw:u64
//!   0x08 CUSTOM     type:(len:u32 utf8) rendering:(len:u32 utf8)
//! type    := tag:u8 [len:u32 utf8[len]]      (0x08 = named type)
//! column  := name:(len:u32 utf8) type
//! schema  := ncols:u16 column*
//! table   := schema nrows:u32 (value*ncols)*nrows
//! ```
//!
//! Custom values (symbolic expressions, models) serialize as their type
//! name plus textual rendering and deliberately decode to
//! [`Value::Text`]: solver-internal objects do not round-trip across
//! the wire, only their printable form does.
//!
//! Decoding is defensive: unknown tags, truncated buffers, invalid
//! UTF-8 and absurd length prefixes all return `Err` rather than
//! panicking, so a malicious or corrupt peer cannot crash the server.

use crate::diag::{Diagnostic, Severity};
use crate::error::{Error, Result};
use crate::table::{Column, Schema, Table};
use crate::types::{BitString, DataType, Value};

/// Upper bound for a single length-prefixed string (64 MiB).
const MAX_STR_LEN: u32 = 64 << 20;
/// Upper bound for row count in one table (16M rows).
const MAX_ROWS: u32 = 16 << 20;
/// Upper bound for column count.
const MAX_COLS: u16 = 4096;

mod tag {
    pub const NULL: u8 = 0x00;
    pub const BOOL: u8 = 0x01;
    pub const INT: u8 = 0x02;
    pub const FLOAT: u8 = 0x03;
    pub const TEXT: u8 = 0x04;
    pub const TIMESTAMP: u8 = 0x05;
    pub const INTERVAL: u8 = 0x06;
    pub const BITS: u8 = 0x07;
    pub const CUSTOM: u8 = 0x08;
}

mod type_tag {
    pub const UNKNOWN: u8 = 0x00;
    pub const BOOL: u8 = 0x01;
    pub const INT: u8 = 0x02;
    pub const FLOAT: u8 = 0x03;
    pub const TEXT: u8 = 0x04;
    pub const TIMESTAMP: u8 = 0x05;
    pub const INTERVAL: u8 = 0x06;
    pub const BITS: u8 = 0x07;
    pub const NAMED: u8 = 0x08;
}

fn err(msg: impl Into<String>) -> Error {
    Error::eval(format!("wire: {}", msg.into()))
}

// ---------------------------------------------------------------------------
// Reader over a byte slice
// ---------------------------------------------------------------------------

/// Cursor over an input buffer; every read is bounds-checked.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(err(format!(
                "truncated input: need {n} byte(s) at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()?;
        if len > MAX_STR_LEN {
            return Err(err(format!("string length {len} exceeds limit {MAX_STR_LEN}")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid UTF-8 in string"))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Append the encoding of one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Bool(b) => {
            out.push(tag::BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(tag::TEXT);
            put_str(out, s);
        }
        Value::Timestamp(t) => {
            out.push(tag::TIMESTAMP);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Value::Interval(i) => {
            out.push(tag::INTERVAL);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Bits(b) => {
            out.push(tag::BITS);
            out.push(b.len());
            out.extend_from_slice(&b.raw().to_le_bytes());
        }
        Value::Custom(c) => {
            out.push(tag::CUSTOM);
            put_str(out, c.type_name());
            put_str(out, &c.to_text());
        }
    }
}

/// Decode one value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        tag::NULL => Value::Null,
        tag::BOOL => match r.u8()? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            other => return Err(err(format!("invalid bool byte 0x{other:02x}"))),
        },
        tag::INT => Value::Int(r.i64()?),
        tag::FLOAT => Value::Float(r.f64()?),
        tag::TEXT => Value::text(r.string()?),
        tag::TIMESTAMP => Value::Timestamp(r.i64()?),
        tag::INTERVAL => Value::Interval(r.i64()?),
        tag::BITS => {
            let width = r.u8()?;
            let raw = r.u64()?;
            Value::Bits(BitString::new(width, raw)?)
        }
        tag::CUSTOM => {
            // Solver-internal objects don't round-trip; keep the
            // printable form (documented lossy decode).
            let _type_name = r.string()?;
            Value::text(r.string()?)
        }
        other => return Err(err(format!("unknown value tag 0x{other:02x}"))),
    })
}

fn encode_datatype(ty: &DataType, out: &mut Vec<u8>) {
    match ty {
        DataType::Unknown => out.push(type_tag::UNKNOWN),
        DataType::Bool => out.push(type_tag::BOOL),
        DataType::Int => out.push(type_tag::INT),
        DataType::Float => out.push(type_tag::FLOAT),
        DataType::Text => out.push(type_tag::TEXT),
        DataType::Timestamp => out.push(type_tag::TIMESTAMP),
        DataType::Interval => out.push(type_tag::INTERVAL),
        DataType::Bits => out.push(type_tag::BITS),
        DataType::Named(n) => {
            out.push(type_tag::NAMED);
            put_str(out, n);
        }
    }
}

fn decode_datatype(r: &mut Reader<'_>) -> Result<DataType> {
    Ok(match r.u8()? {
        type_tag::UNKNOWN => DataType::Unknown,
        type_tag::BOOL => DataType::Bool,
        type_tag::INT => DataType::Int,
        type_tag::FLOAT => DataType::Float,
        type_tag::TEXT => DataType::Text,
        type_tag::TIMESTAMP => DataType::Timestamp,
        type_tag::INTERVAL => DataType::Interval,
        type_tag::BITS => DataType::Bits,
        type_tag::NAMED => DataType::Named(r.string()?),
        other => return Err(err(format!("unknown type tag 0x{other:02x}"))),
    })
}

/// Append the encoding of a schema.
pub fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    out.extend_from_slice(&(schema.len() as u16).to_le_bytes());
    for col in &schema.columns {
        put_str(out, &col.name);
        encode_datatype(&col.ty, out);
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let ncols = r.u16()?;
    if ncols > MAX_COLS {
        return Err(err(format!("column count {ncols} exceeds limit {MAX_COLS}")));
    }
    let mut columns = Vec::with_capacity(ncols as usize);
    for _ in 0..ncols {
        let name = r.string()?;
        let ty = decode_datatype(r)?;
        columns.push(Column::new(name, ty));
    }
    Ok(Schema::new(columns))
}

/// Encode a whole table (schema + rows) into a fresh buffer.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + table.num_rows() * table.num_columns() * 9);
    encode_schema(&table.schema, &mut out);
    out.extend_from_slice(&(table.num_rows() as u32).to_le_bytes());
    for row in &table.rows {
        for v in row {
            encode_value(v, &mut out);
        }
    }
    out
}

/// Decode a table from a buffer, requiring that the buffer is fully
/// consumed (trailing garbage is an error).
pub fn decode_table(buf: &[u8]) -> Result<Table> {
    let mut r = Reader::new(buf);
    let t = decode_table_from(&mut r)?;
    if !r.is_empty() {
        return Err(err(format!("{} trailing byte(s) after table", r.remaining())));
    }
    Ok(t)
}

/// Decode a table from a reader positioned at its start.
pub fn decode_table_from(r: &mut Reader<'_>) -> Result<Table> {
    let schema = decode_schema(r)?;
    let nrows = r.u32()?;
    if nrows > MAX_ROWS {
        return Err(err(format!("row count {nrows} exceeds limit {MAX_ROWS}")));
    }
    let ncols = schema.len();
    // Sanity bound: each value is at least one byte, so a well-formed
    // buffer must hold at least nrows * ncols more bytes.
    if (nrows as usize).saturating_mul(ncols) > r.remaining() {
        return Err(err("row count inconsistent with remaining input"));
    }
    let mut rows = Vec::with_capacity(nrows as usize);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(decode_value(r)?);
        }
        rows.push(row);
    }
    Ok(Table::with_rows(schema, rows))
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Upper bound on diagnostics in one batch (defensive).
const MAX_DIAGS: u16 = 1024;

/// Encode analyzer diagnostics (the WARNING frame payload):
///
/// ```text
/// diags := count:u16 diag*
/// diag  := code:(len:u32 utf8) severity:u8 message:(len:u32 utf8)
///          has_detail:u8 [detail:(len:u32 utf8)]
/// ```
pub fn encode_diagnostics(diags: &[Diagnostic], out: &mut Vec<u8>) {
    let n = diags.len().min(MAX_DIAGS as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    for d in &diags[..n] {
        put_str(out, &d.code);
        out.push(d.severity.code());
        put_str(out, &d.message);
        match &d.detail {
            Some(detail) => {
                out.push(1);
                put_str(out, detail);
            }
            None => out.push(0),
        }
    }
}

pub fn decode_diagnostics(r: &mut Reader<'_>) -> Result<Vec<Diagnostic>> {
    let n = r.u16()?;
    if n > MAX_DIAGS {
        return Err(err(format!("diagnostic count {n} exceeds limit {MAX_DIAGS}")));
    }
    let mut diags = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let code = r.string()?;
        let severity = Severity::from_code(r.u8()?);
        let message = r.string()?;
        let detail = match r.u8()? {
            0 => None,
            _ => Some(r.string()?),
        };
        diags.push(Diagnostic { code, severity, message, detail });
    }
    Ok(diags)
}

// ---------------------------------------------------------------------------
// Query traces (the STATS frame payload, protocol v3)
// ---------------------------------------------------------------------------

/// Defensive limits on a decoded trace.
const MAX_STAGES: u32 = 4096;
const MAX_STAGE_DEPTH: u32 = 64;
const MAX_SOLVERS: u16 = 256;
const MAX_META: u16 = 256;
const MAX_INCUMBENTS: u32 = 4096;

/// Encode a [`obs::QueryTrace`] (the STATS frame payload):
///
/// ```text
/// trace   := label:str total:u64 nstages:u16 stage* nsolvers:u16 solver*
/// stage   := name:str nanos:u64 has_rows:u8 [rows:u64]
///            nmeta:u16 (key:str value:str)* nchildren:u16 stage*
/// solver  := solver:str method:str iterations:u64 nodes_explored:u64
///            nodes_pruned:u64 evaluations:u64 restarts:u64
///            presolve_cols:u64 presolve_rows:u64 presolve_bounds:u64
///            has_objective:u8 [objective:f64]
///            nincumbents:u32 (at:u64 objective:f64)*
///            matrix_class:str integrality_proof:str blocks:u64
/// str     := len:u32 utf8[len]
/// ```
pub fn encode_trace(t: &obs::QueryTrace, out: &mut Vec<u8>) {
    put_str(out, &t.label);
    out.extend_from_slice(&t.total_nanos.to_le_bytes());
    out.extend_from_slice(&(t.stages.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for s in t.stages.iter().take(u16::MAX as usize) {
        encode_stage(s, out);
    }
    let n = t.solvers.len().min(MAX_SOLVERS as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    for st in &t.solvers[..n] {
        put_str(out, &st.solver);
        put_str(out, &st.method);
        for v in [
            st.iterations,
            st.nodes_explored,
            st.nodes_pruned,
            st.evaluations,
            st.restarts,
            st.presolve_cols,
            st.presolve_rows,
            st.presolve_bounds,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match st.objective {
            Some(obj) => {
                out.push(1);
                out.extend_from_slice(&obj.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
        let ni = st.incumbents.len().min(MAX_INCUMBENTS as usize);
        out.extend_from_slice(&(ni as u32).to_le_bytes());
        for &(at, obj) in &st.incumbents[..ni] {
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&obj.to_bits().to_le_bytes());
        }
        put_str(out, &st.matrix_class);
        put_str(out, &st.integrality_proof);
        out.extend_from_slice(&st.blocks.to_le_bytes());
    }
}

fn encode_stage(s: &obs::Stage, out: &mut Vec<u8>) {
    put_str(out, &s.name);
    out.extend_from_slice(&s.nanos.to_le_bytes());
    match s.rows {
        Some(rows) => {
            out.push(1);
            out.extend_from_slice(&rows.to_le_bytes());
        }
        None => out.push(0),
    }
    let nm = s.meta.len().min(MAX_META as usize);
    out.extend_from_slice(&(nm as u16).to_le_bytes());
    for (k, v) in &s.meta[..nm] {
        put_str(out, k);
        put_str(out, v);
    }
    out.extend_from_slice(&(s.children.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for c in s.children.iter().take(u16::MAX as usize) {
        encode_stage(c, out);
    }
}

/// Decode a query trace from a reader positioned at its start.
pub fn decode_trace(r: &mut Reader<'_>) -> Result<obs::QueryTrace> {
    let label = r.string()?;
    let total_nanos = r.u64()?;
    let nstages = r.u16()?;
    let mut budget = MAX_STAGES;
    let mut stages = Vec::with_capacity(nstages.min(64) as usize);
    for _ in 0..nstages {
        stages.push(decode_stage(r, 0, &mut budget)?);
    }
    let nsolvers = r.u16()?;
    if nsolvers > MAX_SOLVERS {
        return Err(err(format!("solver count {nsolvers} exceeds limit {MAX_SOLVERS}")));
    }
    let mut solvers = Vec::with_capacity(nsolvers as usize);
    for _ in 0..nsolvers {
        let solver = r.string()?;
        let method = r.string()?;
        let iterations = r.u64()?;
        let nodes_explored = r.u64()?;
        let nodes_pruned = r.u64()?;
        let evaluations = r.u64()?;
        let restarts = r.u64()?;
        let presolve_cols = r.u64()?;
        let presolve_rows = r.u64()?;
        let presolve_bounds = r.u64()?;
        let objective = match r.u8()? {
            0 => None,
            _ => Some(r.f64()?),
        };
        let ni = r.u32()?;
        if ni > MAX_INCUMBENTS {
            return Err(err(format!("incumbent count {ni} exceeds limit {MAX_INCUMBENTS}")));
        }
        let mut incumbents = Vec::with_capacity(ni.min(64) as usize);
        for _ in 0..ni {
            let at = r.u64()?;
            let obj = r.f64()?;
            incumbents.push((at, obj));
        }
        let matrix_class = r.string()?;
        let integrality_proof = r.string()?;
        let blocks = r.u64()?;
        solvers.push(obs::SolverStats {
            solver,
            method,
            iterations,
            nodes_explored,
            nodes_pruned,
            evaluations,
            restarts,
            presolve_cols,
            presolve_rows,
            presolve_bounds,
            objective,
            incumbents,
            matrix_class,
            integrality_proof,
            blocks,
        });
    }
    Ok(obs::QueryTrace { label, total_nanos, stages, solvers })
}

fn decode_stage(r: &mut Reader<'_>, depth: u32, budget: &mut u32) -> Result<obs::Stage> {
    if depth >= MAX_STAGE_DEPTH {
        return Err(err(format!("stage tree deeper than limit {MAX_STAGE_DEPTH}")));
    }
    if *budget == 0 {
        return Err(err(format!("stage count exceeds limit {MAX_STAGES}")));
    }
    *budget -= 1;
    let name = r.string()?;
    let nanos = r.u64()?;
    let rows = match r.u8()? {
        0 => None,
        _ => Some(r.u64()?),
    };
    let nmeta = r.u16()?;
    if nmeta > MAX_META {
        return Err(err(format!("stage meta count {nmeta} exceeds limit {MAX_META}")));
    }
    let mut meta = Vec::with_capacity(nmeta.min(16) as usize);
    for _ in 0..nmeta {
        let k = r.string()?;
        let v = r.string()?;
        meta.push((k, v));
    }
    let nchildren = r.u16()?;
    let mut children = Vec::with_capacity(nchildren.min(16) as usize);
    for _ in 0..nchildren {
        children.push(decode_stage(r, depth + 1, budget)?);
    }
    Ok(obs::Stage { name, nanos, rows, meta, children })
}

// ---------------------------------------------------------------------------
// Progress events (the PROGRESS frame payload, protocol v4)
// ---------------------------------------------------------------------------

/// Encode a live [`obs::ProgressEvent`] (the PROGRESS frame payload):
///
/// ```text
/// progress := solver:str method:str elapsed_nanos:u64
///             nodes:u64 iterations:u64 evaluations:u64
///             has_incumbent:u8 [incumbent:f64]
///             has_bound:u8 [best_bound:f64]
/// ```
pub fn encode_progress(ev: &obs::ProgressEvent, out: &mut Vec<u8>) {
    put_str(out, &ev.solver);
    put_str(out, &ev.method);
    for v in [ev.elapsed_nanos, ev.nodes, ev.iterations, ev.evaluations] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for opt in [ev.incumbent, ev.best_bound] {
        match opt {
            Some(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
    }
}

/// Decode a progress event from a reader positioned at its start.
pub fn decode_progress(r: &mut Reader<'_>) -> Result<obs::ProgressEvent> {
    let solver = r.string()?;
    let method = r.string()?;
    let elapsed_nanos = r.u64()?;
    let nodes = r.u64()?;
    let iterations = r.u64()?;
    let evaluations = r.u64()?;
    let incumbent = match r.u8()? {
        0 => None,
        _ => Some(r.f64()?),
    };
    let best_bound = match r.u8()? {
        0 => None,
        _ => Some(r.f64()?),
    };
    Ok(obs::ProgressEvent {
        solver,
        method,
        elapsed_nanos,
        nodes,
        iterations,
        evaluations,
        incumbent,
        best_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::timeval;

    fn roundtrip_value(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        let got = decode_value(&mut r).expect("decode");
        assert!(r.is_empty(), "decoder left {} byte(s)", r.remaining());
        got
    }

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::text(""),
            Value::text("héllo — ünïcode"),
            Value::Timestamp(timeval::parse_timestamp("2021-03-23 12:34:56").unwrap()),
            Value::Interval(timeval::MICROS_PER_HOUR * 36),
            Value::Bits(BitString::parse("10110").unwrap()),
        ] {
            assert_eq!(roundtrip_value(v.clone()), v, "round-trip of {v:?}");
        }
    }

    #[test]
    fn nan_float_roundtrips_bitwise() {
        let mut buf = Vec::new();
        encode_value(&Value::Float(f64::NAN), &mut buf);
        match decode_value(&mut Reader::new(&buf)).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn table_roundtrips_with_all_types() {
        let t = Table::from_rows(
            &["i", "f", "s", "ts", "iv", "b"],
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(0.5),
                    Value::text("one"),
                    Value::Timestamp(1_000_000),
                    Value::Interval(timeval::MICROS_PER_HOUR),
                    Value::Bits(BitString::parse("01").unwrap()),
                ],
                vec![Value::Null, Value::Null, Value::Null, Value::Null, Value::Null, Value::Null],
            ],
        );
        let got = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(got, t);
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = Table::from_rows(&["a"], vec![]);
        assert_eq!(decode_table(&encode_table(&t)).unwrap(), t);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected() {
        let t = Table::from_rows(&["x", "y"], vec![vec![Value::Int(7), Value::text("abc")]]);
        let full = encode_table(&t);
        for cut in 0..full.len() {
            assert!(
                decode_table(&full[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
        assert!(decode_table(&full).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let t = Table::from_rows(&["x"], vec![vec![Value::Int(1)]]);
        let mut buf = encode_table(&t);
        buf.push(0xFF);
        assert!(decode_table(&buf).is_err());
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(decode_value(&mut Reader::new(&[0xEE])).is_err());
        assert!(decode_value(&mut Reader::new(&[super::tag::BOOL, 7])).is_err());
        // Bits wider than 64.
        let mut buf = vec![super::tag::BITS, 80];
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_value(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn absurd_lengths_are_rejected_without_allocation() {
        // TEXT claiming u32::MAX bytes.
        let mut buf = vec![super::tag::TEXT];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_value(&mut Reader::new(&buf)).is_err());

        // Table claiming 2^31 rows with a 3-byte body.
        let t = Table::from_rows(&["x"], vec![]);
        let mut enc = encode_table(&t);
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&(1u32 << 31).to_le_bytes());
        enc.extend_from_slice(&[0, 0, 0]);
        assert!(decode_table(&enc).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = vec![super::tag::TEXT];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_value(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn multi_kilobyte_table_roundtrips() {
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64 * 0.25),
                    Value::text(format!("row-{i}-{}", "x".repeat(i as usize % 40))),
                ]
            })
            .collect();
        let t = Table::from_rows(&["id", "v", "s"], rows);
        let enc = encode_table(&t);
        assert!(enc.len() > 4096, "expected a multi-KB payload, got {}", enc.len());
        assert_eq!(decode_table(&enc).unwrap(), t);
    }

    fn sample_trace() -> obs::QueryTrace {
        obs::QueryTrace {
            label: "SOLVESELECT".into(),
            total_nanos: 5_000_000,
            stages: vec![
                obs::Stage::leaf("parse", 100_000),
                obs::Stage {
                    name: "solve".into(),
                    nanos: 4_000_000,
                    rows: Some(2),
                    meta: vec![("solver".into(), "solverlp".into())],
                    children: vec![obs::Stage::leaf("compile", 1_000_000)],
                },
            ],
            solvers: vec![obs::SolverStats {
                solver: "solverlp".into(),
                method: "mip".into(),
                iterations: 40,
                nodes_explored: 7,
                nodes_pruned: 3,
                evaluations: 0,
                restarts: 0,
                presolve_cols: 2,
                presolve_rows: 1,
                presolve_bounds: 3,
                objective: Some(6.5),
                incumbents: vec![(1, 4.0), (5, 6.5)],
                matrix_class: "setpart:3 knapsack:1".into(),
                integrality_proof: "implied".into(),
                blocks: 2,
            }],
        }
    }

    #[test]
    fn trace_roundtrips() {
        let t = sample_trace();
        let mut buf = Vec::new();
        encode_trace(&t, &mut buf);
        let mut r = Reader::new(&buf);
        let got = decode_trace(&mut r).unwrap();
        assert!(r.is_empty(), "decoder left {} byte(s)", r.remaining());
        assert_eq!(got, t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = obs::QueryTrace::default();
        let mut buf = Vec::new();
        encode_trace(&t, &mut buf);
        assert_eq!(decode_trace(&mut Reader::new(&buf)).unwrap(), t);
    }

    #[test]
    fn truncated_trace_is_rejected_at_every_prefix() {
        let mut buf = Vec::new();
        encode_trace(&sample_trace(), &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                decode_trace(&mut r).is_err() || !r.is_empty(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn pathological_stage_depth_is_rejected() {
        // A stage nested beyond MAX_STAGE_DEPTH must error, not recurse
        // unboundedly.
        let mut deep = obs::Stage::leaf("s", 1);
        for _ in 0..80 {
            deep = obs::Stage {
                name: "s".into(),
                nanos: 1,
                rows: None,
                meta: vec![],
                children: vec![deep],
            };
        }
        let t = obs::QueryTrace {
            label: String::new(),
            total_nanos: 1,
            stages: vec![deep],
            solvers: vec![],
        };
        let mut buf = Vec::new();
        encode_trace(&t, &mut buf);
        assert!(decode_trace(&mut Reader::new(&buf)).is_err());
    }

    fn sample_progress() -> obs::ProgressEvent {
        obs::ProgressEvent {
            solver: "solverlp".into(),
            method: "mip".into(),
            elapsed_nanos: 1_500_000_000,
            nodes: 320,
            iterations: 4_100,
            evaluations: 0,
            incumbent: Some(6.5),
            best_bound: Some(9.25),
        }
    }

    #[test]
    fn progress_roundtrips() {
        for ev in [
            sample_progress(),
            obs::ProgressEvent::default(),
            obs::ProgressEvent {
                solver: "swarmops".into(),
                method: "pso".into(),
                elapsed_nanos: 42,
                nodes: 0,
                iterations: 17,
                evaluations: 680,
                incumbent: None,
                best_bound: None,
            },
        ] {
            let mut buf = Vec::new();
            encode_progress(&ev, &mut buf);
            let mut r = Reader::new(&buf);
            let got = decode_progress(&mut r).unwrap();
            assert!(r.is_empty(), "decoder left {} byte(s)", r.remaining());
            assert_eq!(got, ev);
        }
    }

    #[test]
    fn truncated_progress_is_rejected_at_every_prefix() {
        let mut buf = Vec::new();
        encode_progress(&sample_progress(), &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                decode_progress(&mut r).is_err() || !r.is_empty(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn progress_with_absurd_string_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_progress(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn named_type_schema_roundtrips() {
        let schema = Schema::new(vec![
            Column::new("m", DataType::Named("model".into())),
            Column::new("x", DataType::Float),
        ]);
        let mut buf = Vec::new();
        encode_schema(&schema, &mut buf);
        let got = decode_schema(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, schema);
    }
}
