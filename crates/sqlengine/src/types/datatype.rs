//! Logical column types.

use crate::error::{Error, Result};
use std::fmt;

/// The engine's logical data types. `Unknown` is the type of `NULL`
/// literals and of decision cells before a solver fills them; it unifies
/// with every other type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    Unknown,
    Bool,
    Int,
    Float,
    Text,
    Timestamp,
    Interval,
    Bits,
    /// A user-defined type, by lower-case name (e.g. `model`).
    Named(String),
}

impl DataType {
    /// Resolve a SQL type name (as written in casts or `CREATE TABLE`).
    pub fn from_sql_name(name: &str) -> Result<DataType> {
        let n = name.trim().to_ascii_lowercase();
        Ok(match n.as_str() {
            "bool" | "boolean" => DataType::Bool,
            "int" | "int2" | "int4" | "int8" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "float4" | "float8" | "real" | "double" | "double precision" | "numeric"
            | "decimal" => DataType::Float,
            "text" | "varchar" | "char" | "character varying" | "string" => DataType::Text,
            "timestamp" | "timestamptz" | "datetime" | "date" => DataType::Timestamp,
            "interval" => DataType::Interval,
            "bit" | "varbit" | "bit varying" => DataType::Bits,
            "" => return Err(Error::parse("empty type name")),
            _ => DataType::Named(n),
        })
    }

    /// SQL rendering of the type.
    pub fn sql_name(&self) -> String {
        match self {
            DataType::Unknown => "unknown".into(),
            DataType::Bool => "boolean".into(),
            DataType::Int => "int8".into(),
            DataType::Float => "float8".into(),
            DataType::Text => "text".into(),
            DataType::Timestamp => "timestamp".into(),
            DataType::Interval => "interval".into(),
            DataType::Bits => "bit".into(),
            DataType::Named(n) => n.clone(),
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common type of two inputs (for set operations, CASE arms,
    /// recursive CTE unification). `Unknown` defers to the other side.
    pub fn unify(&self, other: &DataType) -> Result<DataType> {
        match (self, other) {
            (a, b) if a == b => Ok(a.clone()),
            (DataType::Unknown, b) => Ok(b.clone()),
            (a, DataType::Unknown) => Ok(a.clone()),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Ok(DataType::Float)
            }
            (a, b) => Err(Error::bind(format!(
                "cannot unify types {} and {}",
                a.sql_name(),
                b.sql_name()
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_name_aliases() {
        assert_eq!(DataType::from_sql_name("float8").unwrap(), DataType::Float);
        assert_eq!(DataType::from_sql_name("INT4").unwrap(), DataType::Int);
        assert_eq!(DataType::from_sql_name("Boolean").unwrap(), DataType::Bool);
        assert_eq!(DataType::from_sql_name("model").unwrap(), DataType::Named("model".into()));
    }

    #[test]
    fn unify_rules() {
        assert_eq!(DataType::Int.unify(&DataType::Float).unwrap(), DataType::Float);
        assert_eq!(DataType::Unknown.unify(&DataType::Text).unwrap(), DataType::Text);
        assert!(DataType::Bool.unify(&DataType::Text).is_err());
    }

    #[test]
    fn display_roundtrip() {
        for t in [DataType::Bool, DataType::Int, DataType::Float, DataType::Text] {
            assert_eq!(DataType::from_sql_name(&t.sql_name()).unwrap(), t);
        }
    }
}
