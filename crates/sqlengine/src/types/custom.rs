//! Extension values (user-defined types).
//!
//! SolveDB+ stores optimization models as first-class values in tables
//! (paper §4.4) and evaluates SQL expressions over *symbolic* decision
//! variables when compiling `MINIMIZE`/`SUBJECTTO` rules into solver
//! input. Both are implemented outside the engine as [`CustomValue`]
//! implementations; the engine only knows how to route operators, casts
//! and display through this trait — the same role `CREATE TYPE` plays in
//! PostgreSQL.

use crate::error::Result;
use crate::types::ops::{BinOp, UnOp};
use crate::types::value::Value;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A value of a user-defined type.
pub trait CustomValue: fmt::Debug + Send + Sync {
    /// Lower-case type name, e.g. `"model"` or `"linexpr"`.
    fn type_name(&self) -> &str;

    /// Textual rendering (what `SELECT` output shows).
    fn to_text(&self) -> String;

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// Equality against another custom value of (possibly) the same type.
    fn eq_custom(&self, _other: &dyn CustomValue) -> bool {
        false
    }

    /// Try to apply a binary operator. `self` sits on the left-hand side
    /// when `self_is_lhs` is true. Return `None` to signal "operator not
    /// supported by this type" (which surfaces as a type error).
    fn binop(&self, _op: BinOp, _other: &Value, _self_is_lhs: bool) -> Option<Result<Value>> {
        None
    }

    /// Try to apply a unary operator.
    fn unop(&self, _op: UnOp) -> Option<Result<Value>> {
        None
    }

    /// Try to cast to a named type (`value::mytype` syntax).
    fn cast(&self, _type_name: &str) -> Option<Result<Value>> {
        None
    }
}

/// Convenience: wrap a custom value.
pub fn custom(v: impl CustomValue + 'static) -> Value {
    Value::Custom(Arc::new(v))
}

/// Downcast a [`Value`] to a concrete custom type.
pub fn downcast<T: 'static>(v: &Value) -> Option<&T> {
    match v {
        Value::Custom(c) => c.as_any().downcast_ref::<T>(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[derive(Debug, PartialEq)]
    struct Complexish(f64, f64);

    impl CustomValue for Complexish {
        fn type_name(&self) -> &str {
            "complexish"
        }
        fn to_text(&self) -> String {
            format!("({},{})", self.0, self.1)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn eq_custom(&self, other: &dyn CustomValue) -> bool {
            other.as_any().downcast_ref::<Complexish>() == Some(self)
        }
        fn binop(&self, op: BinOp, other: &Value, _lhs: bool) -> Option<Result<Value>> {
            match (op, other) {
                (BinOp::Add, Value::Custom(c)) => {
                    let o = c.as_any().downcast_ref::<Complexish>()?;
                    Some(Ok(custom(Complexish(self.0 + o.0, self.1 + o.1))))
                }
                (BinOp::Add, _) => Some(Err(Error::eval("complexish + non-complexish"))),
                _ => None,
            }
        }
    }

    #[test]
    fn downcast_and_ops_route_through_trait() {
        let a = custom(Complexish(1.0, 2.0));
        let b = custom(Complexish(3.0, 4.0));
        let Value::Custom(ca) = &a else { panic!() };
        let sum = ca.binop(BinOp::Add, &b, true).unwrap().unwrap();
        let c = downcast::<Complexish>(&sum).unwrap();
        assert_eq!((c.0, c.1), (4.0, 6.0));
        assert!(ca.binop(BinOp::Mul, &b, true).is_none());
    }

    #[test]
    fn custom_equality() {
        let a = custom(Complexish(1.0, 2.0));
        let b = custom(Complexish(1.0, 2.0));
        let (Value::Custom(ca), Value::Custom(cb)) = (&a, &b) else { panic!() };
        assert!(ca.eq_custom(cb.as_ref()));
    }
}
