//! Type system: logical types, runtime values, operators, time and bit
//! string support, and the user-defined-type extension trait.

pub mod bits;
pub mod custom;
pub mod datatype;
pub mod ops;
pub mod timeval;
pub mod value;

pub use bits::{BitString, Bitmap};
pub use custom::{custom, downcast, CustomValue};
pub use datatype::DataType;
pub use ops::{BinOp, UnOp};
pub use value::{GroupKey, Value};
