//! Runtime values and their SQL semantics (arithmetic, comparison,
//! casting, three-valued logic helpers).

use crate::error::{Error, Result};
use crate::types::bits::BitString;
use crate::types::custom::CustomValue;
use crate::types::datatype::DataType;
use crate::types::ops::{BinOp, UnOp};
use crate::types::timeval;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A runtime value. `Text` uses `Arc<str>` so rows clone cheaply.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(Arc<str>),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
    /// Microseconds.
    Interval(i64),
    Bits(BitString),
    Custom(Arc<dyn CustomValue>),
}

impl Value {
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Unknown,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Interval(_) => DataType::Interval,
            Value::Bits(_) => DataType::Bits,
            Value::Custom(c) => DataType::Named(c.type_name().to_string()),
        }
    }

    /// Numeric accessor with Int→Float promotion.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => {
                Err(Error::eval(format!("expected a numeric value, got {}", other.type_desc())))
            }
        }
    }

    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => {
                Err(Error::eval(format!("expected an integer value, got {}", other.type_desc())))
            }
        }
    }

    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => {
                Err(Error::eval(format!("expected a boolean value, got {}", other.type_desc())))
            }
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::eval(format!("expected a text value, got {}", other.type_desc()))),
        }
    }

    fn type_desc(&self) -> String {
        format!("{} ({})", self.data_type().sql_name(), self)
    }

    /// SQL equality (`=`): NULL-safe callers must check for NULL first.
    /// Numeric values compare across Int/Float.
    pub fn sql_eq(&self, other: &Value) -> Result<bool> {
        Ok(self.sql_cmp(other)?.map(|o| o == Ordering::Equal).unwrap_or(false))
    }

    /// SQL comparison. Returns `None` if either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        use Value::*;
        Ok(Some(match (self, other) {
            (Null, _) | (_, Null) => return Ok(None),
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Interval(a), Interval(b)) => a.cmp(b),
            (Bits(a), Bits(b)) => a.cmp(b),
            (Custom(a), Custom(b)) => {
                if a.eq_custom(b.as_ref()) {
                    Ordering::Equal
                } else {
                    return Err(Error::eval(format!(
                        "values of type {} are not ordered",
                        a.type_name()
                    )));
                }
            }
            (a, b) => {
                return Err(Error::eval(format!(
                    "cannot compare {} with {}",
                    a.type_desc(),
                    b.type_desc()
                )))
            }
        }))
    }

    /// Total order used by ORDER BY and sort-based operators:
    /// NULLs sort last; cross-type comparisons fall back to a type rank so
    /// sorting never fails.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        match self.sql_cmp(other) {
            Ok(Some(o)) => o,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 255,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Timestamp(_) => 4,
            Value::Interval(_) => 5,
            Value::Bits(_) => 6,
            Value::Custom(_) => 7,
        }
    }

    /// Apply a binary operator with SQL semantics. Logic operators (AND /
    /// OR) are handled by the evaluator (they need three-valued laziness),
    /// everything else lands here. NULL propagates through all operators.
    pub fn binop(op: BinOp, lhs: &Value, rhs: &Value) -> Result<Value> {
        use Value::*;

        // Custom types get the first chance to interpret the operator —
        // this is how symbolic linear expressions and models overload
        // arithmetic, comparisons and `<<`.
        if let Custom(c) = lhs {
            if let Some(r) = c.binop(op, rhs, true) {
                return r;
            }
        }
        if let Custom(c) = rhs {
            if let Some(r) = c.binop(op, lhs, false) {
                return r;
            }
        }

        if op.is_comparison() {
            if lhs.is_null() || rhs.is_null() {
                return Ok(Null);
            }
            let ord = lhs.sql_cmp(rhs)?;
            let b = match (op, ord) {
                (_, None) => return Ok(Null),
                (BinOp::Eq, Some(o)) => o == Ordering::Equal,
                (BinOp::Ne, Some(o)) => o != Ordering::Equal,
                (BinOp::Lt, Some(o)) => o == Ordering::Less,
                (BinOp::Le, Some(o)) => o != Ordering::Greater,
                (BinOp::Gt, Some(o)) => o == Ordering::Greater,
                (BinOp::Ge, Some(o)) => o != Ordering::Less,
                _ => unreachable!(),
            };
            return Ok(Bool(b));
        }

        if let BinOp::And | BinOp::Or = op {
            // Three-valued logic: NULL does not blindly propagate.
            let a = lhs.as_bool()?;
            let b = rhs.as_bool()?;
            return Ok(match (op, a, b) {
                (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Bool(false),
                (BinOp::And, Some(true), Some(true)) => Bool(true),
                (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Bool(true),
                (BinOp::Or, Some(false), Some(false)) => Bool(false),
                _ => Null,
            });
        }

        if lhs.is_null() || rhs.is_null() {
            return Ok(Null);
        }

        match op {
            BinOp::Add => match (lhs, rhs) {
                (Int(a), Int(b)) => Ok(Int(a.checked_add(*b).ok_or_else(overflow)?)),
                (Timestamp(t), Interval(i)) | (Interval(i), Timestamp(t)) => Ok(Timestamp(t + i)),
                (Interval(a), Interval(b)) => Ok(Interval(a + b)),
                _ => Ok(Float(lhs.as_f64()? + rhs.as_f64()?)),
            },
            BinOp::Sub => match (lhs, rhs) {
                (Int(a), Int(b)) => Ok(Int(a.checked_sub(*b).ok_or_else(overflow)?)),
                (Timestamp(t), Interval(i)) => Ok(Timestamp(t - i)),
                (Timestamp(a), Timestamp(b)) => Ok(Interval(a - b)),
                (Interval(a), Interval(b)) => Ok(Interval(a - b)),
                _ => Ok(Float(lhs.as_f64()? - rhs.as_f64()?)),
            },
            BinOp::Mul => match (lhs, rhs) {
                (Int(a), Int(b)) => Ok(Int(a.checked_mul(*b).ok_or_else(overflow)?)),
                (Interval(a), b @ (Int(_) | Float(_))) => {
                    Ok(Interval((*a as f64 * b.as_f64()?) as i64))
                }
                (a @ (Int(_) | Float(_)), Interval(b)) => {
                    Ok(Interval((a.as_f64()? * *b as f64) as i64))
                }
                _ => Ok(Float(lhs.as_f64()? * rhs.as_f64()?)),
            },
            BinOp::Div => match (lhs, rhs) {
                (Int(a), Int(b)) => {
                    if *b == 0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(Int(a / b))
                    }
                }
                (Interval(a), b @ (Int(_) | Float(_))) => {
                    let d = b.as_f64()?;
                    if d == 0.0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(Interval((*a as f64 / d) as i64))
                    }
                }
                _ => {
                    let d = rhs.as_f64()?;
                    if d == 0.0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(Float(lhs.as_f64()? / d))
                    }
                }
            },
            BinOp::Mod => match (lhs, rhs) {
                (Int(a), Int(b)) => {
                    if *b == 0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(Int(a % b))
                    }
                }
                _ => {
                    let d = rhs.as_f64()?;
                    if d == 0.0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(Float(lhs.as_f64()? % d))
                    }
                }
            },
            BinOp::Pow => Ok(Float(lhs.as_f64()?.powf(rhs.as_f64()?))),
            BinOp::Concat => {
                let mut s = lhs.to_string();
                s.push_str(&rhs.to_string());
                Ok(Value::text(s))
            }
            BinOp::BitAnd => match (lhs, rhs) {
                (Bits(a), Bits(b)) => Ok(Bits(a.and(b)?)),
                (Int(a), Int(b)) => Ok(Int(a & b)),
                _ => Err(type_err(op, lhs, rhs)),
            },
            BinOp::BitOr => match (lhs, rhs) {
                (Bits(a), Bits(b)) => Ok(Bits(a.or(b)?)),
                (Int(a), Int(b)) => Ok(Int(a | b)),
                _ => Err(type_err(op, lhs, rhs)),
            },
            BinOp::BitXor => match (lhs, rhs) {
                (Bits(a), Bits(b)) => Ok(Bits(a.xor(b)?)),
                (Int(a), Int(b)) => Ok(Int(a ^ b)),
                _ => Err(type_err(op, lhs, rhs)),
            },
            BinOp::Instantiate => match (lhs, rhs) {
                (Int(a), Int(b)) if (0..64).contains(b) => Ok(Int(a << b)),
                _ => Err(type_err(op, lhs, rhs)),
            },
            _ => Err(type_err(op, lhs, rhs)),
        }
    }

    /// Apply a unary operator.
    pub fn unop(op: UnOp, v: &Value) -> Result<Value> {
        use Value::*;
        if let Custom(c) = v {
            if let Some(r) = c.unop(op) {
                return r;
            }
        }
        if v.is_null() {
            return Ok(Null);
        }
        match (op, v) {
            (UnOp::Neg, Int(i)) => Ok(Int(-i)),
            (UnOp::Neg, Float(f)) => Ok(Float(-f)),
            (UnOp::Neg, Interval(i)) => Ok(Interval(-i)),
            (UnOp::Not, Bool(b)) => Ok(Bool(!b)),
            (UnOp::BitNot, Bits(b)) => Ok(Bits(b.not())),
            (UnOp::BitNot, Int(i)) => Ok(Int(!i)),
            (op, v) => Err(Error::eval(format!(
                "operator {} not defined for {}",
                op.symbol(),
                v.type_desc()
            ))),
        }
    }

    /// Cast to a target type (SQL `CAST` / `::` semantics).
    pub fn cast(&self, ty: &DataType) -> Result<Value> {
        use Value::*;
        if self.is_null() {
            return Ok(Null);
        }
        if let DataType::Named(n) = ty {
            if let Custom(c) = self {
                if c.type_name() == n.as_str() {
                    return Ok(self.clone());
                }
                if let Some(r) = c.cast(n) {
                    return r;
                }
            }
            return Err(Error::eval(format!("cannot cast {} to {}", self.type_desc(), n)));
        }
        let fail = || Error::eval(format!("cannot cast {} to {}", self.type_desc(), ty));
        // Custom values may define their own casts to primitive types
        // (e.g. a symbolic expression casting to float8 is a no-op).
        if let Custom(c) = self {
            if let Some(r) = c.cast(&ty.sql_name()) {
                return r;
            }
            return Err(fail());
        }
        Ok(match (self, ty) {
            (v, t) if v.data_type() == *t => v.clone(),
            (Int(i), DataType::Float) => Float(*i as f64),
            (Float(f), DataType::Int) => {
                if f.is_finite() {
                    Int(f.round() as i64)
                } else {
                    return Err(fail());
                }
            }
            (Bool(b), DataType::Int) => Int(*b as i64),
            (Int(i), DataType::Bool) => Bool(*i != 0),
            (Text(s), DataType::Int) => Int(s.trim().parse().map_err(|_| fail())?),
            (Text(s), DataType::Float) => Float(s.trim().parse().map_err(|_| fail())?),
            (Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "yes" | "on" | "1" => Bool(true),
                "f" | "false" | "no" | "off" | "0" => Bool(false),
                _ => return Err(fail()),
            },
            (Text(s), DataType::Timestamp) => Timestamp(timeval::parse_timestamp(s)?),
            (Text(s), DataType::Interval) => Interval(timeval::parse_interval(s)?),
            (Text(s), DataType::Bits) => Bits(BitString::parse(s.trim())?),
            (v, DataType::Text) => Value::text(v.to_string()),
            _ => return Err(fail()),
        })
    }

    /// A hashable key for grouping / hash joins / DISTINCT.
    /// Numeric values that compare equal hash equal (1 = 1.0).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Float(f) => {
                // Normalize -0.0 and NaN so equal-comparing floats hash equal.
                let f = if *f == 0.0 { 0.0 } else { *f };
                let f = if f.is_nan() { f64::NAN } else { f };
                GroupKey::Num(f.to_bits())
            }
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::Timestamp(t) => GroupKey::Ts(*t),
            Value::Interval(i) => GroupKey::Iv(*i),
            Value::Bits(b) => GroupKey::Bits(*b),
            Value::Custom(c) => {
                GroupKey::Text(Arc::from(format!("{}::{}", c.to_text(), c.type_name())))
            }
        }
    }
}

fn overflow() -> Error {
    Error::eval("integer overflow")
}

fn type_err(op: BinOp, lhs: &Value, rhs: &Value) -> Error {
    Error::eval(format!(
        "operator {} not defined for {} and {}",
        op.symbol(),
        lhs.data_type().sql_name(),
        rhs.data_type().sql_name()
    ))
}

pub(crate) fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN sorts after everything (PostgreSQL convention).
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            _ => unreachable!(),
        }
    })
}

/// Hashable key form of a value. See [`Value::group_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Bool(bool),
    Num(u64),
    Text(Arc<str>),
    Ts(i64),
    Iv(i64),
    Bits(BitString),
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.group_key().hash(state)
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and collections: NULL == NULL
    /// here (unlike SQL `=`, which returns NULL).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Custom(a), Value::Custom(b)) => a.eq_custom(b.as_ref()),
            (a, b) => a.sql_cmp(b).ok().flatten() == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Timestamp(t) => f.write_str(&timeval::format_timestamp(*t)),
            Value::Interval(i) => f.write_str(&timeval::format_interval(*i)),
            Value::Bits(b) => write!(f, "{b}"),
            Value::Custom(c) => f.write_str(&c.to_text()),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::text(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(op: BinOp, l: impl Into<Value>, r: impl Into<Value>) -> Result<Value> {
        Value::binop(op, &l.into(), &r.into())
    }

    #[test]
    fn integer_arithmetic_is_integral() {
        assert_eq!(b(BinOp::Add, 2i64, 3i64).unwrap(), Value::Int(5));
        assert_eq!(b(BinOp::Div, 7i64, 2i64).unwrap(), Value::Int(3));
        assert_eq!(b(BinOp::Mod, 7i64, 2i64).unwrap(), Value::Int(1));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        assert_eq!(b(BinOp::Add, 2i64, 0.5).unwrap(), Value::Float(2.5));
        assert_eq!(b(BinOp::Div, 1i64, 2.0).unwrap(), Value::Float(0.5));
    }

    #[test]
    fn null_propagates() {
        assert!(b(BinOp::Add, Value::Null, 1i64).unwrap().is_null());
        assert!(b(BinOp::Eq, Value::Null, 1i64).unwrap().is_null());
        assert!(Value::unop(UnOp::Neg, &Value::Null).unwrap().is_null());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(b(BinOp::Div, 1i64, 0i64).is_err());
        assert!(b(BinOp::Div, 1.0, 0.0).is_err());
        assert!(b(BinOp::Mod, 1i64, 0i64).is_err());
    }

    #[test]
    fn power_is_float() {
        assert_eq!(b(BinOp::Pow, 2i64, 10i64).unwrap(), Value::Float(1024.0));
    }

    #[test]
    fn comparisons_cross_numeric_types() {
        assert_eq!(b(BinOp::Eq, 1i64, 1.0).unwrap(), Value::Bool(true));
        assert_eq!(b(BinOp::Lt, 1i64, 1.5).unwrap(), Value::Bool(true));
        assert_eq!(b(BinOp::Ge, 2.0, 3i64).unwrap(), Value::Bool(false));
    }

    #[test]
    fn timestamp_interval_algebra() {
        let t0 = Value::Timestamp(0);
        let hour = Value::Interval(timeval::MICROS_PER_HOUR);
        let t1 = Value::binop(BinOp::Add, &t0, &hour).unwrap();
        assert_eq!(t1, Value::Timestamp(timeval::MICROS_PER_HOUR));
        let d = Value::binop(BinOp::Sub, &t1, &t0).unwrap();
        assert_eq!(d, hour);
        let twice = Value::binop(BinOp::Mul, &hour, &Value::Int(2)).unwrap();
        assert_eq!(twice, Value::Interval(2 * timeval::MICROS_PER_HOUR));
    }

    #[test]
    fn concat_stringifies() {
        assert_eq!(b(BinOp::Concat, "x=", 3i64).unwrap(), Value::text("x=3"));
    }

    #[test]
    fn bit_ops_on_bitstrings() {
        let a = Value::Bits(BitString::parse("11").unwrap());
        let m = Value::Bits(BitString::parse("10").unwrap());
        let z = Value::Bits(BitString::parse("00").unwrap());
        let and = Value::binop(BinOp::BitAnd, &a, &m).unwrap();
        let ne = Value::binop(BinOp::Ne, &and, &z).unwrap();
        assert_eq!(ne, Value::Bool(true));
    }

    #[test]
    fn casts() {
        assert_eq!(Value::text("42").cast(&DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(Value::Float(2.6).cast(&DataType::Int).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(1).cast(&DataType::Bool).unwrap(), Value::Bool(true));
        assert_eq!(
            Value::text("2017/07/02 07:00").cast(&DataType::Timestamp).unwrap(),
            Value::Timestamp(timeval::parse_timestamp("2017-07-02 07:00").unwrap())
        );
        assert!(Value::text("nope").cast(&DataType::Int).is_err());
        assert!(Value::Null.cast(&DataType::Int).unwrap().is_null());
    }

    #[test]
    fn total_order_puts_nulls_last() {
        let mut vals = vec![Value::Null, Value::Int(2), Value::Int(1)];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert_eq!(vals[0], Value::Int(1));
        assert!(vals[2].is_null());
    }

    #[test]
    fn group_keys_unify_numerics() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.5).group_key());
        assert_eq!(Value::Float(0.0).group_key(), Value::Float(-0.0).group_key());
    }

    #[test]
    fn eager_three_valued_logic() {
        use Value::{Bool as B, Null as N};
        assert_eq!(Value::binop(BinOp::And, &B(false), &N).unwrap(), B(false));
        assert_eq!(Value::binop(BinOp::Or, &B(true), &N).unwrap(), B(true));
        assert!(Value::binop(BinOp::And, &B(true), &N).unwrap().is_null());
        assert!(Value::binop(BinOp::Or, &B(false), &N).unwrap().is_null());
    }

    #[test]
    fn int_shift_when_not_a_model() {
        assert_eq!(b(BinOp::Instantiate, 1i64, 4i64).unwrap(), Value::Int(16));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn overflow_detected() {
        assert!(b(BinOp::Add, i64::MAX, 1i64).is_err());
        assert!(b(BinOp::Mul, i64::MAX, 2i64).is_err());
    }
}
