//! Timestamp and interval support.
//!
//! Timestamps are microseconds since the Unix epoch (no time zone, like
//! PostgreSQL's `timestamp without time zone`); intervals are a plain
//! microsecond count. Civil-date conversions use Howard Hinnant's
//! `days_from_civil` algorithm, valid far beyond any date a workload here
//! produces.

use crate::error::{Error, Result};

pub const MICROS_PER_SEC: i64 = 1_000_000;
pub const MICROS_PER_MIN: i64 = 60 * MICROS_PER_SEC;
pub const MICROS_PER_HOUR: i64 = 60 * MICROS_PER_MIN;
pub const MICROS_PER_DAY: i64 = 24 * MICROS_PER_HOUR;

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Broken-down civil time extracted from a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    pub year: i64,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
    pub micros: u32,
}

/// Decompose a timestamp (micros since epoch) into civil fields.
pub fn decompose(ts: i64) -> Civil {
    let days = ts.div_euclid(MICROS_PER_DAY);
    let mut rem = ts.rem_euclid(MICROS_PER_DAY);
    let (year, month, day) = civil_from_days(days);
    let hour = (rem / MICROS_PER_HOUR) as u32;
    rem %= MICROS_PER_HOUR;
    let minute = (rem / MICROS_PER_MIN) as u32;
    rem %= MICROS_PER_MIN;
    let second = (rem / MICROS_PER_SEC) as u32;
    let micros = (rem % MICROS_PER_SEC) as u32;
    Civil { year, month, day, hour, minute, second, micros }
}

/// Compose a timestamp from civil fields.
pub fn compose(c: Civil) -> i64 {
    days_from_civil(c.year, c.month, c.day) * MICROS_PER_DAY
        + c.hour as i64 * MICROS_PER_HOUR
        + c.minute as i64 * MICROS_PER_MIN
        + c.second as i64 * MICROS_PER_SEC
        + c.micros as i64
}

/// Parse a timestamp literal. Accepts `YYYY-MM-DD[ HH:MM[:SS[.ffffff]]]`
/// and the paper's `YYYY/MM/DD HH:MM` style.
pub fn parse_timestamp(s: &str) -> Result<i64> {
    let s = s.trim();
    let bad = || Error::eval(format!("invalid timestamp literal: '{s}'"));
    let (date_part, time_part) = match s.split_once(|c| c == ' ' || c == 'T') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let sep = if date_part.contains('/') { '/' } else { '-' };
    let mut it = date_part.split(sep);
    let year: i64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let month: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let day: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(bad());
    }
    let (mut hour, mut minute, mut second, mut micros) = (0u32, 0u32, 0u32, 0u32);
    if let Some(t) = time_part {
        let mut parts = t.split(':');
        hour = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        minute = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if let Some(sec) = parts.next() {
            let (sec_s, frac) = match sec.split_once('.') {
                Some((a, b)) => (a, Some(b)),
                None => (sec, None),
            };
            second = sec_s.parse().map_err(|_| bad())?;
            if let Some(frac) = frac {
                let mut f = frac.to_string();
                while f.len() < 6 {
                    f.push('0');
                }
                micros = f[..6].parse().map_err(|_| bad())?;
            }
        }
        if parts.next().is_some() || hour > 23 || minute > 59 || second > 60 {
            return Err(bad());
        }
    }
    Ok(compose(Civil { year, month, day, hour, minute, second, micros }))
}

/// Render a timestamp as `YYYY-MM-DD HH:MM:SS[.ffffff]`.
pub fn format_timestamp(ts: i64) -> String {
    let c = decompose(ts);
    if c.micros == 0 {
        format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    } else {
        format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}.{:06}",
            c.year, c.month, c.day, c.hour, c.minute, c.second, c.micros
        )
    }
}

/// Parse an interval literal body, e.g. `1 hour`, `30 minutes`, `2 days`,
/// `1 hour 30 minutes`, `00:30:00`.
pub fn parse_interval(s: &str) -> Result<i64> {
    let s = s.trim();
    let bad = || Error::eval(format!("invalid interval literal: '{s}'"));
    if s.contains(':') && !s.chars().any(|c| c.is_alphabetic()) {
        // HH:MM[:SS]
        let neg = s.starts_with('-');
        let body = s.trim_start_matches('-');
        let mut parts = body.split(':');
        let h: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let sec: f64 = match parts.next() {
            Some(x) => x.parse().map_err(|_| bad())?,
            None => 0.0,
        };
        let total = h * MICROS_PER_HOUR + m * MICROS_PER_MIN + (sec * 1e6) as i64;
        return Ok(if neg { -total } else { total });
    }
    let mut total: i64 = 0;
    let mut toks = s.split_whitespace().peekable();
    let mut matched_any = false;
    while let Some(numtok) = toks.next() {
        let qty: f64 = numtok.parse().map_err(|_| bad())?;
        let unit = toks.next().ok_or_else(bad)?.to_ascii_lowercase();
        let unit = unit.trim_end_matches('s');
        let scale = match unit {
            "microsecond" | "us" => 1.0,
            "millisecond" | "ms" => 1e3,
            "second" | "sec" => 1e6,
            "minute" | "min" => 60e6,
            "hour" | "hr" | "h" => 3600e6,
            "day" | "d" => 86400e6,
            "week" | "w" => 7.0 * 86400e6,
            _ => return Err(bad()),
        };
        total += (qty * scale) as i64;
        matched_any = true;
    }
    if !matched_any {
        return Err(bad());
    }
    Ok(total)
}

/// Render an interval as a compact unit string.
pub fn format_interval(us: i64) -> String {
    let neg = us < 0;
    let mut rem = us.abs();
    let days = rem / MICROS_PER_DAY;
    rem %= MICROS_PER_DAY;
    let hours = rem / MICROS_PER_HOUR;
    rem %= MICROS_PER_HOUR;
    let mins = rem / MICROS_PER_MIN;
    rem %= MICROS_PER_MIN;
    let secs = rem as f64 / 1e6;
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    let mut push = |s: String| {
        if !out.is_empty() && !out.ends_with('-') {
            out.push(' ');
        }
        out.push_str(&s);
    };
    if days != 0 {
        push(format!("{days} days"));
    }
    if hours != 0 {
        push(format!("{hours} hours"));
    }
    if mins != 0 {
        push(format!("{mins} minutes"));
    }
    if secs != 0.0 || (days == 0 && hours == 0 && mins == 0) {
        if secs.fract() == 0.0 {
            push(format!("{} seconds", secs as i64));
        } else {
            push(format!("{secs} seconds"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2017, 7, 2), 17349);
        assert_eq!(civil_from_days(17349), (2017, 7, 2));
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn civil_roundtrip_sweep() {
        for z in (-800_000..800_000).step_by(137) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn parse_paper_style_timestamp() {
        let ts = parse_timestamp("2017/07/02 07:00").unwrap();
        let c = decompose(ts);
        assert_eq!((c.year, c.month, c.day, c.hour, c.minute), (2017, 7, 2, 7, 0));
        assert_eq!(format_timestamp(ts), "2017-07-02 07:00:00");
    }

    #[test]
    fn parse_iso_timestamp_with_fraction() {
        let ts = parse_timestamp("2021-03-23 12:34:56.5").unwrap();
        let c = decompose(ts);
        assert_eq!(c.second, 56);
        assert_eq!(c.micros, 500_000);
        assert!(format_timestamp(ts).ends_with(".500000"));
    }

    #[test]
    fn parse_date_only() {
        let ts = parse_timestamp("2020-02-29").unwrap();
        assert_eq!(decompose(ts).day, 29);
    }

    #[test]
    fn reject_bad_timestamps() {
        assert!(parse_timestamp("not a date").is_err());
        assert!(parse_timestamp("2020-13-01").is_err());
        assert!(parse_timestamp("2020-01-01 25:00").is_err());
    }

    #[test]
    fn interval_units() {
        assert_eq!(parse_interval("1 hour").unwrap(), MICROS_PER_HOUR);
        assert_eq!(parse_interval("2 days").unwrap(), 2 * MICROS_PER_DAY);
        assert_eq!(
            parse_interval("1 hour 30 minutes").unwrap(),
            MICROS_PER_HOUR + 30 * MICROS_PER_MIN
        );
        assert_eq!(parse_interval("00:30:00").unwrap(), 30 * MICROS_PER_MIN);
        assert_eq!(parse_interval("-01:00").unwrap(), -MICROS_PER_HOUR);
        assert!(parse_interval("banana").is_err());
    }

    #[test]
    fn interval_formatting() {
        assert_eq!(format_interval(MICROS_PER_HOUR), "1 hours");
        assert_eq!(format_interval(0), "0 seconds");
        assert_eq!(format_interval(MICROS_PER_DAY + 2 * MICROS_PER_HOUR), "1 days 2 hours");
    }

    #[test]
    fn timestamp_arithmetic_via_micros() {
        let t0 = parse_timestamp("2017/07/02 07:00").unwrap();
        let t1 = parse_timestamp("2017/07/02 08:00").unwrap();
        assert_eq!(t1 - t0, MICROS_PER_HOUR);
    }
}
