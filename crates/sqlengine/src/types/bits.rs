//! Fixed-length bit strings (PostgreSQL `bit(n)` style, `b'01'` literals).
//!
//! SolveDB+ uses bit strings for the `c_mask` column introduced by the
//! CDTE rewrite (paper §4.3, Table 5). Masks there are as wide as the
//! number of CDTEs with decision columns, so a 64-bit payload is ample;
//! the width is still tracked exactly so comparisons and display match
//! PostgreSQL semantics.

use crate::error::{Error, Result};
use std::fmt;

/// A bit string of up to 64 bits. Bit 0 of `bits` is the *rightmost*
/// character of the literal, so `b'10'` has `len = 2` and `bits = 0b10`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    len: u8,
    bits: u64,
}

impl BitString {
    pub fn new(len: u8, bits: u64) -> Result<Self> {
        if len > 64 {
            return Err(Error::eval("bit string longer than 64 bits"));
        }
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        Ok(BitString { len, bits: bits & mask })
    }

    /// Parse the body of a `b'...'` literal.
    pub fn parse(body: &str) -> Result<Self> {
        if body.len() > 64 {
            return Err(Error::eval("bit string longer than 64 bits"));
        }
        let mut bits = 0u64;
        for ch in body.chars() {
            bits <<= 1;
            match ch {
                '0' => {}
                '1' => bits |= 1,
                _ => return Err(Error::eval(format!("invalid bit string literal b'{body}'"))),
            }
        }
        Ok(BitString { len: body.len() as u8, bits })
    }

    /// A mask with exactly one bit set, `index` counted from the left of
    /// a string of width `len` (index 0 = leftmost = most significant).
    pub fn single(len: u8, index: u8) -> Result<Self> {
        if index >= len {
            return Err(Error::eval("bit index out of range"));
        }
        BitString::new(len, 1u64 << (len - 1 - index))
    }

    pub fn len(&self) -> u8 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn raw(&self) -> u64 {
        self.bits
    }

    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    fn check_len(&self, other: &Self, op: &str) -> Result<()> {
        if self.len != other.len {
            return Err(Error::eval(format!(
                "cannot {op} bit strings of different sizes ({} vs {})",
                self.len, other.len
            )));
        }
        Ok(())
    }

    pub fn and(&self, other: &Self) -> Result<Self> {
        self.check_len(other, "AND")?;
        Ok(BitString { len: self.len, bits: self.bits & other.bits })
    }

    pub fn or(&self, other: &Self) -> Result<Self> {
        self.check_len(other, "OR")?;
        Ok(BitString { len: self.len, bits: self.bits | other.bits })
    }

    pub fn xor(&self, other: &Self) -> Result<Self> {
        self.check_len(other, "XOR")?;
        Ok(BitString { len: self.len, bits: self.bits ^ other.bits })
    }

    pub fn not(&self) -> Self {
        let mask = if self.len == 64 { u64::MAX } else { (1u64 << self.len) - 1 };
        BitString { len: self.len, bits: !self.bits & mask }
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

/// A growable bitmap, used by the columnar executor as a per-column
/// validity mask (bit set = value present, bit clear = SQL NULL).
/// Unlike [`BitString`] it has no 64-bit cap: bits are stored in
/// little-endian order across `u64` blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set (`value = true`) or all clear.
    pub fn filled(len: usize, value: bool) -> Bitmap {
        let nblocks = len.div_ceil(64);
        let mut blocks = vec![if value { u64::MAX } else { 0 }; nblocks];
        if value {
            if let Some(last) = blocks.last_mut() {
                let tail = len % 64;
                if tail != 0 {
                    *last = (1u64 << tail) - 1;
                }
            }
        }
        Bitmap { blocks, len }
    }

    pub fn with_capacity(bits: usize) -> Bitmap {
        Bitmap { blocks: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, bit: bool) {
        let block = self.len / 64;
        if block == self.blocks.len() {
            self.blocks.push(0);
        }
        if bit {
            self.blocks[block] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bits past `len` read as `false`.
    pub fn get(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        (self.blocks[index / 64] >> (index % 64)) & 1 == 1
    }

    pub fn set(&mut self, index: usize, bit: bool) {
        if index >= self.len {
            return;
        }
        let mask = 1u64 << (index % 64);
        if bit {
            self.blocks[index / 64] |= mask;
        } else {
            self.blocks[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when every bit in the bitmap is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "01", "10", "1101", "0000"] {
            assert_eq!(BitString::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn paper_c_mask_semantics() {
        // (c_mask & b'10') <> b'00'  — row belongs to CDTE `p`.
        let row_p = BitString::parse("11").unwrap();
        let row_e = BitString::parse("01").unwrap();
        let sel_p = BitString::parse("10").unwrap();
        assert!(!row_p.and(&sel_p).unwrap().is_zero());
        assert!(row_e.and(&sel_p).unwrap().is_zero());
    }

    #[test]
    fn bitwise_ops() {
        let a = BitString::parse("1100").unwrap();
        let b = BitString::parse("1010").unwrap();
        assert_eq!(a.and(&b).unwrap().to_string(), "1000");
        assert_eq!(a.or(&b).unwrap().to_string(), "1110");
        assert_eq!(a.xor(&b).unwrap().to_string(), "0110");
        assert_eq!(a.not().to_string(), "0011");
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = BitString::parse("11").unwrap();
        let b = BitString::parse("111").unwrap();
        assert!(a.and(&b).is_err());
    }

    #[test]
    fn single_bit_masks() {
        assert_eq!(BitString::single(2, 0).unwrap().to_string(), "10");
        assert_eq!(BitString::single(2, 1).unwrap().to_string(), "01");
        assert_eq!(BitString::single(4, 2).unwrap().to_string(), "0010");
        assert!(BitString::single(2, 2).is_err());
    }

    #[test]
    fn reject_invalid_literals() {
        assert!(BitString::parse("012").is_err());
        assert!(BitString::parse(&"1".repeat(65)).is_err());
    }

    #[test]
    fn bitmap_push_get_roundtrip() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
        assert!(!bm.get(200));
    }

    #[test]
    fn bitmap_filled_and_set() {
        let mut bm = Bitmap::filled(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        assert!(bm.all_set());
        bm.set(64, false);
        assert!(!bm.get(64));
        assert!(!bm.all_set());
        assert_eq!(bm.count_ones(), 99);
        let empty = Bitmap::filled(70, false);
        assert_eq!(empty.count_ones(), 0);
        assert!(!empty.get(69) && !empty.get(1000));
    }
}
