//! Operator enums shared between the AST and the value layer.

use std::fmt;

/// Binary operators. Comparison, arithmetic, logic, string and bit
/// operators share one enum so that custom value types (models, symbolic
/// linear expressions) can overload any of them through a single hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    /// `^` — exponentiation (PostgreSQL semantics: float power).
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// `||` — string concatenation.
    Concat,
    /// `&` — bitwise AND on bit strings / integers.
    BitAnd,
    /// `|` — bitwise OR.
    BitOr,
    /// `#` — bitwise XOR.
    BitXor,
    /// `<<` — SolveDB+ model instantiation (paper §4.4, Algorithm 1).
    /// On integers this is the usual left shift.
    Instantiate,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// SQL text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "#",
            BinOp::Instantiate => "<<",
        }
    }

    /// Mirror of a comparison when operands are swapped (a < b ⇔ b > a).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    /// `~` bitwise NOT.
    BitNot,
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "NOT",
            UnOp::BitNot => "~",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn flip_is_involutive_on_comparisons() {
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn symbols() {
        assert_eq!(BinOp::Instantiate.symbol(), "<<");
        assert_eq!(UnOp::Not.symbol(), "NOT");
    }
}
