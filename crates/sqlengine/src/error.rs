//! Error type shared by all layers of the engine.

use std::fmt;

/// Engine-wide error. Variants are coarse-grained on purpose: the engine
/// reports errors to users as text (like a DBMS), so the message carries
/// the detail and the variant carries the category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error (bad character, unterminated string, ...).
    Lex(String),
    /// Syntax error from the parser.
    Parse(String),
    /// Binder/analyzer error (unknown column, ambiguous name, ...).
    Bind(String),
    /// Catalog error (unknown/duplicate table, schema mismatch, ...).
    Catalog(String),
    /// Runtime evaluation error (type mismatch, division by zero, ...).
    Eval(String),
    /// Error raised by a solver or the solver framework.
    Solver(String),
    /// A solve exceeded its wall-clock budget or was cancelled
    /// (`SET solver_timeout_ms` / `CANCEL <session>`). The message
    /// carries the partial incumbent trajectory when one exists.
    SolveTimeout(String),
    /// Feature recognised but not supported.
    Unsupported(String),
}

impl Error {
    pub fn lex(msg: impl Into<String>) -> Self {
        Error::Lex(msg.into())
    }
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }
    pub fn bind(msg: impl Into<String>) -> Self {
        Error::Bind(msg.into())
    }
    pub fn catalog(msg: impl Into<String>) -> Self {
        Error::Catalog(msg.into())
    }
    pub fn eval(msg: impl Into<String>) -> Self {
        Error::Eval(msg.into())
    }
    pub fn solver(msg: impl Into<String>) -> Self {
        Error::Solver(msg.into())
    }
    pub fn solve_timeout(msg: impl Into<String>) -> Self {
        Error::SolveTimeout(msg.into())
    }
    pub fn unsupported(msg: impl Into<String>) -> Self {
        Error::Unsupported(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(m) => write!(f, "lexical error: {m}"),
            Error::Parse(m) => write!(f, "syntax error: {m}"),
            Error::Bind(m) => write!(f, "binder error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Solver(m) => write!(f, "solver error: {m}"),
            Error::SolveTimeout(m) => write!(f, "solve timeout: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::parse("unexpected token");
        assert_eq!(e.to_string(), "syntax error: unexpected token");
        let e = Error::eval("division by zero");
        assert_eq!(e.to_string(), "evaluation error: division by zero");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::bind("x"), Error::bind("x"));
        assert_ne!(Error::bind("x"), Error::catalog("x"));
    }
}
