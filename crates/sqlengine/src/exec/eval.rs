//! Expression binding and evaluation.
//!
//! Expressions are *bound* once per SELECT block — names resolved to
//! (scope depth, column index), functions resolved to implementations —
//! and then evaluated per row. Binding is what makes repeated evaluation
//! (black-box solver fitness loops, §5.3 of the paper) cheap.

use crate::ast::{Expr, FuncArg, Literal, Query, SolveStmt};
use crate::catalog::{Ctes, Database, ScalarUdf};
use crate::error::{Error, Result};
use crate::exec::funcs::{self, BuiltinFn};
use crate::exec::select::run_query;
use crate::types::{BinOp, BitString, DataType, UnOp, Value};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Scopes and row environments
// ---------------------------------------------------------------------------

/// One visible column in a scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeCol {
    /// Table alias qualifying the column, if any.
    pub qualifier: Option<String>,
    pub name: String,
    pub ty: DataType,
}

/// The set of columns visible to expressions at some point of a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scope {
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    pub fn new(cols: Vec<ScopeCol>) -> Scope {
        Scope { cols }
    }

    /// Scope over a base table's columns under an alias.
    pub fn from_schema(qualifier: Option<&str>, schema: &crate::table::Schema) -> Scope {
        Scope {
            cols: schema
                .columns
                .iter()
                .map(|c| ScopeCol {
                    qualifier: qualifier.map(|q| q.to_string()),
                    name: c.name.clone(),
                    ty: c.ty.clone(),
                })
                .collect(),
        }
    }

    /// Concatenate two scopes (join output).
    pub fn join(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }

    /// Find a column; errors on ambiguity.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let q_ok = match qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q),
            };
            if q_ok && c.name == name {
                if found.is_some() {
                    return Err(Error::bind(format!("column reference '{name}' is ambiguous")));
                }
                found = Some(i);
            }
        }
        Ok(found)
    }
}

/// Runtime row environment: the current row for a scope, chained to
/// enclosing rows for correlated subqueries.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    pub scope: &'a Scope,
    pub row: &'a [Value],
    pub parent: Option<&'a Env<'a>>,
}

static EMPTY_SCOPE: Scope = Scope { cols: Vec::new() };
static EMPTY_ROW: [Value; 0] = [];

impl<'a> Env<'a> {
    pub fn empty() -> Env<'static> {
        Env { scope: &EMPTY_SCOPE, row: &EMPTY_ROW, parent: None }
    }

    pub fn at_depth(&self, depth: usize) -> &Env<'a> {
        let mut e = self;
        for _ in 0..depth {
            match e.parent {
                Some(p) => e = p,
                // Binder invariant: depths never exceed the chain.
                // Saturating at the root keeps lookup total.
                None => break,
            }
        }
        e
    }
}

/// Everything evaluation needs besides the row: catalog and CTEs.
pub struct EvalCtx<'a> {
    pub db: &'a Database,
    pub ctes: &'a Ctes,
}

// ---------------------------------------------------------------------------
// Bound expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub enum BoundExpr {
    Const(Value),
    Column {
        depth: usize,
        index: usize,
    },
    BinOp {
        op: BinOp,
        lhs: Box<BoundExpr>,
        rhs: Box<BoundExpr>,
    },
    UnOp {
        op: UnOp,
        expr: Box<BoundExpr>,
    },
    Chain {
        first: Box<BoundExpr>,
        rest: Vec<(BinOp, BoundExpr)>,
    },
    Builtin {
        f: &'static BuiltinFn,
        args: Vec<BoundExpr>,
    },
    Udf {
        udf: ScalarUdf,
        args: Vec<BoundExpr>,
    },
    Cast {
        expr: Box<BoundExpr>,
        ty: DataType,
    },
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_: Option<Box<BoundExpr>>,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
        case_insensitive: bool,
        /// Pattern pre-compiled at bind time when the pattern operand is
        /// a constant (the overwhelmingly common case); `None` means the
        /// pattern is computed per row.
        compiled: Option<Arc<LikePattern>>,
    },
    ScalarSubquery(Arc<Query>),
    InSubquery {
        expr: Box<BoundExpr>,
        query: Arc<Query>,
        negated: bool,
    },
    Exists {
        query: Arc<Query>,
        negated: bool,
    },
    SolveModel(Arc<SolveStmt>),
}

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

/// Resolves names against a stack of scopes (innermost first in
/// `scopes[0]`). Outer scopes come from enclosing queries (correlation).
pub struct Binder<'a> {
    pub db: &'a Database,
    /// scopes[0] = innermost.
    pub scopes: Vec<&'a Scope>,
}

impl<'a> Binder<'a> {
    pub fn new(db: &'a Database, scope: &'a Scope) -> Binder<'a> {
        Binder { db, scopes: vec![scope] }
    }

    /// Binder whose outer scopes mirror an environment chain.
    pub fn with_outer(
        db: &'a Database,
        scope: &'a Scope,
        outer: Option<&'a Env<'a>>,
    ) -> Binder<'a> {
        let mut scopes = vec![scope];
        let mut cur = outer;
        while let Some(e) = cur {
            scopes.push(e.scope);
            cur = e.parent;
        }
        Binder { db, scopes }
    }

    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<BoundExpr> {
        for (depth, scope) in self.scopes.iter().enumerate() {
            if let Some(index) = scope.resolve(qualifier, name)? {
                return Ok(BoundExpr::Column { depth, index });
            }
        }
        let full = match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.to_string(),
        };
        Err(Error::bind(format!("column '{full}' does not exist")))
    }

    pub fn bind(&self, expr: &Expr) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Literal(l) => BoundExpr::Const(literal_value(l)?),
            Expr::Column { qualifier, name } => self.resolve_column(qualifier.as_deref(), name)?,
            Expr::Wildcard { .. } => return Err(Error::bind("'*' is not valid in this context")),
            Expr::BinOp { op, lhs, rhs } => BoundExpr::BinOp {
                op: *op,
                lhs: Box::new(self.bind(lhs)?),
                rhs: Box::new(self.bind(rhs)?),
            },
            Expr::UnOp { op, expr } => {
                BoundExpr::UnOp { op: *op, expr: Box::new(self.bind(expr)?) }
            }
            Expr::Chain { first, rest } => BoundExpr::Chain {
                first: Box::new(self.bind(first)?),
                rest: rest
                    .iter()
                    .map(|(op, e)| Ok((*op, self.bind(e)?)))
                    .collect::<Result<Vec<_>>>()?,
            },
            Expr::Func { name, args, distinct } => {
                if *distinct {
                    return Err(Error::bind(format!(
                        "DISTINCT is only valid in aggregate calls ({name})"
                    )));
                }
                if funcs::is_aggregate(name) {
                    return Err(Error::bind(format!(
                        "aggregate function {name}() is not allowed here"
                    )));
                }
                if let Some(udf) = self.db.udf(name) {
                    let bound = self.bind_udf_args(udf, args)?;
                    BoundExpr::Udf { udf: udf.clone(), args: bound }
                } else if let Some(b) = funcs::lookup(name) {
                    if args.iter().any(|a| a.name.is_some()) {
                        return Err(Error::bind(format!(
                            "built-in function {name}() does not accept named arguments"
                        )));
                    }
                    let bound =
                        args.iter().map(|a| self.bind(&a.value)).collect::<Result<Vec<_>>>()?;
                    if bound.len() < b.min_args || bound.len() > b.max_args {
                        return Err(Error::bind(format!(
                            "function {name}() called with {} arguments",
                            bound.len()
                        )));
                    }
                    BoundExpr::Builtin { f: b, args: bound }
                } else {
                    return Err(Error::bind(format!("unknown function {name}()")));
                }
            }
            Expr::Cast { expr, ty } => {
                BoundExpr::Cast { expr: Box::new(self.bind(expr)?), ty: ty.clone() }
            }
            Expr::Case { operand, branches, else_ } => BoundExpr::Case {
                operand: operand.as_ref().map(|o| self.bind(o).map(Box::new)).transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind(c)?, self.bind(r)?)))
                    .collect::<Result<Vec<_>>>()?,
                else_: else_.as_ref().map(|e| self.bind(e).map(Box::new)).transpose()?,
            },
            Expr::IsNull { expr, negated } => {
                BoundExpr::IsNull { expr: Box::new(self.bind(expr)?), negated: *negated }
            }
            Expr::InList { expr, list, negated } => BoundExpr::InList {
                expr: Box::new(self.bind(expr)?),
                list: list.iter().map(|e| self.bind(e)).collect::<Result<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::InSubquery { expr, query, negated } => BoundExpr::InSubquery {
                expr: Box::new(self.bind(expr)?),
                query: Arc::new((**query).clone()),
                negated: *negated,
            },
            Expr::Exists { query, negated } => {
                BoundExpr::Exists { query: Arc::new((**query).clone()), negated: *negated }
            }
            Expr::ScalarSubquery(q) => BoundExpr::ScalarSubquery(Arc::new((**q).clone())),
            Expr::Between { expr, low, high, negated } => BoundExpr::Between {
                expr: Box::new(self.bind(expr)?),
                low: Box::new(self.bind(low)?),
                high: Box::new(self.bind(high)?),
                negated: *negated,
            },
            Expr::Like { expr, pattern, negated, case_insensitive } => {
                let pattern = Box::new(self.bind(pattern)?);
                // Compile constant patterns once per bound expression
                // instead of re-tokenizing the pattern string per row.
                let compiled = match pattern.as_ref() {
                    BoundExpr::Const(Value::Text(p)) => {
                        let pat = if *case_insensitive { p.to_lowercase() } else { p.to_string() };
                        Some(Arc::new(LikePattern::compile(&pat)))
                    }
                    _ => None,
                };
                BoundExpr::Like {
                    expr: Box::new(self.bind(expr)?),
                    pattern,
                    negated: *negated,
                    case_insensitive: *case_insensitive,
                    compiled,
                }
            }
            Expr::SolveModel(s) => BoundExpr::SolveModel(Arc::new((**s).clone())),
        })
    }

    fn bind_udf_args(&self, udf: &ScalarUdf, args: &[FuncArg]) -> Result<Vec<BoundExpr>> {
        let n = udf.param_names.len();
        let mut slots: Vec<Option<BoundExpr>> = vec![None; n];
        let mut positional = 0usize;
        for a in args {
            match &a.name {
                None => {
                    if positional >= n {
                        return Err(Error::bind(format!("too many arguments for {}()", udf.name)));
                    }
                    slots[positional] = Some(self.bind(&a.value)?);
                    positional += 1;
                }
                Some(name) => {
                    let idx = udf.param_names.iter().position(|p| p == name).ok_or_else(|| {
                        Error::bind(format!("{}() has no parameter named '{name}'", udf.name))
                    })?;
                    if slots[idx].is_some() {
                        return Err(Error::bind(format!(
                            "parameter '{name}' given more than once"
                        )));
                    }
                    slots[idx] = Some(self.bind(&a.value)?);
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(b) => out.push(b),
                None => {
                    let pname = &udf.param_names[i];
                    match udf.defaults.get(pname) {
                        Some(d) => out.push(BoundExpr::Const(d.clone())),
                        None => {
                            return Err(Error::bind(format!(
                                "missing argument '{pname}' for {}()",
                                udf.name
                            )))
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Convert a literal AST node to a runtime value.
pub fn literal_value(l: &Literal) -> Result<Value> {
    Ok(match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::text(s.as_str()),
        Literal::BitStr(s) => Value::Bits(BitString::parse(s)?),
        Literal::Interval(s) => Value::Interval(crate::types::timeval::parse_interval(s)?),
        Literal::Timestamp(s) => Value::Timestamp(crate::types::timeval::parse_timestamp(s)?),
    })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

impl BoundExpr {
    pub fn eval(&self, ctx: &EvalCtx<'_>, env: &Env<'_>) -> Result<Value> {
        match self {
            BoundExpr::Const(v) => Ok(v.clone()),
            BoundExpr::Column { depth, index } => Ok(env.at_depth(*depth).row[*index].clone()),
            BoundExpr::BinOp { op, lhs, rhs } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    let l = lhs.eval(ctx, env)?;
                    // Short-circuit only when the left side is a plain bool;
                    // symbolic (custom) operands need both sides evaluated.
                    match (&l, op) {
                        (Value::Bool(false), BinOp::And) => return Ok(Value::Bool(false)),
                        (Value::Bool(true), BinOp::Or) => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                    let r = rhs.eval(ctx, env)?;
                    return Value::binop(*op, &l, &r);
                }
                let l = lhs.eval(ctx, env)?;
                let r = rhs.eval(ctx, env)?;
                Value::binop(*op, &l, &r)
            }
            BoundExpr::UnOp { op, expr } => {
                let v = expr.eval(ctx, env)?;
                Value::unop(*op, &v)
            }
            BoundExpr::Chain { first, rest } => {
                // Evaluate operands once, combine pairwise with AND.
                let mut vals = Vec::with_capacity(rest.len() + 1);
                vals.push(first.eval(ctx, env)?);
                for (_, e) in rest {
                    vals.push(e.eval(ctx, env)?);
                }
                let mut acc: Option<Value> = None;
                for (i, (op, _)) in rest.iter().enumerate() {
                    let pair = Value::binop(*op, &vals[i], &vals[i + 1])?;
                    acc = Some(match acc {
                        None => pair,
                        Some(prev) => Value::binop(BinOp::And, &prev, &pair)?,
                    });
                }
                acc.ok_or_else(|| Error::eval("comparison chain has no comparisons"))
            }
            BoundExpr::Builtin { f, args } => {
                let vals = args.iter().map(|a| a.eval(ctx, env)).collect::<Result<Vec<_>>>()?;
                funcs::call(f, &vals)
            }
            BoundExpr::Udf { udf, args } => {
                let vals = args.iter().map(|a| a.eval(ctx, env)).collect::<Result<Vec<_>>>()?;
                (udf.func)(&vals)
            }
            BoundExpr::Cast { expr, ty } => expr.eval(ctx, env)?.cast(ty),
            BoundExpr::Case { operand, branches, else_ } => {
                match operand {
                    Some(op) => {
                        let v = op.eval(ctx, env)?;
                        for (c, r) in branches {
                            let cv = c.eval(ctx, env)?;
                            if !v.is_null() && !cv.is_null() && v.sql_eq(&cv)? {
                                return r.eval(ctx, env);
                            }
                        }
                    }
                    None => {
                        for (c, r) in branches {
                            if c.eval(ctx, env)?.as_bool()? == Some(true) {
                                return r.eval(ctx, env);
                            }
                        }
                    }
                }
                match else_ {
                    Some(e) => e.eval(ctx, env),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(ctx, env)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = expr.eval(ctx, env)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(ctx, env)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if v.sql_eq(&iv)? {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between { expr, low, high, negated } => {
                let v = expr.eval(ctx, env)?;
                let lo = low.eval(ctx, env)?;
                let hi = high.eval(ctx, env)?;
                let ge = Value::binop(BinOp::Ge, &v, &lo)?;
                let le = Value::binop(BinOp::Le, &v, &hi)?;
                let both = Value::binop(BinOp::And, &ge, &le)?;
                if *negated {
                    Value::unop(UnOp::Not, &both)
                } else {
                    Ok(both)
                }
            }
            BoundExpr::Like { expr, pattern, negated, case_insensitive, compiled } => {
                let v = expr.eval(ctx, env)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut s = v.as_str()?.to_string();
                if *case_insensitive {
                    s = s.to_lowercase();
                }
                let m = match compiled {
                    Some(pat) => pat.matches(&s),
                    None => {
                        let p = pattern.eval(ctx, env)?;
                        if p.is_null() {
                            return Ok(Value::Null);
                        }
                        let mut pat = p.as_str()?.to_string();
                        if *case_insensitive {
                            pat = pat.to_lowercase();
                        }
                        LikePattern::compile(&pat).matches(&s)
                    }
                };
                Ok(Value::Bool(m != *negated))
            }
            BoundExpr::ScalarSubquery(q) => {
                let t = run_query(ctx.db, ctx.ctes, q, Some(env))?;
                t.scalar()
            }
            BoundExpr::InSubquery { expr, query, negated } => {
                let v = expr.eval(ctx, env)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let t = run_query(ctx.db, ctx.ctes, query, Some(env))?;
                if t.num_columns() != 1 {
                    return Err(Error::eval("IN subquery must return a single column"));
                }
                let mut saw_null = false;
                for row in &t.rows {
                    if row[0].is_null() {
                        saw_null = true;
                    } else if v.sql_eq(&row[0])? {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Exists { query, negated } => {
                let t = run_query(ctx.db, ctx.ctes, query, Some(env))?;
                Ok(Value::Bool((t.num_rows() > 0) != *negated))
            }
            BoundExpr::SolveModel(stmt) => {
                let handler = ctx.db.solve_handler()?;
                handler.solve_model(ctx.db, stmt, ctx.ctes)
            }
        }
    }
}

/// One token of a compiled LIKE pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LikeTok {
    /// `%` — any run of characters (including empty).
    Any,
    /// `_` — exactly one character.
    One,
    /// A literal character.
    Lit(char),
}

/// A LIKE pattern tokenized once; matching re-uses the token vector
/// instead of re-scanning the pattern string for every row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikePattern {
    toks: Vec<LikeTok>,
}

impl LikePattern {
    pub fn compile(pattern: &str) -> LikePattern {
        let mut toks = Vec::with_capacity(pattern.len());
        for ch in pattern.chars() {
            match ch {
                '%' => {
                    // Collapse runs of '%' — they match the same strings
                    // and the backtracking matcher gets cheaper.
                    if toks.last() != Some(&LikeTok::Any) {
                        toks.push(LikeTok::Any);
                    }
                }
                '_' => toks.push(LikeTok::One),
                c => toks.push(LikeTok::Lit(c)),
            }
        }
        LikePattern { toks }
    }

    pub fn matches(&self, s: &str) -> bool {
        let s: Vec<char> = s.chars().collect();
        let p = &self.toks;
        // Iterative two-pointer with backtracking on the last '%'.
        let (mut si, mut pi) = (0usize, 0usize);
        let (mut star_p, mut star_s) = (usize::MAX, 0usize);
        while si < s.len() {
            if pi < p.len() && (p[pi] == LikeTok::One || p[pi] == LikeTok::Lit(s[si])) {
                si += 1;
                pi += 1;
            } else if pi < p.len() && p[pi] == LikeTok::Any {
                star_p = pi;
                star_s = si;
                pi += 1;
            } else if star_p != usize::MAX {
                pi = star_p + 1;
                star_s += 1;
                si = star_s;
            } else {
                return false;
            }
        }
        while pi < p.len() && p[pi] == LikeTok::Any {
            pi += 1;
        }
        pi == p.len()
    }
}

/// SQL LIKE pattern match (`%` = any run, `_` = any single char).
/// One-shot convenience over [`LikePattern`]; hot paths compile the
/// pattern once at bind time instead.
pub fn like_match(s: &str, pattern: &str) -> bool {
    LikePattern::compile(pattern).matches(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_str(sql: &str) -> Result<Value> {
        let db = Database::new();
        let ctes = Ctes::new();
        let scope = Scope::default();
        let binder = Binder::new(&db, &scope);
        let bound = binder.bind(&parse_expr(sql)?)?;
        let ctx = EvalCtx { db: &db, ctes: &ctes };
        bound.eval(&ctx, &Env::empty())
    }

    #[test]
    fn constant_folding_pipeline() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_str("'a' || 'b'").unwrap(), Value::text("ab"));
        assert_eq!(eval_str("abs(-4.5)").unwrap(), Value::Float(4.5));
        assert_eq!(eval_str("2 ^ 10").unwrap(), Value::Float(1024.0));
    }

    #[test]
    fn chain_evaluation() {
        assert_eq!(eval_str("0 <= 3 <= 5").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("0 <= 7 <= 5").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("1 < 2 < 3 < 4").unwrap(), Value::Bool(true));
        assert!(eval_str("0 <= NULL <= 5").unwrap().is_null());
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            eval_str("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END").unwrap(),
            Value::text("b")
        );
        assert_eq!(
            eval_str("CASE 3 WHEN 1 THEN 'one' WHEN 3 THEN 'three' END").unwrap(),
            Value::text("three")
        );
        assert!(eval_str("CASE WHEN false THEN 1 END").unwrap().is_null());
    }

    #[test]
    fn in_list_null_semantics() {
        assert_eq!(eval_str("2 IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("3 NOT IN (1, 2)").unwrap(), Value::Bool(true));
        assert!(eval_str("3 IN (1, NULL)").unwrap().is_null());
        assert_eq!(eval_str("1 IN (1, NULL)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_and_is_null() {
        assert_eq!(eval_str("3 BETWEEN 1 AND 5").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("7 NOT BETWEEN 1 AND 5").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("3 IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a%d"));
        assert!(like_match("a.b", "a.b"));
        assert_eq!(eval_str("'Hello' ILIKE 'h%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'Hello' LIKE 'h%'").unwrap(), Value::Bool(false));
    }

    #[test]
    fn constant_like_patterns_compile_at_bind_time() {
        let db = Database::new();
        let scope = Scope::default();
        let binder = Binder::new(&db, &scope);
        let bound = binder.bind(&parse_expr("'abc' LIKE 'a%'").unwrap()).unwrap();
        let BoundExpr::Like { compiled, .. } = &bound else { panic!("expected Like") };
        assert!(compiled.is_some(), "constant pattern should be pre-compiled");
        // ILIKE pre-lowercases the compiled pattern.
        let bound = binder.bind(&parse_expr("'ABC' ILIKE 'A_C'").unwrap()).unwrap();
        let BoundExpr::Like { compiled, .. } = &bound else { panic!("expected Like") };
        assert!(compiled.as_ref().unwrap().matches("abc"));
        // Non-constant patterns stay dynamic and still match correctly.
        let bound = binder.bind(&parse_expr("'ab' LIKE ('a' || '%')").unwrap()).unwrap();
        let BoundExpr::Like { compiled, .. } = &bound else { panic!("expected Like") };
        assert!(compiled.is_none());
        let ctes = Ctes::new();
        let ctx = EvalCtx { db: &db, ctes: &ctes };
        assert_eq!(bound.eval(&ctx, &Env::empty()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_pattern_tokenizer_collapses_percent_runs() {
        let p = LikePattern::compile("a%%%b");
        assert!(p.matches("ab") && p.matches("axxb") && !p.matches("b"));
        let q = LikePattern::compile("%%");
        assert!(q.matches("") && q.matches("anything"));
    }

    #[test]
    fn column_resolution_and_ambiguity() {
        let scope = Scope::new(vec![
            ScopeCol { qualifier: Some("a".into()), name: "x".into(), ty: DataType::Int },
            ScopeCol { qualifier: Some("b".into()), name: "x".into(), ty: DataType::Int },
            ScopeCol { qualifier: Some("b".into()), name: "y".into(), ty: DataType::Int },
        ]);
        assert!(scope.resolve(None, "x").is_err()); // ambiguous
        assert_eq!(scope.resolve(Some("a"), "x").unwrap(), Some(0));
        assert_eq!(scope.resolve(None, "y").unwrap(), Some(2));
        assert_eq!(scope.resolve(None, "z").unwrap(), None);
    }

    #[test]
    fn outer_scope_resolution() {
        let db = Database::new();
        let inner =
            Scope::new(vec![ScopeCol { qualifier: None, name: "a".into(), ty: DataType::Int }]);
        let outer_scope =
            Scope::new(vec![ScopeCol { qualifier: None, name: "b".into(), ty: DataType::Int }]);
        let outer_row = vec![Value::Int(42)];
        let outer_env = Env { scope: &outer_scope, row: &outer_row, parent: None };
        let binder = Binder::with_outer(&db, &inner, Some(&outer_env));
        let bound = binder.bind(&parse_expr("a + b").unwrap()).unwrap();
        let ctes = Ctes::new();
        let ctx = EvalCtx { db: &db, ctes: &ctes };
        let row = vec![Value::Int(1)];
        let env = Env { scope: &inner, row: &row, parent: Some(&outer_env) };
        assert_eq!(bound.eval(&ctx, &env).unwrap(), Value::Int(43));
    }

    #[test]
    fn udf_named_args_and_defaults() {
        let mut db = Database::new();
        db.register_udf(ScalarUdf {
            name: "f".into(),
            param_names: vec!["a".into(), "b".into(), "c".into()],
            defaults: [("c".to_string(), Value::Int(100))].into_iter().collect(),
            func: Arc::new(|args| {
                Ok(Value::Int(
                    args[0].as_i64()? * 1 + args[1].as_i64()? * 10 + args[2].as_i64()? * 1,
                ))
            }),
        });
        let scope = Scope::default();
        let ctes = Ctes::new();
        let ctx = EvalCtx { db: &db, ctes: &ctes };
        let binder = Binder::new(&db, &scope);
        let bound = binder.bind(&parse_expr("f(b := 2, a := 1)").unwrap()).unwrap();
        assert_eq!(bound.eval(&ctx, &Env::empty()).unwrap(), Value::Int(121));
        assert!(binder.bind(&parse_expr("f(zz := 1)").unwrap()).is_err());
        assert!(binder.bind(&parse_expr("f(1)").unwrap()).is_err()); // b missing
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval_str("nope(1)"), Err(Error::Bind(_))));
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        assert!(eval_str("sum(1)").is_err());
    }
}
