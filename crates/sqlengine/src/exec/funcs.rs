//! Built-in scalar functions.

use crate::error::{Error, Result};
use crate::types::{timeval, DataType, Value};

/// A built-in scalar function. `strict` functions return NULL when any
/// argument is NULL without running the body (PostgreSQL STRICT).
pub struct BuiltinFn {
    pub name: &'static str,
    pub min_args: usize,
    pub max_args: usize,
    pub strict: bool,
    pub f: fn(&[Value]) -> Result<Value>,
}

macro_rules! f1 {
    ($args:expr, $method:ident) => {{
        Ok(Value::Float($args[0].as_f64()?.$method()))
    }};
}

fn num2(args: &[Value], f: fn(f64, f64) -> f64) -> Result<Value> {
    Ok(Value::Float(f(args[0].as_f64()?, args[1].as_f64()?)))
}

fn ts_field(args: &[Value], pick: fn(timeval::Civil) -> i64) -> Result<Value> {
    match &args[0] {
        Value::Timestamp(t) => Ok(Value::Int(pick(timeval::decompose(*t)))),
        other => {
            Err(Error::eval(format!("expected a timestamp, got {}", other.data_type().sql_name())))
        }
    }
}

static BUILTINS: &[BuiltinFn] = &[
    BuiltinFn {
        name: "abs",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| match &a[0] {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            v => Ok(Value::Float(v.as_f64()?.abs())),
        },
    },
    BuiltinFn { name: "ceil", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, ceil) },
    BuiltinFn { name: "ceiling", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, ceil) },
    BuiltinFn { name: "floor", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, floor) },
    BuiltinFn {
        name: "round",
        min_args: 1,
        max_args: 2,
        strict: true,
        f: |a| {
            let x = a[0].as_f64()?;
            if a.len() == 2 {
                let digits = a[1].as_i64()?;
                let scale = 10f64.powi(digits as i32);
                Ok(Value::Float((x * scale).round() / scale))
            } else {
                Ok(Value::Float(x.round()))
            }
        },
    },
    BuiltinFn { name: "trunc", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, trunc) },
    BuiltinFn {
        name: "sqrt",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| {
            let x = a[0].as_f64()?;
            if x < 0.0 {
                Err(Error::eval("cannot take square root of a negative number"))
            } else {
                Ok(Value::Float(x.sqrt()))
            }
        },
    },
    BuiltinFn { name: "exp", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, exp) },
    BuiltinFn {
        name: "ln",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| {
            let x = a[0].as_f64()?;
            if x <= 0.0 {
                Err(Error::eval("cannot take logarithm of a non-positive number"))
            } else {
                Ok(Value::Float(x.ln()))
            }
        },
    },
    BuiltinFn {
        name: "log",
        min_args: 1,
        max_args: 2,
        strict: true,
        f: |a| {
            if a.len() == 2 {
                num2(a, |b, x| x.log(b))
            } else {
                Ok(Value::Float(a[0].as_f64()?.log10()))
            }
        },
    },
    BuiltinFn { name: "power", min_args: 2, max_args: 2, strict: true, f: |a| num2(a, f64::powf) },
    BuiltinFn { name: "pow", min_args: 2, max_args: 2, strict: true, f: |a| num2(a, f64::powf) },
    BuiltinFn {
        name: "sign",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| {
            Ok(Value::Float(
                a[0].as_f64()?.signum().min(1.0).max(-1.0)
                    * if a[0].as_f64()? == 0.0 { 0.0 } else { 1.0 },
            ))
        },
    },
    BuiltinFn {
        name: "pi",
        min_args: 0,
        max_args: 0,
        strict: true,
        f: |_| Ok(Value::Float(std::f64::consts::PI)),
    },
    BuiltinFn { name: "sin", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, sin) },
    BuiltinFn { name: "cos", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, cos) },
    BuiltinFn { name: "tan", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, tan) },
    BuiltinFn { name: "asin", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, asin) },
    BuiltinFn { name: "acos", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, acos) },
    BuiltinFn { name: "atan", min_args: 1, max_args: 1, strict: true, f: |a| f1!(a, atan) },
    BuiltinFn { name: "atan2", min_args: 2, max_args: 2, strict: true, f: |a| num2(a, f64::atan2) },
    BuiltinFn {
        name: "mod",
        min_args: 2,
        max_args: 2,
        strict: true,
        f: |a| Value::binop(crate::types::BinOp::Mod, &a[0], &a[1]),
    },
    BuiltinFn {
        name: "least",
        min_args: 1,
        max_args: usize::MAX,
        strict: false,
        f: |a| {
            Ok(a.iter()
                .filter(|v| !v.is_null())
                .min_by(|x, y| x.cmp_total(y))
                .cloned()
                .unwrap_or(Value::Null))
        },
    },
    BuiltinFn {
        name: "greatest",
        min_args: 1,
        max_args: usize::MAX,
        strict: false,
        f: |a| {
            Ok(a.iter()
                .filter(|v| !v.is_null())
                .max_by(|x, y| x.cmp_total(y))
                .cloned()
                .unwrap_or(Value::Null))
        },
    },
    BuiltinFn {
        name: "coalesce",
        min_args: 1,
        max_args: usize::MAX,
        strict: false,
        f: |a| Ok(a.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null)),
    },
    BuiltinFn {
        name: "nullif",
        min_args: 2,
        max_args: 2,
        strict: false,
        f: |a| {
            if !a[0].is_null() && !a[1].is_null() && a[0].sql_eq(&a[1])? {
                Ok(Value::Null)
            } else {
                Ok(a[0].clone())
            }
        },
    },
    BuiltinFn {
        name: "not_distinct",
        min_args: 2,
        max_args: 2,
        strict: false,
        f: |a| {
            let b = match (a[0].is_null(), a[1].is_null()) {
                (true, true) => true,
                (true, false) | (false, true) => false,
                (false, false) => a[0].sql_eq(&a[1])?,
            };
            Ok(Value::Bool(b))
        },
    },
    BuiltinFn {
        name: "length",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::Int(a[0].as_str()?.chars().count() as i64)),
    },
    BuiltinFn {
        name: "lower",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.to_lowercase())),
    },
    BuiltinFn {
        name: "upper",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.to_uppercase())),
    },
    BuiltinFn { name: "substr", min_args: 2, max_args: 3, strict: true, f: substr },
    BuiltinFn { name: "substring", min_args: 2, max_args: 3, strict: true, f: substr },
    BuiltinFn {
        name: "replace",
        min_args: 3,
        max_args: 3,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.replace(a[1].as_str()?, a[2].as_str()?))),
    },
    BuiltinFn {
        name: "trim",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.trim())),
    },
    BuiltinFn {
        name: "ltrim",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.trim_start())),
    },
    BuiltinFn {
        name: "rtrim",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| Ok(Value::text(a[0].as_str()?.trim_end())),
    },
    BuiltinFn {
        name: "concat",
        min_args: 0,
        max_args: usize::MAX,
        strict: false,
        f: |a| {
            let mut s = String::new();
            for v in a {
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            Ok(Value::text(s))
        },
    },
    BuiltinFn {
        name: "year",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.year),
    },
    BuiltinFn {
        name: "month",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.month as i64),
    },
    BuiltinFn {
        name: "day",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.day as i64),
    },
    BuiltinFn {
        name: "hour",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.hour as i64),
    },
    BuiltinFn {
        name: "minute",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.minute as i64),
    },
    BuiltinFn {
        name: "second",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| ts_field(a, |c| c.second as i64),
    },
    BuiltinFn {
        name: "epoch",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| match &a[0] {
            Value::Timestamp(t) | Value::Interval(t) => Ok(Value::Float(*t as f64 / 1e6)),
            other => Err(Error::eval(format!(
                "epoch() expects a timestamp or interval, got {}",
                other.data_type().sql_name()
            ))),
        },
    },
    BuiltinFn {
        name: "dow",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| match &a[0] {
            // 0 = Sunday, as in PostgreSQL's extract(dow ...).
            Value::Timestamp(t) => {
                let days = t.div_euclid(timeval::MICROS_PER_DAY);
                Ok(Value::Int((days + 4).rem_euclid(7)))
            }
            other => Err(Error::eval(format!(
                "dow() expects a timestamp, got {}",
                other.data_type().sql_name()
            ))),
        },
    },
    BuiltinFn {
        name: "date_trunc",
        min_args: 2,
        max_args: 2,
        strict: true,
        f: |a| {
            let unit = a[0].as_str()?.to_ascii_lowercase();
            let Value::Timestamp(t) = &a[1] else {
                return Err(Error::eval("date_trunc() expects a timestamp"));
            };
            let mut c = timeval::decompose(*t);
            c.micros = 0;
            match unit.as_str() {
                "minute" => c.second = 0,
                "hour" => {
                    c.second = 0;
                    c.minute = 0;
                }
                "day" => {
                    c.second = 0;
                    c.minute = 0;
                    c.hour = 0;
                }
                "month" => {
                    c.second = 0;
                    c.minute = 0;
                    c.hour = 0;
                    c.day = 1;
                }
                "year" => {
                    c.second = 0;
                    c.minute = 0;
                    c.hour = 0;
                    c.day = 1;
                    c.month = 1;
                }
                other => return Err(Error::eval(format!("unknown date_trunc unit '{other}'"))),
            }
            Ok(Value::Timestamp(timeval::compose(c)))
        },
    },
    BuiltinFn {
        name: "to_timestamp",
        min_args: 1,
        max_args: 1,
        strict: true,
        f: |a| match &a[0] {
            Value::Text(s) => Ok(Value::Timestamp(timeval::parse_timestamp(s)?)),
            v => Ok(Value::Timestamp((v.as_f64()? * 1e6) as i64)),
        },
    },
    BuiltinFn {
        name: "isnull",
        min_args: 1,
        max_args: 1,
        strict: false,
        f: |a| Ok(Value::Bool(a[0].is_null())),
    },
    BuiltinFn {
        name: "typeof",
        min_args: 1,
        max_args: 1,
        strict: false,
        f: |a| Ok(Value::text(a[0].data_type().sql_name())),
    },
];

fn substr(a: &[Value]) -> Result<Value> {
    let s = a[0].as_str()?;
    let chars: Vec<char> = s.chars().collect();
    // SQL substr is 1-based.
    let start = (a[1].as_i64()? - 1).max(0) as usize;
    let len = if a.len() == 3 {
        let l = a[2].as_i64()?;
        if l < 0 {
            return Err(Error::eval("negative substring length"));
        }
        l as usize
    } else {
        chars.len().saturating_sub(start)
    };
    Ok(Value::text(chars.iter().skip(start).take(len).collect::<String>()))
}

/// Look up a built-in by (lower-case) name.
pub fn lookup(name: &str) -> Option<&'static BuiltinFn> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Names of aggregate functions recognised by the engine.
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "stddev"
            | "stddev_samp"
            | "stddev_pop"
            | "variance"
            | "var_samp"
            | "var_pop"
            | "bool_and"
            | "bool_or"
            | "string_agg"
    )
}

/// Call a builtin, handling arity and strictness. Exposed for solvers
/// that evaluate expressions outside query execution.
pub fn call(b: &BuiltinFn, args: &[Value]) -> Result<Value> {
    if args.len() < b.min_args || args.len() > b.max_args {
        return Err(Error::eval(format!(
            "function {}() called with {} arguments",
            b.name,
            args.len()
        )));
    }
    if b.strict && args.iter().any(|v| v.is_null()) {
        return Ok(Value::Null);
    }
    (b.f)(args)
}

/// Ensure `DataType` is nameable from here (used in error paths).
#[allow(dead_code)]
fn _uses(_: DataType) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_named(name: &str, args: &[Value]) -> Result<Value> {
        call(lookup(name).unwrap(), args)
    }

    #[test]
    fn math_functions() {
        assert_eq!(call_named("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(call_named("ceil", &[Value::Float(1.2)]).unwrap(), Value::Float(2.0));
        assert_eq!(
            call_named("round", &[Value::Float(2.567), Value::Int(1)]).unwrap(),
            Value::Float(2.6)
        );
        assert_eq!(call_named("sqrt", &[Value::Float(9.0)]).unwrap(), Value::Float(3.0));
        assert!(call_named("sqrt", &[Value::Float(-1.0)]).is_err());
        assert!(call_named("ln", &[Value::Float(0.0)]).is_err());
    }

    #[test]
    fn strictness() {
        assert!(call_named("abs", &[Value::Null]).unwrap().is_null());
        assert_eq!(call_named("coalesce", &[Value::Null, Value::Int(2)]).unwrap(), Value::Int(2));
    }

    #[test]
    fn string_functions() {
        assert_eq!(call_named("upper", &[Value::text("ab")]).unwrap(), Value::text("AB"));
        assert_eq!(
            call_named("substr", &[Value::text("hello"), Value::Int(2), Value::Int(3)]).unwrap(),
            Value::text("ell")
        );
        assert_eq!(call_named("length", &[Value::text("héllo")]).unwrap(), Value::Int(5));
        assert_eq!(
            call_named("concat", &[Value::text("a"), Value::Null, Value::Int(1)]).unwrap(),
            Value::text("a1")
        );
    }

    #[test]
    fn time_functions() {
        let ts = Value::Timestamp(timeval::parse_timestamp("2017-07-02 07:30:15").unwrap());
        assert_eq!(call_named("month", &[ts.clone()]).unwrap(), Value::Int(7));
        assert_eq!(call_named("year", &[ts.clone()]).unwrap(), Value::Int(2017));
        assert_eq!(call_named("hour", &[ts.clone()]).unwrap(), Value::Int(7));
        // 2017-07-02 was a Sunday.
        assert_eq!(call_named("dow", &[ts.clone()]).unwrap(), Value::Int(0));
        let truncated = call_named("date_trunc", &[Value::text("hour"), ts]).unwrap();
        assert_eq!(
            truncated,
            Value::Timestamp(timeval::parse_timestamp("2017-07-02 07:00:00").unwrap())
        );
    }

    #[test]
    fn nullif_and_not_distinct() {
        assert!(call_named("nullif", &[Value::Int(1), Value::Int(1)]).unwrap().is_null());
        assert_eq!(call_named("nullif", &[Value::Int(1), Value::Int(2)]).unwrap(), Value::Int(1));
        assert_eq!(
            call_named("not_distinct", &[Value::Null, Value::Null]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            call_named("not_distinct", &[Value::Null, Value::Int(1)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arity_errors() {
        assert!(call_named("abs", &[]).is_err());
        assert!(call_named("abs", &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn aggregate_names() {
        assert!(is_aggregate("sum"));
        assert!(is_aggregate("count"));
        assert!(!is_aggregate("abs"));
    }
}

impl std::fmt::Debug for BuiltinFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BuiltinFn({})", self.name)
    }
}
