//! Query execution: FROM/joins (nested-loop + hash fast path), WHERE,
//! GROUP BY/HAVING with aggregates, DISTINCT, set operations, ORDER
//! BY/LIMIT, CTEs including `WITH RECURSIVE`, LATERAL subqueries.

use crate::ast::*;
use crate::catalog::{Ctes, Database};
use crate::diag::{Diagnostic, Severity};
use crate::error::{Error, Result};
use crate::exec::eval::{Binder, BoundExpr, Env, EvalCtx, Scope, ScopeCol};
use crate::exec::funcs;
use crate::table::{Column as TColumn, Row, Schema, Table};
use crate::types::{BinOp, DataType, GroupKey, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// Iteration guard for `WITH RECURSIVE`.
const MAX_RECURSION: usize = 1_000_000;

thread_local! {
    /// Advisory findings from solves in subquery position (no warnings
    /// channel reaches there); the statement layer drains this into the
    /// outer `ExecResult` so nested diagnostics are not dropped.
    static NESTED_SOLVE_WARNINGS: RefCell<Vec<Diagnostic>> = const { RefCell::new(Vec::new()) };
    /// Bench / differential-test hook: bypass the columnar executor.
    static FORCE_ROW: Cell<bool> = const { Cell::new(false) };
    /// Plan-cache outcome of the most recent cache-eligible query on
    /// this thread: `Some(true)` = hit, `Some(false)` = planned fresh.
    /// The statement layer drains this into `ExecResult`.
    static PLAN_CACHE_EVENT: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Drain the plan-cache hit/miss event recorded by the most recent
/// cache-eligible query on this thread.
pub fn take_plan_cache_event() -> Option<bool> {
    PLAN_CACHE_EVENT.with(|c| c.take())
}

/// Drain advisory diagnostics parked by solves executed in subquery
/// position since the last drain (thread-local).
pub fn take_nested_solve_warnings() -> Vec<Diagnostic> {
    NESTED_SOLVE_WARNINGS.with(|w| std::mem::take(&mut *w.borrow_mut()))
}

pub(crate) fn park_nested_solve_warnings(warnings: Vec<Diagnostic>) {
    if !warnings.is_empty() {
        NESTED_SOLVE_WARNINGS.with(|w| w.borrow_mut().extend(warnings));
    }
}

/// Force the row interpreter for queries run on this thread (bench and
/// differential-test hook). Returns the previous setting.
pub fn set_force_row_interpreter(on: bool) -> bool {
    FORCE_ROW.with(|f| f.replace(on))
}

pub(crate) fn force_row_interpreter() -> bool {
    FORCE_ROW.with(|f| f.get())
}

/// Execute a query and materialize the result.
pub fn run_query(db: &Database, ctes: &Ctes, q: &Query, outer: Option<&Env<'_>>) -> Result<Table> {
    run_query_planned(db, ctes, q, outer, None).map(|(t, _)| t)
}

/// Execute a query, routing plannable top-level SELECTs through the
/// columnar executor (`plan` module). Returns the optimized-plan
/// fingerprint when the columnar path ran, `None` when the row
/// interpreter handled the query. `trace`, when given, receives
/// per-operator spans (EXPLAIN ANALYZE).
pub fn run_query_planned(
    db: &Database,
    ctes: &Ctes,
    q: &Query,
    outer: Option<&Env<'_>>,
    trace: Option<&obs::Trace>,
) -> Result<(Table, Option<u64>)> {
    let mut env_ctes = ctes.clone();
    for cte in &q.with {
        let table = if q.recursive && query_references(&cte.query, &cte.name) {
            run_recursive_cte(db, &env_ctes, cte, outer)?
        } else {
            let mut t = run_query(db, &env_ctes, &cte.query, outer)?;
            rename_columns(&mut t, &cte.columns)?;
            t
        };
        env_ctes.insert(&cte.name, Arc::new(table));
    }

    if let SetExpr::Select(sel) = &q.body {
        if outer.is_none() && !force_row_interpreter() {
            // Cached plans embed resolved table handles, so only
            // CTE-free queries are cache-eligible; the key's catalog
            // epoch invalidates entries on any mutation (plan::cache).
            let cache_key = if env_ctes.is_empty() {
                Some(db.plan_cache_key(sel, &q.order_by, &q.limit, &q.offset))
            } else {
                None
            };
            if let Some(key) = &cache_key {
                if let Some(planned) = db.cached_plan(key) {
                    PLAN_CACHE_EVENT.with(|c| c.set(Some(true)));
                    let fp = planned.fingerprint();
                    let t = crate::plan::execute(db, &env_ctes, &planned, trace)?;
                    return Ok((t, Some(fp)));
                }
            }
            // Planning failures (unsupported shapes) fall back to the
            // row interpreter; execution errors are genuine and surface.
            if let Ok(Some(planned)) =
                crate::plan::plan_select(db, &env_ctes, sel, &q.order_by, &q.limit, &q.offset)
            {
                let fp = planned.fingerprint();
                let planned = Arc::new(planned);
                if let Some(key) = cache_key {
                    PLAN_CACHE_EVENT.with(|c| c.set(Some(false)));
                    db.cache_plan(key, planned.clone());
                }
                let t = crate::plan::execute(db, &env_ctes, &planned, trace)?;
                return Ok((t, Some(fp)));
            }
        }
    }

    let span = trace.map(|tr| tr.span("row interpreter"));
    let t = run_query_rows(db, &env_ctes, q, outer)?;
    if let Some(s) = &span {
        s.rows(t.num_rows() as u64);
    }
    Ok((t, None))
}

/// Render the optimized plan for `EXPLAIN SELECT` — or a one-line
/// explanation of why the query stays on the row interpreter. CTEs are
/// materialized first (the planner resolves FROM sources at plan time).
pub fn explain_query_plan(db: &Database, ctes: &Ctes, q: &Query) -> Result<Vec<String>> {
    let mut env_ctes = ctes.clone();
    for cte in &q.with {
        let table = if q.recursive && query_references(&cte.query, &cte.name) {
            run_recursive_cte(db, &env_ctes, cte, None)?
        } else {
            let mut t = run_query(db, &env_ctes, &cte.query, None)?;
            rename_columns(&mut t, &cte.columns)?;
            t
        };
        env_ctes.insert(&cte.name, Arc::new(table));
    }
    Ok(match &q.body {
        SetExpr::Select(sel) => {
            match crate::plan::plan_select(db, &env_ctes, sel, &q.order_by, &q.limit, &q.offset) {
                Ok(Some(p)) => p.explain_lines(),
                Ok(None) => vec![
                    "row interpreter (shape outside the planner: no FROM, LATERAL, USING, or SOLVE)"
                        .to_string(),
                ],
                Err(e) => vec![format!("row interpreter (planning fell back: {e})")],
            }
        }
        _ => vec!["row interpreter (set operation or VALUES body)".to_string()],
    })
}

/// The original row-at-a-time path (CTEs already materialized into
/// `env_ctes` by the caller).
fn run_query_rows(
    db: &Database,
    env_ctes: &Ctes,
    q: &Query,
    outer: Option<&Env<'_>>,
) -> Result<Table> {
    let env_ctes = env_ctes.clone();
    match &q.body {
        SetExpr::Select(sel) => {
            run_select(db, &env_ctes, sel, outer, &q.order_by, &q.limit, &q.offset)
        }
        body => {
            let mut t = run_set_expr(db, &env_ctes, body, outer)?;
            // ORDER BY over set-op output binds against output columns.
            if !q.order_by.is_empty() {
                let scope = Scope::from_schema(None, &t.schema);
                let ctx = EvalCtx { db, ctes: &env_ctes };
                let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(t.rows.len());
                let bound: Vec<(BoundExpr, &OrderItem)> = q
                    .order_by
                    .iter()
                    .map(|o| {
                        let b = bind_order_expr(db, &o.expr, &scope, &t.schema, outer)?;
                        Ok((b, o))
                    })
                    .collect::<Result<Vec<_>>>()?;
                for row in std::mem::take(&mut t.rows) {
                    let env = Env { scope: &scope, row: &row, parent: outer };
                    let keys = bound
                        .iter()
                        .map(|(b, _)| b.eval(&ctx, &env))
                        .collect::<Result<Vec<_>>>()?;
                    keyed.push((keys, row));
                }
                sort_keyed(&mut keyed, &q.order_by);
                t.rows = keyed.into_iter().map(|(_, r)| r).collect();
            }
            apply_limit_offset(db, &env_ctes, &mut t, &q.limit, &q.offset, outer)?;
            Ok(t)
        }
    }
}

fn bind_order_expr(
    db: &Database,
    expr: &Expr,
    scope: &Scope,
    schema: &Schema,
    _outer: Option<&Env<'_>>,
) -> Result<BoundExpr> {
    // Positional reference: ORDER BY 2.
    if let Expr::Literal(Literal::Int(i)) = expr {
        let idx = *i - 1;
        if idx < 0 || idx as usize >= schema.len() {
            return Err(Error::bind(format!("ORDER BY position {i} is out of range")));
        }
        return Ok(BoundExpr::Column { depth: 0, index: idx as usize });
    }
    let binder = Binder::new(db, scope);
    binder.bind(expr)
}

pub(crate) fn sort_keyed(rows: &mut [(Vec<Value>, Row)], order: &[OrderItem]) {
    rows.sort_by(|(ka, _), (kb, _)| {
        for (i, item) in order.iter().enumerate() {
            let (a, b) = (&ka[i], &kb[i]);
            // NULLS FIRST/LAST overrides; default: last for ASC, first for DESC.
            let nulls_first = item.nulls_first.unwrap_or(item.desc);
            let ord = match (a.is_null(), b.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => {
                    if nulls_first {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (false, true) => {
                    if nulls_first {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (false, false) => {
                    let o = a.cmp_total(b);
                    if item.desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn apply_limit_offset(
    db: &Database,
    ctes: &Ctes,
    t: &mut Table,
    limit: &Option<Expr>,
    offset: &Option<Expr>,
    outer: Option<&Env<'_>>,
) -> Result<()> {
    let eval_const = |e: &Expr| -> Result<Value> {
        let scope = Scope::default();
        let binder = Binder::new(db, &scope);
        let b = binder.bind(e)?;
        let ctx = EvalCtx { db, ctes };
        let env = Env::empty();
        let _ = outer; // limits are constant expressions
        b.eval(&ctx, &env)
    };
    if let Some(off) = offset {
        let v = eval_const(off)?;
        if !v.is_null() {
            let n = v.as_i64()?.max(0) as usize;
            if n >= t.rows.len() {
                t.rows.clear();
            } else {
                t.rows.drain(..n);
            }
        }
    }
    if let Some(lim) = limit {
        let v = eval_const(lim)?;
        if !v.is_null() {
            let n = v.as_i64()?.max(0) as usize;
            t.rows.truncate(n);
        }
    }
    Ok(())
}

fn rename_columns(t: &mut Table, names: &[String]) -> Result<()> {
    if names.is_empty() {
        return Ok(());
    }
    if names.len() > t.schema.len() {
        return Err(Error::bind(format!(
            "column alias list has {} entries but result has {} columns",
            names.len(),
            t.schema.len()
        )));
    }
    for (i, n) in names.iter().enumerate() {
        t.schema.columns[i].name = n.clone();
    }
    Ok(())
}

/// Does a query reference a relation named `name` (for recursive-CTE
/// detection)? Conservative: scans FROM clauses and nested queries.
pub fn query_references(q: &Query, name: &str) -> bool {
    fn set_refs(s: &SetExpr, name: &str) -> bool {
        match s {
            SetExpr::Select(sel) => {
                sel.from.iter().any(|t| table_refs(t, name))
                    || sel.where_.as_ref().map_or(false, |e| expr_refs(e, name))
                    || sel.projection.iter().any(|p| match p {
                        SelectItem::Expr { expr, .. } => expr_refs(expr, name),
                        _ => false,
                    })
            }
            SetExpr::Query(q) => query_references(q, name),
            SetExpr::SetOp { left, right, .. } => set_refs(left, name) || set_refs(right, name),
            SetExpr::Values(_) => false,
            // SOLVESELECT bodies are opaque here (conservatively false:
            // recursive CTEs over solve bodies are unsupported anyway).
            SetExpr::Solve(_) => false,
        }
    }
    fn table_refs(t: &TableRef, name: &str) -> bool {
        match t {
            TableRef::Named { name: n, .. } => n == name,
            TableRef::Subquery { query, .. } => query_references(query, name),
            TableRef::Join { left, right, .. } => table_refs(left, name) || table_refs(right, name),
        }
    }
    fn expr_refs(e: &Expr, name: &str) -> bool {
        let mut found = false;
        e.walk(&mut |node| match node {
            Expr::ScalarSubquery(q) => found |= query_references(q, name),
            Expr::InSubquery { query, .. } => found |= query_references(query, name),
            Expr::Exists { query, .. } => found |= query_references(query, name),
            _ => {}
        });
        found
    }
    // CTEs of q may shadow `name`; ignore that nicety (conservative).
    set_refs(&q.body, name)
}

/// Execute a recursive CTE per the SQL standard's iterate-to-fixpoint
/// semantics.
fn run_recursive_cte(
    db: &Database,
    ctes: &Ctes,
    cte: &Cte,
    outer: Option<&Env<'_>>,
) -> Result<Table> {
    let SetExpr::SetOp { op: SetOp::Union, all, left, right } = &cte.query.body else {
        return Err(Error::unsupported(
            "recursive CTE must have the form <anchor> UNION [ALL] <recursive term>",
        ));
    };
    // Anchor.
    let anchor_q = Query {
        with: vec![],
        recursive: false,
        body: (**left).clone(),
        order_by: vec![],
        limit: None,
        offset: None,
    };
    let mut result = run_query(db, ctes, &anchor_q, outer)?;
    rename_columns(&mut result, &cte.columns)?;
    let schema = result.schema.clone();

    let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
    if !all {
        let mut deduped = Vec::new();
        for row in std::mem::take(&mut result.rows) {
            let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
            if seen.insert(key, ()).is_none() {
                deduped.push(row);
            }
        }
        result.rows = deduped;
    }

    let mut working = result.rows.clone();
    let rec_q = Query {
        with: vec![],
        recursive: false,
        body: (**right).clone(),
        order_by: vec![],
        limit: None,
        offset: None,
    };
    let mut iterations = 0usize;
    while !working.is_empty() {
        iterations += 1;
        if iterations > MAX_RECURSION || result.rows.len() > MAX_RECURSION {
            return Err(Error::eval(format!(
                "recursive CTE '{}' exceeded the iteration limit",
                cte.name
            )));
        }
        let working_table = Table::with_rows(schema.clone(), working);
        let step_ctes = ctes.with(&cte.name, Arc::new(working_table));
        let step = run_query(db, &step_ctes, &rec_q, outer)?;
        if step.num_columns() != schema.len() {
            return Err(Error::eval(format!(
                "recursive term of '{}' returns {} columns, expected {}",
                cte.name,
                step.num_columns(),
                schema.len()
            )));
        }
        let mut new_rows = Vec::new();
        for row in step.rows {
            if *all {
                new_rows.push(row);
            } else {
                let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
                if seen.insert(key, ()).is_none() {
                    new_rows.push(row);
                }
            }
        }
        result.rows.extend(new_rows.iter().cloned());
        working = new_rows;
    }
    Ok(result)
}

fn run_set_expr(
    db: &Database,
    ctes: &Ctes,
    body: &SetExpr,
    outer: Option<&Env<'_>>,
) -> Result<Table> {
    match body {
        SetExpr::Select(sel) => run_select(db, ctes, sel, outer, &[], &None, &None),
        SetExpr::Solve(stmt) => {
            let handler = db.solve_handler()?;
            // Subquery position has no warnings channel; park advisory
            // findings in the thread-local drained by the statement
            // layer so they reach the outer ExecResult.
            let mut warnings = Vec::new();
            let t = handler.solve_select(db, stmt, ctes, &mut warnings, None)?;
            warnings.retain(|d| d.severity <= Severity::Warning);
            park_nested_solve_warnings(warnings);
            Ok(t)
        }
        SetExpr::Query(q) => run_query(db, ctes, q, outer),
        SetExpr::Values(rows) => run_values(db, ctes, rows, outer),
        SetExpr::SetOp { op, all, left, right } => {
            let l = run_set_expr(db, ctes, left, outer)?;
            let r = run_set_expr(db, ctes, right, outer)?;
            if l.num_columns() != r.num_columns() {
                return Err(Error::eval(format!(
                    "set operation column mismatch: {} vs {}",
                    l.num_columns(),
                    r.num_columns()
                )));
            }
            let schema = unify_schemas(&l.schema, &r.schema)?;
            let key_of =
                |row: &Row| -> Vec<GroupKey> { row.iter().map(|v| v.group_key()).collect() };
            let rows = match (op, all) {
                (SetOp::Union, true) => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    rows
                }
                (SetOp::Union, false) => {
                    let mut seen = HashMap::new();
                    let mut rows = Vec::new();
                    for row in l.rows.into_iter().chain(r.rows) {
                        if seen.insert(key_of(&row), ()).is_none() {
                            rows.push(row);
                        }
                    }
                    rows
                }
                (SetOp::Intersect, all) => {
                    let mut counts: HashMap<Vec<GroupKey>, usize> = HashMap::new();
                    for row in &r.rows {
                        *counts.entry(key_of(row)).or_insert(0) += 1;
                    }
                    let mut rows = Vec::new();
                    let mut emitted: HashMap<Vec<GroupKey>, usize> = HashMap::new();
                    for row in l.rows {
                        let k = key_of(&row);
                        let avail = counts.get(&k).copied().unwrap_or(0);
                        let used = emitted.entry(k).or_insert(0);
                        let cap = if *all { avail } else { avail.min(1) };
                        if *used < cap {
                            *used += 1;
                            rows.push(row);
                        }
                    }
                    rows
                }
                (SetOp::Except, all) => {
                    let mut counts: HashMap<Vec<GroupKey>, usize> = HashMap::new();
                    for row in &r.rows {
                        *counts.entry(key_of(row)).or_insert(0) += 1;
                    }
                    let mut rows = Vec::new();
                    let mut emitted: HashMap<Vec<GroupKey>, usize> = HashMap::new();
                    for row in l.rows {
                        let k = key_of(&row);
                        let removed = counts.get(&k).copied().unwrap_or(0);
                        let e = emitted.entry(k).or_insert(0);
                        if *all {
                            // multiset difference
                            if *e < removed {
                                *e += 1;
                            } else {
                                rows.push(row);
                            }
                        } else if removed == 0 && *e == 0 {
                            *e += 1;
                            rows.push(row);
                        }
                    }
                    rows
                }
            };
            Ok(Table::with_rows(schema, rows))
        }
    }
}

fn unify_schemas(l: &Schema, r: &Schema) -> Result<Schema> {
    let mut cols = Vec::with_capacity(l.len());
    for (a, b) in l.columns.iter().zip(&r.columns) {
        cols.push(TColumn::new(a.name.clone(), a.ty.unify(&b.ty)?));
    }
    Ok(Schema::new(cols))
}

fn run_values(
    db: &Database,
    ctes: &Ctes,
    rows: &[Vec<Expr>],
    outer: Option<&Env<'_>>,
) -> Result<Table> {
    let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
    let scope = Scope::default();
    let ctx = EvalCtx { db, ctes };
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != ncols {
            return Err(Error::eval("VALUES rows must all have the same arity"));
        }
        let binder = match outer {
            Some(o) => Binder::with_outer(db, &scope, Some(o)),
            None => Binder::new(db, &scope),
        };
        let mut vals = Vec::with_capacity(row.len());
        for e in row {
            let b = binder.bind(e)?;
            let env = match outer {
                Some(o) => Env { scope: &scope, row: &[], parent: Some(o) },
                None => Env::empty(),
            };
            vals.push(b.eval(&ctx, &env)?);
        }
        out_rows.push(vals);
    }
    let names: Vec<String> = (1..=ncols).map(|i| format!("column{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Ok(Table::from_rows(&name_refs, out_rows))
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

/// Materialized relation with its scope.
pub struct Rel {
    pub scope: Scope,
    pub rows: Vec<Row>,
}

/// Resolve a named relation: CTEs shadow views shadow tables.
fn scan_named(
    db: &Database,
    ctes: &Ctes,
    name: &str,
    alias: Option<&TableAlias>,
    outer: Option<&Env<'_>>,
) -> Result<Rel> {
    let qualifier = alias.map(|a| a.name.as_str()).unwrap_or(name);
    if let Some(t) = ctes.get(name) {
        let mut scope = Scope::from_schema(Some(qualifier), &t.schema);
        apply_alias_columns(&mut scope, alias)?;
        return Ok(Rel { scope, rows: t.rows.clone() });
    }
    if let Some(vq) = db.view(name) {
        let t = run_query(db, ctes, vq, outer)?;
        let mut scope = Scope::from_schema(Some(qualifier), &t.schema);
        apply_alias_columns(&mut scope, alias)?;
        return Ok(Rel { scope, rows: t.rows });
    }
    match db.table(name) {
        Ok(t) => {
            let mut scope = Scope::from_schema(Some(qualifier), &t.schema);
            apply_alias_columns(&mut scope, alias)?;
            Ok(Rel { scope, rows: t.rows.clone() })
        }
        Err(e) => {
            // Catalog miss: fall back to virtual tables (sdb_* views),
            // which real relations of the same name shadow.
            match db.virtual_table(name) {
                Some(t) => {
                    let mut scope = Scope::from_schema(Some(qualifier), &t.schema);
                    apply_alias_columns(&mut scope, alias)?;
                    Ok(Rel { scope, rows: t.rows })
                }
                None => Err(e),
            }
        }
    }
}

pub(crate) fn apply_alias_columns(scope: &mut Scope, alias: Option<&TableAlias>) -> Result<()> {
    if let Some(a) = alias {
        if !a.columns.is_empty() {
            if a.columns.len() > scope.cols.len() {
                return Err(Error::bind(format!(
                    "alias '{}' has {} columns but relation has {}",
                    a.name,
                    a.columns.len(),
                    scope.cols.len()
                )));
            }
            for (i, n) in a.columns.iter().enumerate() {
                scope.cols[i].name = n.clone();
            }
        }
    }
    Ok(())
}

/// Evaluate one table primary. For LATERAL subqueries `left` provides the
/// rows already in scope; the result is produced per left row by the
/// caller instead.
fn eval_table_primary(
    db: &Database,
    ctes: &Ctes,
    tref: &TableRef,
    outer: Option<&Env<'_>>,
) -> Result<Rel> {
    match tref {
        TableRef::Named { name, alias } => scan_named(db, ctes, name, alias.as_ref(), outer),
        TableRef::Subquery { query, lateral: _, alias } => {
            let t = run_query(db, ctes, query, outer)?;
            let qualifier = alias.as_ref().map(|a| a.name.as_str());
            let mut scope = Scope::from_schema(qualifier, &t.schema);
            apply_alias_columns(&mut scope, alias.as_ref())?;
            Ok(Rel { scope, rows: t.rows })
        }
        TableRef::Join { .. } => eval_join(db, ctes, tref, outer),
    }
}

fn is_lateral(t: &TableRef) -> bool {
    matches!(t, TableRef::Subquery { lateral: true, .. })
}

/// Evaluate a join tree.
fn eval_join(db: &Database, ctes: &Ctes, tref: &TableRef, outer: Option<&Env<'_>>) -> Result<Rel> {
    let TableRef::Join { left, right, kind, constraint } = tref else {
        return eval_table_primary(db, ctes, tref, outer);
    };
    let l = eval_join(db, ctes, left, outer)?;

    // LATERAL right side: evaluate per left row.
    if is_lateral(right) {
        let TableRef::Subquery { query, alias, .. } = right.as_ref() else { unreachable!() };
        let qualifier = alias.as_ref().map(|a| a.name.as_str());
        let mut right_scope: Option<Scope> = None;
        let mut out_rows: Vec<Row> = Vec::new();
        let mut pending: Vec<(Row, Vec<Row>)> = Vec::new();
        for lrow in &l.rows {
            let env = Env { scope: &l.scope, row: lrow, parent: outer };
            let t = run_query(db, ctes, query, Some(&env))?;
            if right_scope.is_none() {
                let mut s = Scope::from_schema(qualifier, &t.schema);
                apply_alias_columns(&mut s, alias.as_ref())?;
                right_scope = Some(s);
            }
            pending.push((lrow.clone(), t.rows));
        }
        let right_scope = match right_scope {
            Some(s) => s,
            None => {
                // No left rows: derive the scope by running the subquery
                // against an all-NULL left row so the schema is known.
                let null_row: Row = vec![Value::Null; l.scope.cols.len()];
                let env = Env { scope: &l.scope, row: &null_row, parent: outer };
                let t = run_query(db, ctes, query, Some(&env))?;
                let mut s = Scope::from_schema(qualifier, &t.schema);
                apply_alias_columns(&mut s, alias.as_ref())?;
                s
            }
        };
        let combined = l.scope.join(&right_scope);
        let cond = bind_join_condition(db, constraint, &l.scope, &right_scope, &combined, outer)?;
        let ctx = EvalCtx { db, ctes };
        for (lrow, rrows) in pending {
            let mut matched = false;
            for rrow in &rrows {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if eval_condition(&cond, &ctx, &combined, &row, outer)? {
                    matched = true;
                    out_rows.push(row);
                }
            }
            if !matched && matches!(kind, JoinKind::Left) {
                let mut row = lrow.clone();
                row.extend(vec![Value::Null; right_scope.cols.len()]);
                out_rows.push(row);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            return Err(Error::unsupported("RIGHT/FULL JOIN LATERAL"));
        }
        return Ok(Rel { scope: combined, rows: out_rows });
    }

    let r = eval_join(db, ctes, right, outer)?;
    join_rels(db, ctes, l, r, *kind, constraint, outer)
}

enum JoinCond {
    None,
    Expr(BoundExpr),
}

fn bind_join_condition(
    db: &Database,
    constraint: &JoinConstraint,
    _left: &Scope,
    _right: &Scope,
    combined: &Scope,
    outer: Option<&Env<'_>>,
) -> Result<JoinCond> {
    match constraint {
        JoinConstraint::None => Ok(JoinCond::None),
        JoinConstraint::On(e) => {
            let binder = Binder::with_outer(db, combined, outer);
            Ok(JoinCond::Expr(binder.bind(e)?))
        }
        // USING joins take the hash-join path before a condition is
        // ever bound, so a bound USING condition is unreachable here.
        JoinConstraint::Using(_) => Ok(JoinCond::None),
    }
}

fn eval_condition(
    cond: &JoinCond,
    ctx: &EvalCtx<'_>,
    scope: &Scope,
    row: &Row,
    outer: Option<&Env<'_>>,
) -> Result<bool> {
    match cond {
        JoinCond::None => Ok(true),
        JoinCond::Expr(b) => {
            let env = Env { scope, row, parent: outer };
            Ok(b.eval(ctx, &env)?.as_bool()? == Some(true))
        }
    }
}

/// Try to extract equi-join keys from an ON conjunction:
/// every conjunct must be `l = r` with one side fully in the left scope
/// and the other fully in the right scope.
pub(crate) fn try_equi_keys(
    db: &Database,
    e: &Expr,
    left: &Scope,
    right: &Scope,
) -> Option<(Vec<BoundExpr>, Vec<BoundExpr>)> {
    fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::BinOp { op: BinOp::And, lhs, rhs } = e {
            collect(lhs, out);
            collect(rhs, out);
        } else {
            out.push(e);
        }
    }
    let mut conjuncts = Vec::new();
    collect(e, &mut conjuncts);
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    for c in conjuncts {
        let Expr::BinOp { op: BinOp::Eq, lhs, rhs } = c else { return None };
        let lb = Binder::new(db, left);
        let rb = Binder::new(db, right);
        // lhs∈left, rhs∈right — or swapped.
        if let (Ok(a), Ok(b)) = (lb.bind(lhs), rb.bind(rhs)) {
            if !bound_uses_outer(&a) && !bound_uses_outer(&b) {
                lkeys.push(a);
                rkeys.push(b);
                continue;
            }
        }
        if let (Ok(a), Ok(b)) = (lb.bind(rhs), rb.bind(lhs)) {
            if !bound_uses_outer(&a) && !bound_uses_outer(&b) {
                lkeys.push(a);
                rkeys.push(b);
                continue;
            }
        }
        return None;
    }
    Some((lkeys, rkeys))
}

fn bound_uses_outer(b: &BoundExpr) -> bool {
    // Subqueries may correlate arbitrarily; treat them as outer-using.
    match b {
        BoundExpr::Column { depth, .. } => *depth > 0,
        BoundExpr::Const(_) => false,
        BoundExpr::BinOp { lhs, rhs, .. } => bound_uses_outer(lhs) || bound_uses_outer(rhs),
        BoundExpr::UnOp { expr, .. } => bound_uses_outer(expr),
        BoundExpr::Chain { first, rest } => {
            bound_uses_outer(first) || rest.iter().any(|(_, e)| bound_uses_outer(e))
        }
        BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
            args.iter().any(bound_uses_outer)
        }
        BoundExpr::Cast { expr, .. } => bound_uses_outer(expr),
        BoundExpr::Case { operand, branches, else_ } => {
            operand.as_deref().map_or(false, bound_uses_outer)
                || branches.iter().any(|(c, r)| bound_uses_outer(c) || bound_uses_outer(r))
                || else_.as_deref().map_or(false, bound_uses_outer)
        }
        BoundExpr::IsNull { expr, .. } => bound_uses_outer(expr),
        BoundExpr::InList { expr, list, .. } => {
            bound_uses_outer(expr) || list.iter().any(bound_uses_outer)
        }
        BoundExpr::Between { expr, low, high, .. } => {
            bound_uses_outer(expr) || bound_uses_outer(low) || bound_uses_outer(high)
        }
        BoundExpr::Like { expr, pattern, .. } => {
            bound_uses_outer(expr) || bound_uses_outer(pattern)
        }
        BoundExpr::ScalarSubquery(_)
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::SolveModel(_) => true,
    }
}

/// Join two materialized relations. Equi-joins (ON conjunction of
/// equalities, or USING) take a hash-join path; everything else falls
/// back to a nested loop.
pub fn join_rels(
    db: &Database,
    ctes: &Ctes,
    l: Rel,
    r: Rel,
    kind: JoinKind,
    constraint: &JoinConstraint,
    outer: Option<&Env<'_>>,
) -> Result<Rel> {
    let combined = l.scope.join(&r.scope);
    let ctx = EvalCtx { db, ctes };

    // Hash-join path.
    let keys =
        match constraint {
            JoinConstraint::Using(cols) => {
                let mut lk = Vec::new();
                let mut rk = Vec::new();
                for c in cols {
                    let li = l.scope.resolve(None, c)?.ok_or_else(|| {
                        Error::bind(format!("USING column '{c}' not in left side"))
                    })?;
                    let ri = r.scope.resolve(None, c)?.ok_or_else(|| {
                        Error::bind(format!("USING column '{c}' not in right side"))
                    })?;
                    lk.push(BoundExpr::Column { depth: 0, index: li });
                    rk.push(BoundExpr::Column { depth: 0, index: ri });
                }
                Some((lk, rk))
            }
            JoinConstraint::On(e) if !matches!(kind, JoinKind::Cross) => {
                try_equi_keys(db, e, &l.scope, &r.scope)
            }
            _ => None,
        };

    if let Some((lkeys, rkeys)) = keys {
        return hash_join(&ctx, l, r, combined, kind, &lkeys, &rkeys, outer);
    }

    // Nested loop.
    let cond = bind_join_condition(db, constraint, &l.scope, &r.scope, &combined, outer)?;
    let mut rows = Vec::new();
    let mut right_matched = vec![false; r.rows.len()];
    for lrow in &l.rows {
        let mut matched = false;
        for (ri, rrow) in r.rows.iter().enumerate() {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            if eval_condition(&cond, &ctx, &combined, &row, outer)? {
                matched = true;
                right_matched[ri] = true;
                rows.push(row);
            }
        }
        if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
            let mut row = lrow.clone();
            row.extend(vec![Value::Null; r.scope.cols.len()]);
            rows.push(row);
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in r.rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row = vec![Value::Null; l.scope.cols.len()];
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(Rel { scope: combined, rows })
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    ctx: &EvalCtx<'_>,
    l: Rel,
    r: Rel,
    combined: Scope,
    kind: JoinKind,
    lkeys: &[BoundExpr],
    rkeys: &[BoundExpr],
    outer: Option<&Env<'_>>,
) -> Result<Rel> {
    // Build on the right side.
    let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    let mut right_key_null = vec![false; r.rows.len()];
    for (ri, rrow) in r.rows.iter().enumerate() {
        let env = Env { scope: &r.scope, row: rrow, parent: outer };
        let mut key = Vec::with_capacity(rkeys.len());
        let mut has_null = false;
        for k in rkeys {
            let v = k.eval(ctx, &env)?;
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v.group_key());
        }
        if has_null {
            right_key_null[ri] = true;
            continue; // NULL keys never match.
        }
        table.entry(key).or_default().push(ri);
    }
    let mut rows = Vec::new();
    let mut right_matched = vec![false; r.rows.len()];
    for lrow in &l.rows {
        let env = Env { scope: &l.scope, row: lrow, parent: outer };
        let mut key = Vec::with_capacity(lkeys.len());
        let mut has_null = false;
        for k in lkeys {
            let v = k.eval(ctx, &env)?;
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v.group_key());
        }
        let matches = if has_null { None } else { table.get(&key) };
        match matches {
            Some(ris) if !ris.is_empty() => {
                for &ri in ris {
                    right_matched[ri] = true;
                    let mut row = lrow.clone();
                    row.extend(r.rows[ri].iter().cloned());
                    rows.push(row);
                }
            }
            _ => {
                if matches!(kind, JoinKind::Left | JoinKind::Full) {
                    let mut row = lrow.clone();
                    row.extend(vec![Value::Null; r.scope.cols.len()]);
                    rows.push(row);
                }
            }
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in r.rows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row = vec![Value::Null; l.scope.cols.len()];
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(Rel { scope: combined, rows })
}

/// Evaluate the whole FROM clause (comma list = cross joins; LATERAL
/// entries see previously joined columns).
fn eval_from(
    db: &Database,
    ctes: &Ctes,
    from: &[TableRef],
    outer: Option<&Env<'_>>,
) -> Result<Rel> {
    if from.is_empty() {
        // A single empty row: SELECT with no FROM produces one row.
        return Ok(Rel { scope: Scope::default(), rows: vec![vec![]] });
    }
    let mut acc: Option<Rel> = None;
    for tref in from {
        let next = match (&acc, is_lateral(tref)) {
            (Some(a), true) => {
                // Comma-list LATERAL: cross apply against accumulated rows.
                let TableRef::Subquery { query, alias, .. } = tref else { unreachable!() };
                let qualifier = alias.as_ref().map(|x| x.name.as_str());
                let mut right_scope: Option<Scope> = None;
                let mut rows = Vec::new();
                for lrow in &a.rows {
                    let env = Env { scope: &a.scope, row: lrow, parent: outer };
                    let t = run_query(db, ctes, query, Some(&env))?;
                    if right_scope.is_none() {
                        let mut s = Scope::from_schema(qualifier, &t.schema);
                        apply_alias_columns(&mut s, alias.as_ref())?;
                        right_scope = Some(s);
                    }
                    for rrow in t.rows {
                        let mut row = lrow.clone();
                        row.extend(rrow);
                        rows.push(row);
                    }
                }
                let rs = right_scope.unwrap_or_default();
                Rel { scope: a.scope.join(&rs), rows }
            }
            _ => {
                let rel = eval_join(db, ctes, tref, outer)?;
                match acc {
                    None => rel,
                    Some(a) => {
                        // Cross product with the accumulator.
                        let scope = a.scope.join(&rel.scope);
                        let mut rows =
                            Vec::with_capacity(a.rows.len().saturating_mul(rel.rows.len()));
                        for lrow in &a.rows {
                            for rrow in &rel.rows {
                                let mut row = lrow.clone();
                                row.extend(rrow.iter().cloned());
                                rows.push(row);
                            }
                        }
                        Rel { scope, rows }
                    }
                }
            }
        };
        acc = Some(next);
    }
    acc.ok_or_else(|| Error::eval("FROM list is empty"))
}

// ---------------------------------------------------------------------------
// SELECT core
// ---------------------------------------------------------------------------

/// Aggregate call found in an expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AggCall {
    pub(crate) name: String,
    pub(crate) distinct: bool,
    /// `None` = count(*).
    pub(crate) arg: Option<Expr>,
    /// Second argument (string_agg separator).
    pub(crate) arg2: Option<Expr>,
}

pub(crate) fn find_aggregates(e: &Expr, out: &mut Vec<AggCall>) {
    e.walk(&mut |node| {
        if let Expr::Func { name, args, distinct } = node {
            if funcs::is_aggregate(name) {
                let arg = args.first().and_then(|a| match &a.value {
                    Expr::Wildcard { .. } => None,
                    v => Some(v.clone()),
                });
                let call = AggCall {
                    name: name.clone(),
                    distinct: *distinct,
                    arg,
                    arg2: args.get(1).map(|a| a.value.clone()),
                };
                if !out.contains(&call) {
                    out.push(call);
                }
            }
        }
    });
}

/// Rewrite an expression for the post-aggregation scope: aggregate calls
/// become references to `#a{i}`, expressions equal to a GROUP BY item
/// become `#g{i}`.
pub(crate) fn rewrite_agg(e: &Expr, group_by: &[Expr], aggs: &[AggCall]) -> Expr {
    // Group-expression match first (so `a` in GROUP BY a stays valid).
    for (i, g) in group_by.iter().enumerate() {
        if e == g {
            return Expr::Column { qualifier: None, name: format!("#g{i}") };
        }
    }
    if let Expr::Func { name, args, distinct } = e {
        if funcs::is_aggregate(name) {
            let arg = args.first().and_then(|a| match &a.value {
                Expr::Wildcard { .. } => None,
                v => Some(v.clone()),
            });
            let call = AggCall {
                name: name.clone(),
                distinct: *distinct,
                arg,
                arg2: args.get(1).map(|a| a.value.clone()),
            };
            if let Some(i) = aggs.iter().position(|a| *a == call) {
                return Expr::Column { qualifier: None, name: format!("#a{i}") };
            }
        }
    }
    // Recurse structurally.
    match e {
        Expr::BinOp { op, lhs, rhs } => Expr::BinOp {
            op: *op,
            lhs: Box::new(rewrite_agg(lhs, group_by, aggs)),
            rhs: Box::new(rewrite_agg(rhs, group_by, aggs)),
        },
        Expr::UnOp { op, expr } => {
            Expr::UnOp { op: *op, expr: Box::new(rewrite_agg(expr, group_by, aggs)) }
        }
        Expr::Chain { first, rest } => Expr::Chain {
            first: Box::new(rewrite_agg(first, group_by, aggs)),
            rest: rest.iter().map(|(op, x)| (*op, rewrite_agg(x, group_by, aggs))).collect(),
        },
        Expr::Func { name, args, distinct } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| FuncArg {
                    name: a.name.clone(),
                    value: rewrite_agg(&a.value, group_by, aggs),
                })
                .collect(),
            distinct: *distinct,
        },
        Expr::Cast { expr, ty } => {
            Expr::Cast { expr: Box::new(rewrite_agg(expr, group_by, aggs)), ty: ty.clone() }
        }
        Expr::Case { operand, branches, else_ } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rewrite_agg(o, group_by, aggs))),
            branches: branches
                .iter()
                .map(|(c, r)| (rewrite_agg(c, group_by, aggs), rewrite_agg(r, group_by, aggs)))
                .collect(),
            else_: else_.as_ref().map(|x| Box::new(rewrite_agg(x, group_by, aggs))),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(rewrite_agg(expr, group_by, aggs)), negated: *negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_agg(expr, group_by, aggs)),
            list: list.iter().map(|x| rewrite_agg(x, group_by, aggs)).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_agg(expr, group_by, aggs)),
            low: Box::new(rewrite_agg(low, group_by, aggs)),
            high: Box::new(rewrite_agg(high, group_by, aggs)),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, case_insensitive } => Expr::Like {
            expr: Box::new(rewrite_agg(expr, group_by, aggs)),
            pattern: Box::new(rewrite_agg(pattern, group_by, aggs)),
            negated: *negated,
            case_insensitive: *case_insensitive,
        },
        other => other.clone(),
    }
}

/// Aggregate accumulator.
pub(crate) struct AggState {
    kind: String,
    distinct: bool,
    seen: std::collections::HashSet<GroupKey>,
    count: i64,
    sum: Option<Value>,
    min: Option<Value>,
    max: Option<Value>,
    // Welford for variance.
    n: f64,
    mean: f64,
    m2: f64,
    bools: Option<bool>,
    strings: Vec<String>,
}

impl AggState {
    pub(crate) fn new(kind: &str, distinct: bool) -> AggState {
        AggState {
            kind: kind.to_string(),
            distinct,
            seen: Default::default(),
            count: 0,
            sum: None,
            min: None,
            max: None,
            n: 0.0,
            mean: 0.0,
            m2: 0.0,
            bools: None,
            strings: Vec::new(),
        }
    }

    pub(crate) fn update(&mut self, v: Option<Value>, sep: Option<&Value>) -> Result<()> {
        match (&self.kind[..], v) {
            ("count", None) => self.count += 1, // count(*)
            (_, None) => {}
            (_, Some(v)) if v.is_null() => {}
            (kind, Some(v)) => {
                if self.distinct && !self.seen.insert(v.group_key()) {
                    return Ok(());
                }
                match kind {
                    "count" => self.count += 1,
                    "sum" | "avg" => {
                        self.count += 1;
                        self.sum = Some(match self.sum.take() {
                            None => v,
                            Some(s) => Value::binop(BinOp::Add, &s, &v)?,
                        });
                    }
                    "min" => {
                        self.min = Some(match self.min.take() {
                            None => v,
                            Some(m) => {
                                if v.sql_cmp(&m)? == Some(std::cmp::Ordering::Less) {
                                    v
                                } else {
                                    m
                                }
                            }
                        });
                    }
                    "max" => {
                        self.max = Some(match self.max.take() {
                            None => v,
                            Some(m) => {
                                if v.sql_cmp(&m)? == Some(std::cmp::Ordering::Greater) {
                                    v
                                } else {
                                    m
                                }
                            }
                        });
                    }
                    "stddev" | "stddev_samp" | "stddev_pop" | "variance" | "var_samp"
                    | "var_pop" => {
                        let x = v.as_f64()?;
                        self.n += 1.0;
                        let d = x - self.mean;
                        self.mean += d / self.n;
                        self.m2 += d * (x - self.mean);
                    }
                    "bool_and" => {
                        let b = v.as_bool()?.unwrap_or(false);
                        self.bools = Some(self.bools.map_or(b, |p| p && b));
                    }
                    "bool_or" => {
                        let b = v.as_bool()?.unwrap_or(false);
                        self.bools = Some(self.bools.map_or(b, |p| p || b));
                    }
                    "string_agg" => {
                        let _ = sep;
                        self.strings.push(v.to_string());
                    }
                    other => return Err(Error::eval(format!("unknown aggregate {other}()"))),
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self, sep: Option<&Value>) -> Result<Value> {
        Ok(match &self.kind[..] {
            "count" => Value::Int(self.count),
            "sum" => self.sum.unwrap_or(Value::Null),
            "avg" => match self.sum {
                None => Value::Null,
                Some(s) => {
                    let total = match s {
                        Value::Int(i) => Value::Float(i as f64),
                        other => other,
                    };
                    Value::binop(BinOp::Div, &total, &Value::Int(self.count))?
                }
            },
            "min" => self.min.unwrap_or(Value::Null),
            "max" => self.max.unwrap_or(Value::Null),
            "variance" | "var_samp" => {
                if self.n < 2.0 {
                    Value::Null
                } else {
                    Value::Float(self.m2 / (self.n - 1.0))
                }
            }
            "var_pop" => {
                if self.n < 1.0 {
                    Value::Null
                } else {
                    Value::Float(self.m2 / self.n)
                }
            }
            "stddev" | "stddev_samp" => {
                if self.n < 2.0 {
                    Value::Null
                } else {
                    Value::Float((self.m2 / (self.n - 1.0)).sqrt())
                }
            }
            "stddev_pop" => {
                if self.n < 1.0 {
                    Value::Null
                } else {
                    Value::Float((self.m2 / self.n).sqrt())
                }
            }
            "bool_and" | "bool_or" => self.bools.map(Value::Bool).unwrap_or(Value::Null),
            "string_agg" => {
                if self.strings.is_empty() {
                    Value::Null
                } else {
                    let s = match sep {
                        Some(Value::Text(t)) => t.to_string(),
                        _ => String::new(),
                    };
                    Value::text(self.strings.join(&s))
                }
            }
            other => return Err(Error::eval(format!("unknown aggregate {other}()"))),
        })
    }
}

/// Expand `SELECT *` / `t.*` items into positional column references
/// (`#idx{i}` markers) and attach default names to plain expressions.
/// Shared between the row interpreter and the planner so both see the
/// same projection list.
pub(crate) fn expand_projection(
    sel: &Select,
    scope: &Scope,
) -> Result<Vec<(Option<String>, Expr)>> {
    let mut proj: Vec<(Option<String>, Expr)> = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard { qualifier } => {
                for (i, c) in scope.cols.iter().enumerate() {
                    let keep = match qualifier {
                        None => true,
                        Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                    };
                    if keep && !c.name.starts_with('#') {
                        // Reference by position via a marker resolved below.
                        proj.push((
                            Some(c.name.clone()),
                            Expr::Column {
                                qualifier: Some(format!("#idx{i}")),
                                name: c.name.clone(),
                            },
                        ));
                    }
                }
                if proj.is_empty() && scope.cols.is_empty() {
                    return Err(Error::bind("SELECT * with no FROM clause"));
                }
            }
            SelectItem::Expr { expr, alias } => {
                // Inner wildcard check (count(*) is rewritten later).
                let name = alias.clone().or_else(|| default_name(expr));
                proj.push((name, expr.clone()));
            }
        }
    }
    Ok(proj)
}

/// Resolve GROUP BY items against the projection list: positional
/// references (`GROUP BY 2`) and projection aliases become the projected
/// expression; input columns win over aliases.
pub(crate) fn resolve_group_by(
    items: &[Expr],
    proj: &[(Option<String>, Expr)],
    scope: &Scope,
) -> Result<Vec<Expr>> {
    let mut group_by: Vec<Expr> = Vec::new();
    for g in items {
        let resolved = match g {
            Expr::Literal(Literal::Int(i)) => {
                let idx = *i - 1;
                if idx < 0 || idx as usize >= proj.len() {
                    return Err(Error::bind(format!("GROUP BY position {i} out of range")));
                }
                proj[idx as usize].1.clone()
            }
            Expr::Column { qualifier: None, name } => {
                // Prefer an input column; otherwise a projection alias.
                if scope.resolve(None, name)?.is_some() {
                    g.clone()
                } else if let Some((_, e)) =
                    proj.iter().find(|(n, _)| n.as_deref() == Some(name.as_str()))
                {
                    e.clone()
                } else {
                    g.clone()
                }
            }
            other => other.clone(),
        };
        group_by.push(resolved);
    }
    Ok(group_by)
}

#[allow(clippy::too_many_arguments)]
fn run_select(
    db: &Database,
    ctes: &Ctes,
    sel: &Select,
    outer: Option<&Env<'_>>,
    order_by: &[OrderItem],
    limit: &Option<Expr>,
    offset: &Option<Expr>,
) -> Result<Table> {
    let ctx = EvalCtx { db, ctes };
    let input = eval_from(db, ctes, &sel.from, outer)?;

    // WHERE.
    let mut rows = input.rows;
    if let Some(w) = &sel.where_ {
        let binder = Binder::with_outer(db, &input.scope, outer);
        let bound = binder.bind(w)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let env = Env { scope: &input.scope, row: &row, parent: outer };
            if bound.eval(&ctx, &env)?.as_bool()? == Some(true) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Expand wildcards into column references (pre-binding).
    let proj = expand_projection(sel, &input.scope)?;

    // Resolve GROUP BY items given projections (position / alias refs).
    let group_by = resolve_group_by(&sel.group_by, &proj, &input.scope)?;

    // Detect aggregation.
    let mut aggs: Vec<AggCall> = Vec::new();
    for (_, e) in &proj {
        find_aggregates(e, &mut aggs);
    }
    if let Some(h) = &sel.having {
        find_aggregates(h, &mut aggs);
    }
    for o in order_by {
        find_aggregates(&o.expr, &mut aggs);
    }
    let aggregated = !group_by.is_empty()
        || sel.grouping_sets.is_some()
        || !aggs.is_empty()
        || sel.having.is_some();

    let (out_scope, out_rows, proj_bound, having_bound, order_bound);
    if aggregated {
        // Bind group and aggregate argument expressions against the input.
        let in_binder = Binder::with_outer(db, &input.scope, outer);
        let group_bound: Vec<BoundExpr> =
            group_by.iter().map(|g| in_binder.bind(g)).collect::<Result<_>>()?;
        struct BoundAgg {
            call: AggCall,
            arg: Option<BoundExpr>,
            arg2: Option<BoundExpr>,
        }
        let aggs_bound: Vec<BoundAgg> = aggs
            .iter()
            .map(|a| {
                Ok(BoundAgg {
                    call: a.clone(),
                    arg: a.arg.as_ref().map(|e| in_binder.bind(e)).transpose()?,
                    arg2: a.arg2.as_ref().map(|e| in_binder.bind(e)).transpose()?,
                })
            })
            .collect::<Result<_>>()?;

        // Group rows. Plain GROUP BY is the single grouping set using
        // every key; ROLLUP/CUBE/GROUPING SETS run one grouping pass per
        // set with the keys outside the set masked to NULL, and the
        // per-set outputs concatenated.
        let sets: Vec<Vec<usize>> = match &sel.grouping_sets {
            Some(s) => s.clone(),
            None => vec![(0..group_by.len()).collect()],
        };
        let make_states = || -> Vec<AggState> {
            aggs.iter().map(|a| AggState::new(&a.name, a.distinct)).collect()
        };
        let mut groups: Vec<(Vec<Value>, Vec<AggState>, Option<Value>)> = Vec::new();
        for set in &sets {
            let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
            let empty_gidx = if set.is_empty() {
                // The empty set is a global aggregate: exactly one output
                // row even over empty input.
                groups.push((vec![Value::Null; group_by.len()], make_states(), None));
                Some(groups.len() - 1)
            } else {
                None
            };
            for row in &rows {
                let env = Env { scope: &input.scope, row, parent: outer };
                let gvals: Vec<Value> =
                    group_bound.iter().map(|b| b.eval(&ctx, &env)).collect::<Result<_>>()?;
                let masked: Vec<Value> = (0..group_by.len())
                    .map(|i| if set.contains(&i) { gvals[i].clone() } else { Value::Null })
                    .collect();
                let gidx = match empty_gidx {
                    Some(g) => g,
                    None => {
                        let key: Vec<GroupKey> = masked.iter().map(|v| v.group_key()).collect();
                        *index.entry(key).or_insert_with(|| {
                            groups.push((masked.clone(), make_states(), None));
                            groups.len() - 1
                        })
                    }
                };
                let (_, states, sep_slot) = &mut groups[gidx];
                for (si, ba) in aggs_bound.iter().enumerate() {
                    let v = match &ba.arg {
                        None => None,
                        Some(b) => Some(b.eval(&ctx, &env)?),
                    };
                    let sep = match &ba.arg2 {
                        None => None,
                        Some(b) => {
                            let s = b.eval(&ctx, &env)?;
                            *sep_slot = Some(s.clone());
                            Some(s)
                        }
                    };
                    states[si].update(v, sep.as_ref())?;
                    let _ = &ba.call;
                }
            }
        }

        // Post-aggregation scope: #g0.. then #a0..
        let mut cols = Vec::new();
        for i in 0..group_by.len() {
            cols.push(ScopeCol { qualifier: None, name: format!("#g{i}"), ty: DataType::Unknown });
        }
        for i in 0..aggs.len() {
            cols.push(ScopeCol { qualifier: None, name: format!("#a{i}"), ty: DataType::Unknown });
        }
        let agg_scope = Scope::new(cols);

        let mut agg_rows: Vec<Row> = Vec::with_capacity(groups.len());
        for (gvals, states, sep) in groups {
            let mut row = gvals;
            for st in states {
                row.push(st.finish(sep.as_ref())?);
            }
            agg_rows.push(row);
        }

        // Rewrite & bind projection / HAVING / ORDER BY against agg scope.
        let rewritten_proj: Vec<(Option<String>, Expr)> = proj
            .iter()
            .map(|(n, e)| {
                (n.clone(), rewrite_agg(&resolve_idx_markers(e, &input.scope), &group_by, &aggs))
            })
            .collect();
        let agg_binder = Binder::with_outer(db, &agg_scope, outer);
        let pb: Vec<BoundExpr> = rewritten_proj
            .iter()
            .map(|(_, e)| {
                agg_binder.bind(e).map_err(|err| match err {
                    Error::Bind(m) => Error::bind(format!(
                        "{m} (column must appear in GROUP BY or be used in an aggregate)"
                    )),
                    other => other,
                })
            })
            .collect::<Result<_>>()?;
        let hb = sel
            .having
            .as_ref()
            .map(|h| agg_binder.bind(&rewrite_agg(h, &group_by, &aggs)))
            .transpose()?;
        let ob: Vec<BoundExpr> = order_by
            .iter()
            .map(|o| {
                if let Expr::Literal(Literal::Int(i)) = &o.expr {
                    let idx = *i - 1;
                    if idx < 0 || idx as usize >= pb.len() {
                        return Err(Error::bind(format!("ORDER BY position {i} out of range")));
                    }
                    // Positional: re-use projection's bound expr.
                    return Ok(pb[idx as usize].clone());
                }
                // Alias reference?
                if let Expr::Column { qualifier: None, name } = &o.expr {
                    if let Some(i) =
                        rewritten_proj.iter().position(|(n, _)| n.as_deref() == Some(name.as_str()))
                    {
                        return Ok(pb[i].clone());
                    }
                }
                agg_binder.bind(&rewrite_agg(&o.expr, &group_by, &aggs))
            })
            .collect::<Result<_>>()?;

        out_scope = agg_scope;
        out_rows = agg_rows;
        proj_bound = pb;
        having_bound = hb;
        order_bound = ob;
    } else {
        // Non-aggregated path: bind directly against the input scope.
        let binder = Binder::with_outer(db, &input.scope, outer);
        let pb: Vec<BoundExpr> = proj
            .iter()
            .map(|(_, e)| bind_with_idx_markers(&binder, e, &input.scope))
            .collect::<Result<_>>()?;
        let ob: Vec<BoundExpr> = order_by
            .iter()
            .map(|o| {
                if let Expr::Literal(Literal::Int(i)) = &o.expr {
                    let idx = *i - 1;
                    if idx < 0 || idx as usize >= pb.len() {
                        return Err(Error::bind(format!("ORDER BY position {i} out of range")));
                    }
                    return Ok(pb[idx as usize].clone());
                }
                if let Expr::Column { qualifier: None, name } = &o.expr {
                    if let Some(i) =
                        proj.iter().position(|(n, _)| n.as_deref() == Some(name.as_str()))
                    {
                        return Ok(pb[i].clone());
                    }
                }
                binder.bind(&o.expr)
            })
            .collect::<Result<_>>()?;
        out_scope = input.scope;
        out_rows = rows;
        proj_bound = pb;
        having_bound = None;
        order_bound = ob;
    }

    // Evaluate projection (+ order keys) per row; apply HAVING.
    let mut produced: Vec<(Vec<Value>, Row)> = Vec::with_capacity(out_rows.len());
    for row in &out_rows {
        let env = Env { scope: &out_scope, row, parent: outer };
        if let Some(h) = &having_bound {
            if h.eval(&ctx, &env)?.as_bool()? != Some(true) {
                continue;
            }
        }
        let out: Row = proj_bound.iter().map(|b| b.eval(&ctx, &env)).collect::<Result<_>>()?;
        let keys: Vec<Value> =
            order_bound.iter().map(|b| b.eval(&ctx, &env)).collect::<Result<_>>()?;
        produced.push((keys, out));
    }

    // DISTINCT.
    if sel.distinct {
        let mut seen = HashMap::new();
        produced.retain(|(_, row)| {
            let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
            seen.insert(key, ()).is_none()
        });
    }

    // ORDER BY.
    if !order_by.is_empty() {
        sort_keyed(&mut produced, order_by);
    }

    // Build the output schema.
    let names: Vec<String> = proj
        .iter()
        .enumerate()
        .map(|(i, (n, _))| n.clone().unwrap_or_else(|| format!("column{}", i + 1)))
        .collect();
    let mut schema =
        Schema::new(names.into_iter().map(|n| TColumn::new(n, DataType::Unknown)).collect());
    // Infer types from values.
    for (i, col) in schema.columns.iter_mut().enumerate() {
        for (_, row) in &produced {
            if !row[i].is_null() {
                col.ty = row[i].data_type();
                break;
            }
        }
        // All-NULL columns keep their statically known type (a direct
        // column reference or an explicit cast) so decision columns stay
        // typed — integrality of solver variables depends on this.
        if col.ty == DataType::Unknown {
            col.ty = static_type(&proj_bound[i], &out_scope);
        }
    }
    let mut table = Table::with_rows(schema, produced.into_iter().map(|(_, r)| r).collect());
    apply_limit_offset(db, ctes, &mut table, limit, offset, outer)?;
    Ok(table)
}

/// Wildcard-expanded items carry a `#idx{i}` qualifier so they bind by
/// position, immune to duplicate column names.
pub(crate) fn bind_with_idx_markers(
    binder: &Binder<'_>,
    e: &Expr,
    _scope: &Scope,
) -> Result<BoundExpr> {
    if let Expr::Column { qualifier: Some(q), .. } = e {
        if let Some(index) = q.strip_prefix("#idx").and_then(|i| i.parse::<usize>().ok()) {
            return Ok(BoundExpr::Column { depth: 0, index });
        }
    }
    binder.bind(e)
}

/// In the aggregate path markers must be turned back into plain column
/// expressions so they can match GROUP BY items.
pub(crate) fn resolve_idx_markers(e: &Expr, scope: &Scope) -> Expr {
    if let Expr::Column { qualifier: Some(q), .. } = e {
        if let Some(col) = q
            .strip_prefix("#idx")
            .and_then(|i| i.parse::<usize>().ok())
            .and_then(|index| scope.cols.get(index))
        {
            return Expr::Column { qualifier: col.qualifier.clone(), name: col.name.clone() };
        }
    }
    e.clone()
}

/// Statically known output type of a bound expression (used when value
/// inference sees only NULLs).
pub(crate) fn static_type(b: &BoundExpr, scope: &Scope) -> DataType {
    match b {
        BoundExpr::Column { depth: 0, index } => scope.cols[*index].ty.clone(),
        BoundExpr::Cast { ty, .. } => ty.clone(),
        BoundExpr::Const(v) if !v.is_null() => v.data_type(),
        _ => DataType::Unknown,
    }
}

fn default_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Column { name, .. } => Some(name.clone()),
        Expr::Func { name, .. } => Some(name.clone()),
        Expr::Cast { expr, .. } => default_name(expr),
        Expr::ScalarSubquery(q) => {
            // Use the subquery's single output column name when obvious.
            if let SetExpr::Select(s) = &q.body {
                if let Some(SelectItem::Expr { expr, alias }) = s.projection.first() {
                    return alias.clone().or_else(|| default_name(expr));
                }
            }
            None
        }
        _ => None,
    }
}
