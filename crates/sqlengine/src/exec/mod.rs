//! Statement execution: queries, DML, DDL and solve-statement dispatch.

pub mod eval;
pub mod funcs;
pub mod select;

use crate::ast::{ExplainMode, Query, SetExpr, Statement};
use crate::catalog::{Ctes, Database};
use crate::diag::{diagnostics_table, Diagnostic, Severity};
use crate::error::{Error, Result};
use crate::exec::eval::{Binder, Env, EvalCtx, Scope};
use crate::parser;
use crate::table::{coerce, Column, Schema, Table};
use crate::types::{DataType, Value};
use obs::{QueryTrace, Trace};

pub use eval::{BoundExpr, ScopeCol};
pub use select::run_query;

/// What a statement produced.
#[derive(Debug)]
pub enum Outcome {
    /// A query (or SOLVESELECT / MODELEVAL) result set.
    Table(Table),
    /// Rows affected by DML.
    Count(usize),
    /// DDL succeeded.
    Done,
}

/// Result of executing one statement: the outcome plus any diagnostics
/// the pre-solve static analyzer attached (the *warnings channel* —
/// `Warning`/`Note` severity only; `Error`-level findings either fail
/// the statement or surface through `EXPLAIN CHECK`).
#[derive(Debug)]
pub struct ExecResult {
    pub outcome: Outcome,
    pub warnings: Vec<Diagnostic>,
    /// Stage tree with timings and solver telemetry, recorded for solve
    /// statements (and `EXPLAIN ANALYZE`). `None` for plain SQL.
    pub trace: Option<QueryTrace>,
    /// FNV-1a fingerprint of the optimized logical plan when the
    /// columnar executor ran the statement; `None` when the row
    /// interpreter handled it. Recorded in `sdb_stat_statements`.
    pub plan_fingerprint: Option<u64>,
    /// Plan-cache outcome for the statement's top-level query:
    /// `Some(true)` = served from the cache, `Some(false)` = planned
    /// fresh and cached, `None` = not cache-eligible (row interpreter,
    /// CTEs, DML/DDL). Feeds the hit/miss counters in
    /// `sdb_stat_statements`.
    pub plan_cache_hit: Option<bool>,
}

impl ExecResult {
    pub fn table(t: Table) -> ExecResult {
        ExecResult {
            outcome: Outcome::Table(t),
            warnings: Vec::new(),
            trace: None,
            plan_fingerprint: None,
            plan_cache_hit: None,
        }
    }

    pub fn count(n: usize) -> ExecResult {
        ExecResult {
            outcome: Outcome::Count(n),
            warnings: Vec::new(),
            trace: None,
            plan_fingerprint: None,
            plan_cache_hit: None,
        }
    }

    pub fn done() -> ExecResult {
        ExecResult {
            outcome: Outcome::Done,
            warnings: Vec::new(),
            trace: None,
            plan_fingerprint: None,
            plan_cache_hit: None,
        }
    }

    /// Attach analyzer warnings to this result.
    pub fn with_warnings(mut self, warnings: Vec<Diagnostic>) -> ExecResult {
        self.warnings = warnings;
        self
    }

    /// Attach an execution trace to this result.
    pub fn with_trace(mut self, trace: QueryTrace) -> ExecResult {
        self.trace = Some(trace);
        self
    }

    /// Expect a result set (drops any attached warnings).
    pub fn into_table(self) -> Result<Table> {
        match self.outcome {
            Outcome::Table(t) => Ok(t),
            other => Err(Error::eval(format!("statement returned {other:?}, expected rows"))),
        }
    }

    pub fn row_count(&self) -> Option<usize> {
        match self.outcome {
            Outcome::Count(n) => Some(n),
            _ => None,
        }
    }
}

/// Parse and execute a single SQL statement.
pub fn execute_sql(db: &mut Database, sql: &str) -> Result<ExecResult> {
    let (stmt, parse_time) = obs::timed(|| parser::parse_statement(sql));
    execute_statement_timed(db, &stmt?, Some(parse_time.as_nanos() as u64))
}

/// Parse and execute a `;`-separated script, returning the last result.
pub fn execute_script(db: &mut Database, sql: &str) -> Result<ExecResult> {
    let stmts = parser::parse_statements(sql)?;
    let mut last = ExecResult::done();
    for s in &stmts {
        last = execute_statement(db, s)?;
    }
    Ok(last)
}

/// Execute a parsed statement.
pub fn execute_statement(db: &mut Database, stmt: &Statement) -> Result<ExecResult> {
    execute_statement_timed(db, stmt, None)
}

/// Execute a parsed statement, seeding the execution trace (when one is
/// recorded) with an already-measured parse time. Callers that parse
/// the SQL themselves use this so the `parse` stage isn't lost.
pub fn execute_statement_timed(
    db: &mut Database,
    stmt: &Statement,
    parse_nanos: Option<u64>,
) -> Result<ExecResult> {
    let ctes = Ctes::new();
    // Discard diagnostics parked by an earlier statement that errored
    // before its drain point — they do not belong to this statement;
    // likewise any stale plan-cache event.
    drop(select::take_nested_solve_warnings());
    let _ = select::take_plan_cache_event();
    let inner = execute_statement_inner(db, stmt, parse_nanos, &ctes);
    // Publish tables mutated through `table_mut` to the durability hook
    // even when the statement errored mid-flight: the in-memory state
    // already changed, and the log must mirror it.
    db.flush_dirty();
    let mut result = inner?;
    result.plan_cache_hit = select::take_plan_cache_event();
    // Solves executed in subquery position have no warnings channel of
    // their own; they park advisory findings thread-locally and the
    // statement layer attaches them here so they are not dropped.
    let mut nested = select::take_nested_solve_warnings();
    nested.retain(|d| d.severity <= Severity::Warning);
    result.warnings.extend(nested);
    Ok(result)
}

fn execute_statement_inner(
    db: &mut Database,
    stmt: &Statement,
    parse_nanos: Option<u64>,
    ctes: &Ctes,
) -> Result<ExecResult> {
    let ctes = ctes.clone();
    match stmt {
        Statement::Query(q) => {
            let (t, fp) = select::run_query_planned(db, &ctes, q, None, None)?;
            let mut result = ExecResult::table(t);
            result.plan_fingerprint = fp;
            Ok(result)
        }
        Statement::ExplainQuery { analyze: false, query } => {
            let lines = select::explain_query_plan(db, &ctes, query)?;
            let schema = Schema::new(vec![Column::new("plan", DataType::Text)]);
            let rows = lines.into_iter().map(|l| vec![Value::text(&l)]).collect();
            Ok(ExecResult::table(Table::with_rows(schema, rows)))
        }
        Statement::ExplainQuery { analyze: true, query } => {
            // Execute the query, recording the per-operator stage tree,
            // and return the rendered tree (mirrors EXPLAIN ANALYZE for
            // solve statements).
            let trace = Trace::new();
            trace.set_label("SELECT");
            if let Some(n) = parse_nanos {
                trace.record("parse", n);
            }
            let (t, fp) = select::run_query_planned(db, &ctes, query, None, Some(&trace))?;
            let rows_out = t.num_rows();
            let qt = trace.finish();
            let schema = Schema::new(vec![Column::new("plan", DataType::Text)]);
            let mut lines = qt.render();
            lines.push(format!("rows out: {rows_out}"));
            if let Some(f) = fp {
                lines.push(format!("plan fingerprint: {f:016x}"));
            }
            let rows = lines.into_iter().map(|l| vec![Value::text(&l)]).collect();
            let mut result = ExecResult::table(Table::with_rows(schema, rows)).with_trace(qt);
            result.plan_fingerprint = fp;
            Ok(result)
        }
        Statement::Solve(s) => {
            let handler = db.solve_handler()?;
            let trace = Trace::new();
            trace.set_label("SOLVESELECT");
            if let Some(n) = parse_nanos {
                trace.record("parse", n);
            }
            let mut warnings = Vec::new();
            let t = handler.solve_select(db, s, &ctes, &mut warnings, Some(&trace))?;
            // The warnings channel carries advisory findings only; a
            // handler that pushed an Error-level diagnostic and still
            // returned Ok gets it downgraded to the advisory channel.
            warnings.retain(|d| d.severity <= Severity::Warning);
            Ok(ExecResult::table(t).with_warnings(warnings).with_trace(trace.finish()))
        }
        Statement::Explain { mode, stmt } => {
            let handler = db.solve_handler()?;
            match mode {
                ExplainMode::Check => {
                    Ok(ExecResult::table(diagnostics_table(&handler.check_solve(db, stmt, &ctes)?)))
                }
                ExplainMode::Plan => Ok(ExecResult::table(handler.explain_solve(db, stmt, &ctes)?)),
                ExplainMode::Presolve => {
                    Ok(ExecResult::table(handler.presolve_solve(db, stmt, &ctes)?))
                }
                ExplainMode::Analyze => {
                    // Actually execute the solve, recording the stage
                    // tree, and return the rendered tree as the result.
                    let trace = Trace::new();
                    trace.set_label("SOLVESELECT");
                    if let Some(n) = parse_nanos {
                        trace.record("parse", n);
                    }
                    let mut warnings = Vec::new();
                    let solved = handler.solve_select(db, stmt, &ctes, &mut warnings, Some(&trace));
                    warnings.retain(|d| d.severity <= Severity::Warning);
                    let rows_out = solved?.num_rows();
                    let qt = trace.finish();
                    let schema = Schema::new(vec![Column::new("plan", DataType::Text)]);
                    let mut lines = qt.render();
                    lines.push(format!("rows out: {rows_out}"));
                    let rows = lines.into_iter().map(|l| vec![Value::text(&l)]).collect();
                    Ok(ExecResult::table(Table::with_rows(schema, rows))
                        .with_warnings(warnings)
                        .with_trace(qt))
                }
            }
        }
        Statement::ExplainScript { source } => {
            let text = crate::script::resolve_source(source)
                .map_err(|e| Error::eval(format!("EXPLAIN SCRIPT: cannot read '{source}': {e}")))?;
            let snapshot = crate::script::CatalogSnapshot::from_db(db);
            let analysis = crate::script::analyze_sql(&text, &snapshot)?;
            Ok(ExecResult::table(analysis.to_table()))
        }
        Statement::ModelEval { select, model } => {
            let handler = db.solve_handler()?;
            Ok(ExecResult::table(handler.model_eval(db, select, model, &ctes)?))
        }
        Statement::Insert { table, columns, source } => {
            let src = run_query(db, &ctes, source, None)?;
            let target_schema = db.table(table)?.schema.clone();
            // Map source columns to target positions.
            let positions: Vec<usize> = if columns.is_empty() {
                if src.num_columns() > target_schema.len() {
                    return Err(Error::eval(format!(
                        "INSERT has more expressions ({}) than target columns ({})",
                        src.num_columns(),
                        target_schema.len()
                    )));
                }
                (0..src.num_columns()).collect()
            } else {
                if columns.len() != src.num_columns() {
                    return Err(Error::eval("INSERT column list does not match source arity"));
                }
                columns
                    .iter()
                    .map(|c| {
                        target_schema
                            .index_of(c)
                            .ok_or_else(|| Error::bind(format!("no column '{c}' in '{table}'")))
                    })
                    .collect::<Result<_>>()?
            };
            let mut full_rows: Vec<Vec<Value>> = Vec::with_capacity(src.rows.len());
            for row in src.rows {
                let mut full: Vec<Value> = vec![Value::Null; target_schema.len()];
                for (i, v) in row.into_iter().enumerate() {
                    full[positions[i]] = v;
                }
                full_rows.push(full);
            }
            // The single commit point for INSERT: coerces all rows
            // up-front (all-or-nothing) and emits one durability record.
            let n = db.append_rows(table, full_rows)?;
            Ok(ExecResult::count(n))
        }
        Statement::Update { table, assignments, where_ } => {
            let snapshot: Table = db.table(table)?.as_ref().clone();
            let scope = Scope::from_schema(Some(table), &snapshot.schema);
            let binder = Binder::new(db, &scope);
            let bound_where = where_.as_ref().map(|w| binder.bind(w)).transpose()?;
            let bound_assign: Vec<(usize, BoundExpr)> = assignments
                .iter()
                .map(|(c, e)| {
                    let idx = snapshot
                        .schema
                        .index_of(c)
                        .ok_or_else(|| Error::bind(format!("no column '{c}' in '{table}'")))?;
                    Ok((idx, binder.bind(e)?))
                })
                .collect::<Result<_>>()?;
            let ctx = EvalCtx { db, ctes: &ctes };
            let mut new_rows = snapshot.rows.clone();
            let mut n = 0usize;
            for row in new_rows.iter_mut() {
                let hit = match &bound_where {
                    None => true,
                    Some(w) => {
                        let env = Env { scope: &scope, row, parent: None };
                        w.eval(&ctx, &env)?.as_bool()? == Some(true)
                    }
                };
                if hit {
                    // Evaluate all assignments against the *old* row.
                    let env_row = row.clone();
                    let env = Env { scope: &scope, row: &env_row, parent: None };
                    for (idx, e) in &bound_assign {
                        let v = e.eval(&ctx, &env)?;
                        row[*idx] = coerce(v, &snapshot.schema.columns[*idx].ty)?;
                    }
                    n += 1;
                }
            }
            db.put_table(table, Table::with_rows(snapshot.schema, new_rows));
            Ok(ExecResult::count(n))
        }
        Statement::Delete { table, where_ } => {
            let snapshot: Table = db.table(table)?.as_ref().clone();
            let scope = Scope::from_schema(Some(table), &snapshot.schema);
            let binder = Binder::new(db, &scope);
            let bound_where = where_.as_ref().map(|w| binder.bind(w)).transpose()?;
            let ctx = EvalCtx { db, ctes: &ctes };
            let mut kept = Vec::with_capacity(snapshot.rows.len());
            let mut n = 0usize;
            for row in snapshot.rows {
                let hit = match &bound_where {
                    None => true,
                    Some(w) => {
                        let env = Env { scope: &scope, row: &row, parent: None };
                        w.eval(&ctx, &env)?.as_bool()? == Some(true)
                    }
                };
                if hit {
                    n += 1;
                } else {
                    kept.push(row);
                }
            }
            db.put_table(table, Table::with_rows(snapshot.schema, kept));
            Ok(ExecResult::count(n))
        }
        Statement::CreateTable { name, if_not_exists, columns, as_query } => {
            let table = match as_query {
                Some(q) => run_query(db, &ctes, q, None)?,
                None => Table::new(Schema::new(
                    columns.iter().map(|c| Column::new(c.name.clone(), c.ty.clone())).collect(),
                )),
            };
            db.create_table(name, table, *if_not_exists)?;
            Ok(ExecResult::done())
        }
        Statement::CreateView { name, or_replace, query } => {
            db.create_view(name, query.clone(), *or_replace)?;
            Ok(ExecResult::done())
        }
        Statement::DropTable { name, if_exists } => {
            db.drop_table(name, *if_exists)?;
            Ok(ExecResult::done())
        }
        Statement::DropView { name, if_exists } => {
            db.drop_view(name, *if_exists)?;
            Ok(ExecResult::done())
        }
        Statement::Checkpoint => {
            let trace = Trace::new();
            trace.set_label("CHECKPOINT");
            if let Some(n) = parse_nanos {
                trace.record("parse", n);
            }
            let t = db.checkpoint(Some(&trace))?;
            Ok(ExecResult::table(t).with_trace(trace.finish()))
        }
        Statement::Set { name, value } => match name.as_str() {
            "solver_timeout_ms" => {
                let ms: u64 = value.parse().map_err(|_| {
                    Error::eval(format!(
                        "SET solver_timeout_ms: expected a non-negative integer, got '{value}'"
                    ))
                })?;
                // 0 disables the budget.
                db.set_solver_timeout_ms(if ms == 0 { None } else { Some(ms) });
                Ok(ExecResult::done())
            }
            other => Err(Error::unsupported(format!("unknown session variable '{other}'"))),
        },
        Statement::Cancel { session } => {
            let registry = db.session_registry().ok_or_else(|| {
                Error::eval("CANCEL requires a server session (no session registry attached)")
            })?;
            match registry.get(*session) {
                Some(counters) => {
                    counters.request_kill();
                    Ok(ExecResult::done())
                }
                None => Err(Error::eval(format!("no live session {session}"))),
            }
        }
    }
}

/// Convenience for read-only queries with extra CTE bindings (used by the
/// SolveDB+ layer to expose decision relations to rule queries).
pub fn query_with_ctes(db: &Database, ctes: &Ctes, q: &Query) -> Result<Table> {
    run_query(db, ctes, q, None)
}

/// True when the query is a single plain `SELECT` (no set ops).
pub fn is_plain_select(q: &Query) -> bool {
    matches!(q.body, SetExpr::Select(_))
}
