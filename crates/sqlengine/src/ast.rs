//! Abstract syntax tree for the SolveDB+ SQL dialect, plus a
//! pretty-printer whose output re-parses to the same tree (used by the
//! model UDT's textual form and by property tests).

use crate::types::{BinOp, DataType, UnOp};
use std::fmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Literal values as written in SQL source.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// `b'0101'`
    BitStr(String),
    /// `interval '1 hour'`
    Interval(String),
    /// `timestamp '2017-07-02 07:00'`
    Timestamp(String),
}

/// Argument to a function call; SolveDB+ supports named notation
/// (`arima_rmse(ar := 2, ...)`) used throughout the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncArg {
    pub name: Option<String>,
    pub value: Expr,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    /// `t.col` or `col`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// `*` or `t.*` — only valid in projections and `count(*)`.
    Wildcard {
        qualifier: Option<String>,
    },
    BinOp {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    UnOp {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// Comparison chain `a <= b <= c` (SolveDB+ constraint syntax §4.1).
    Chain {
        first: Box<Expr>,
        rest: Vec<(BinOp, Expr)>,
    },
    Func {
        name: String,
        args: Vec<FuncArg>,
        distinct: bool,
    },
    Cast {
        expr: Box<Expr>,
        ty: DataType,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
        case_insensitive: bool,
    },
    /// `SOLVEMODEL ...` used as a value expression (produces a model UDT).
    SolveModel(Box<SolveStmt>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Walk the expression tree, visiting every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::BinOp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::UnOp { expr, .. } => expr.walk(f),
            Expr::Chain { first, rest } => {
                first.walk(f);
                for (_, e) in rest {
                    e.walk(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.value.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Case { operand, branches, else_ } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (c, r) in branches {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Between { expr, low, high, .. } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Literal(_)
            | Expr::Column { .. }
            | Expr::Wildcard { .. }
            | Expr::Exists { .. }
            | Expr::ScalarSubquery(_)
            | Expr::SolveModel(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub with: Vec<Cte>,
    pub recursive: bool,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

impl Query {
    /// A bare SELECT wrapped into a full query.
    pub fn simple(select: Select) -> Query {
        Query {
            with: vec![],
            recursive: false,
            body: SetExpr::Select(Box::new(select)),
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub columns: Vec<String>,
    pub query: Query,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    /// A `SOLVESELECT` used as a query body — the output relation is a
    /// relation like any other, so solving composes with INSERT/CTAS/
    /// FROM subqueries.
    Solve(Box<SolveStmt>),
    /// A parenthesised query (needed so ORDER BY/LIMIT bind correctly).
    Query(Box<Query>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
    Values(Vec<Vec<Expr>>),
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Expr { expr: Expr, alias: Option<String> },
    Wildcard { qualifier: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// Grouping sets as index lists into `group_by`. `None` = plain
    /// `GROUP BY` (one implicit set using every key). `ROLLUP`/`CUBE`
    /// are expanded to their sets at parse time, so downstream layers
    /// only ever see `GROUPING SETS` form.
    pub grouping_sets: Option<Vec<Vec<usize>>>,
    pub having: Option<Expr>,
}

impl Select {
    pub fn empty() -> Select {
        Select {
            distinct: false,
            projection: vec![],
            from: vec![],
            where_: None,
            group_by: vec![],
            grouping_sets: None,
            having: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableAlias {
    pub name: String,
    pub columns: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    On(Expr),
    Using(Vec<String>),
    None,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named { name: String, alias: Option<TableAlias> },
    Subquery { query: Box<Query>, lateral: bool, alias: Option<TableAlias> },
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, constraint: JoinConstraint },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
    /// `NULLS FIRST`/`NULLS LAST`; `None` = dialect default (last for ASC).
    pub nulls_first: Option<bool>,
}

// ---------------------------------------------------------------------------
// SOLVESELECT / SOLVEMODEL (paper §4.1)
// ---------------------------------------------------------------------------

/// Decision-column specification attached to a relation alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecCols {
    /// No decision columns (plain CTE semantics).
    None,
    /// `alias(*)` — all columns are decision columns (§4.2).
    Star,
    /// `alias(c1, c2, ...)`.
    List(Vec<String>),
}

impl DecCols {
    pub fn is_none(&self) -> bool {
        matches!(self, DecCols::None)
    }
}

/// A relation D_i of the problem model: alias, decision columns and the
/// defining query.
#[derive(Debug, Clone, PartialEq)]
pub struct DecRel {
    pub alias: Option<String>,
    pub dec_cols: DecCols,
    pub query: Query,
}

/// `INLINE alias AS (select)` — embeds a shared model (Algorithm 2).
#[derive(Debug, Clone, PartialEq)]
pub struct InlineSpec {
    pub alias: Option<String>,
    pub query: Query,
}

/// A rule relation R_i (`SUBJECTTO` member).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedRule {
    pub alias: Option<String>,
    pub query: Query,
}

/// `USING solver[.method](name := expr, ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCall {
    pub solver: String,
    pub method: Option<String>,
    pub params: Vec<(Option<String>, Expr)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveKind {
    /// `SOLVESELECT` — solve and return the output relation.
    Select,
    /// `SOLVEMODEL` — package the problem spec as a model value.
    Model,
}

/// The full `SOLVESELECT`/`SOLVEMODEL` problem specification: the 4-tuple
/// (D, R, s, m) of §4.1 in AST form.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStmt {
    pub kind: SolveKind,
    /// D₁, the input relation.
    pub input: DecRel,
    pub inlines: Vec<InlineSpec>,
    /// D₂..D_N — the CDTEs (§4.3).
    pub ctes: Vec<DecRel>,
    pub minimize: Option<Query>,
    pub maximize: Option<Query>,
    pub subjectto: Vec<NamedRule>,
    pub using: Option<SolverCall>,
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
}

/// Variant of an `EXPLAIN` over a solve statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// `EXPLAIN`: describe the compiled problem without solving.
    Plan,
    /// `EXPLAIN CHECK`: run the pre-solve static analyzer only.
    Check,
    /// `EXPLAIN ANALYZE`: execute the solve and report the stage tree
    /// with wall-clock timings and solver telemetry.
    Analyze,
    /// `EXPLAIN PRESOLVE`: run interval propagation over the compiled
    /// model and render the reduction log (fixed variables, tightened
    /// bounds, removed rows) without solving.
    Presolve,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    Solve(SolveStmt),
    /// `EXPLAIN [CHECK | ANALYZE] SOLVESELECT ...` — describe the
    /// compiled problem ([`ExplainMode::Plan`]), run the pre-solve
    /// static analyzer and return its diagnostics as a relation
    /// ([`ExplainMode::Check`]) without solving, or execute the solve
    /// and return the timed stage tree ([`ExplainMode::Analyze`]).
    Explain {
        mode: ExplainMode,
        stmt: Box<SolveStmt>,
    },
    /// `EXPLAIN [ANALYZE] SELECT ...` — render the optimized logical
    /// plan with cost/row estimates; with `analyze` the query is also
    /// executed and per-operator timings and row/batch counts are
    /// reported from the `obs` stage tree.
    ExplainQuery {
        analyze: bool,
        query: Box<Query>,
    },
    /// `EXPLAIN SCRIPT '<path or sql>'` — run the whole-script static
    /// analyzer (`scriptcheck`, SD013–SD018) over a script given as a
    /// file path or inline SQL text, and return the dataflow summary
    /// plus diagnostics as a relation.
    ExplainScript {
        source: String,
    },
    /// `MODELEVAL (select) IN (select)` (§4.4).
    ModelEval {
        select: Query,
        model: Query,
    },
    Insert {
        table: String,
        columns: Vec<String>,
        source: Query,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        where_: Option<Expr>,
    },
    Delete {
        table: String,
        where_: Option<Expr>,
    },
    CreateTable {
        name: String,
        if_not_exists: bool,
        columns: Vec<ColumnDef>,
        as_query: Option<Query>,
    },
    CreateView {
        name: String,
        or_replace: bool,
        query: Query,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    /// `CHECKPOINT` — force a durability snapshot and rotate the
    /// write-ahead log (errors without an attached data directory).
    Checkpoint,
    /// `SET <name> = <value>` — set a session variable (currently
    /// `solver_timeout_ms`; the value is kept as raw text and parsed
    /// by the executor).
    Set {
        name: String,
        value: String,
    },
    /// `CANCEL <session_id>` — request that the target session's
    /// running solve stop at its next progress point (the solver
    /// watchdog's kill switch).
    Cancel {
        session: u64,
    },
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

fn quote_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Identifiers are emitted bare when they are plain lower-case names,
/// quoted otherwise.
fn ident(s: &str) -> String {
    let plain = !s.is_empty()
        && s.chars().next().map(|c| c.is_ascii_lowercase() || c == '_').unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if plain {
        s.to_string()
    } else {
        format!("\"{}\"", s.replace('"', "\"\""))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => f.write_str(&quote_str(s)),
            Literal::BitStr(s) => write!(f, "b'{s}'"),
            Literal::Interval(s) => write!(f, "interval {}", quote_str(s)),
            Literal::Timestamp(s) => write!(f, "timestamp {}", quote_str(s)),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_inner(f)
    }
}

impl Expr {
    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{}.{}", ident(q), ident(name)),
                None => f.write_str(&ident(name)),
            },
            Expr::Wildcard { qualifier } => match qualifier {
                Some(q) => write!(f, "{}.*", ident(q)),
                None => f.write_str("*"),
            },
            Expr::BinOp { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            Expr::UnOp { op, expr } => match op {
                UnOp::Not => write!(f, "(NOT {expr})"),
                _ => write!(f, "({}{expr})", op.symbol()),
            },
            Expr::Chain { first, rest } => {
                write!(f, "({first}")?;
                for (op, e) in rest {
                    write!(f, " {} {e}", op.symbol())?;
                }
                f.write_str(")")
            }
            Expr::Func { name, args, distinct } => {
                write!(f, "{}(", ident(name))?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    if let Some(n) = &a.name {
                        write!(f, "{} := ", ident(n))?;
                    }
                    write!(f, "{}", a.value)?;
                }
                f.write_str(")")
            }
            Expr::Cast { expr, ty } => write!(f, "({expr})::{}", ty.sql_name()),
            Expr::Case { operand, branches, else_ } => {
                f.write_str("CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::InSubquery { expr, query, negated } => {
                write!(f, "({expr} {}IN ({query}))", if *negated { "NOT " } else { "" })
            }
            Expr::Exists { query, negated } => {
                write!(f, "({}EXISTS ({query}))", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Between { expr, low, high, negated } => {
                write!(f, "({expr} {}BETWEEN {low} AND {high})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated, case_insensitive } => write!(
                f,
                "({expr} {}{} {pattern})",
                if *negated { "NOT " } else { "" },
                if *case_insensitive { "ILIKE" } else { "LIKE" }
            ),
            Expr::SolveModel(s) => write!(f, "({s})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.with.is_empty() {
            f.write_str("WITH ")?;
            if self.recursive {
                f.write_str("RECURSIVE ")?;
            }
            for (i, cte) in self.with.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                f.write_str(&ident(&cte.name))?;
                if !cte.columns.is_empty() {
                    write!(
                        f,
                        "({})",
                        cte.columns.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
                    )?;
                }
                write!(f, " AS ({})", cte.query)?;
            }
            f.write_str(" ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    f.write_str(" DESC")?;
                }
                match o.nulls_first {
                    Some(true) => f.write_str(" NULLS FIRST")?,
                    Some(false) => f.write_str(" NULLS LAST")?,
                    None => {}
                }
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = &self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Solve(s) => write!(f, "{s}"),
            SetExpr::Query(q) => write!(f, "({q})"),
            SetExpr::SetOp { op, all, left, right } => {
                let opname = match op {
                    SetOp::Union => "UNION",
                    SetOp::Intersect => "INTERSECT",
                    SetOp::Except => "EXCEPT",
                };
                write!(f, "{left} {opname}{} {right}", if *all { " ALL" } else { "" })
            }
            SetExpr::Values(rows) => {
                f.write_str("VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(
                        f,
                        "({})",
                        row.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match item {
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {}", ident(a))?;
                    }
                }
                SelectItem::Wildcard { qualifier } => match qualifier {
                    Some(q) => write!(f, "{}.*", ident(q))?,
                    None => f.write_str("*")?,
                },
            }
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_ {
            write!(f, " WHERE {w}")?;
        }
        if let Some(sets) = &self.grouping_sets {
            // Canonical form: ROLLUP/CUBE were expanded at parse time,
            // so always render as GROUPING SETS (round-trips exactly).
            let rendered: Vec<String> = sets
                .iter()
                .map(|set| {
                    format!(
                        "({})",
                        set.iter()
                            .map(|&i| self.group_by[i].to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .collect();
            write!(f, " GROUP BY GROUPING SETS ({})", rendered.join(", "))?;
        } else if !self.group_by.is_empty() {
            write!(
                f,
                " GROUP BY {}",
                self.group_by.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
            )?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let alias_fmt = |alias: &Option<TableAlias>| -> String {
            match alias {
                None => String::new(),
                Some(a) => {
                    let mut s = format!(" AS {}", ident(&a.name));
                    if !a.columns.is_empty() {
                        s.push_str(&format!(
                            "({})",
                            a.columns.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
                        ));
                    }
                    s
                }
            }
        };
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{}{}", ident(name), alias_fmt(alias))
            }
            TableRef::Subquery { query, lateral, alias } => {
                write!(f, "{}({query}){}", if *lateral { "LATERAL " } else { "" }, alias_fmt(alias))
            }
            TableRef::Join { left, right, kind, constraint } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT JOIN",
                    JoinKind::Right => "RIGHT JOIN",
                    JoinKind::Full => "FULL JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                match constraint {
                    JoinConstraint::On(e) => write!(f, " ON {e}"),
                    JoinConstraint::Using(cols) => write!(
                        f,
                        " USING ({})",
                        cols.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
                    ),
                    JoinConstraint::None => Ok(()),
                }
            }
        }
    }
}

impl fmt::Display for SolveStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.kind {
            SolveKind::Select => "SOLVESELECT ",
            SolveKind::Model => "SOLVEMODEL ",
        })?;
        fmt_dec_rel(f, &self.input)?;
        for inl in &self.inlines {
            f.write_str(" INLINE ")?;
            if let Some(a) = &inl.alias {
                write!(f, "{} AS ", ident(a))?;
            }
            write!(f, "({})", inl.query)?;
        }
        if !self.ctes.is_empty() {
            f.write_str(" WITH ")?;
            for (i, c) in self.ctes.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_dec_rel(f, c)?;
            }
        }
        if let Some(m) = &self.minimize {
            write!(f, " MINIMIZE ({m})")?;
        }
        if let Some(m) = &self.maximize {
            write!(f, " MAXIMIZE ({m})")?;
        }
        if !self.subjectto.is_empty() {
            f.write_str(" SUBJECTTO ")?;
            for (i, r) in self.subjectto.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                if let Some(a) = &r.alias {
                    write!(f, "{} AS ", ident(a))?;
                }
                write!(f, "({})", r.query)?;
            }
        }
        if let Some(u) = &self.using {
            write!(f, " USING {}", ident(&u.solver))?;
            if let Some(m) = &u.method {
                write!(f, ".{}", ident(m))?;
            }
            f.write_str("(")?;
            for (i, (name, expr)) in u.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                if let Some(n) = name {
                    write!(f, "{} := ", ident(n))?;
                }
                write!(f, "{expr}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

fn fmt_dec_rel(f: &mut fmt::Formatter<'_>, d: &DecRel) -> fmt::Result {
    if let Some(a) = &d.alias {
        f.write_str(&ident(a))?;
        match &d.dec_cols {
            DecCols::None => {}
            DecCols::Star => f.write_str("(*)")?,
            DecCols::List(cols) => {
                write!(f, "({})", cols.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", "))?
            }
        }
        f.write_str(" AS ")?;
    }
    write!(f, "({})", d.query)
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Solve(s) => write!(f, "{s}"),
            Statement::Explain { mode, stmt } => {
                let kw = match mode {
                    ExplainMode::Plan => "",
                    ExplainMode::Check => "CHECK ",
                    ExplainMode::Analyze => "ANALYZE ",
                    ExplainMode::Presolve => "PRESOLVE ",
                };
                write!(f, "EXPLAIN {kw}{stmt}")
            }
            Statement::ExplainQuery { analyze, query } => {
                write!(f, "EXPLAIN {}{query}", if *analyze { "ANALYZE " } else { "" })
            }
            Statement::ExplainScript { source } => {
                write!(f, "EXPLAIN SCRIPT {}", quote_str(source))
            }
            Statement::ModelEval { select, model } => {
                write!(f, "MODELEVAL ({select}) IN ({model})")
            }
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {}", ident(table))?;
                if !columns.is_empty() {
                    write!(
                        f,
                        " ({})",
                        columns.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
                    )?;
                }
                write!(f, " {source}")
            }
            Statement::Update { table, assignments, where_ } => {
                write!(f, "UPDATE {} SET ", ident(table))?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} = {e}", ident(c))?;
                }
                if let Some(w) = where_ {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete { table, where_ } => {
                write!(f, "DELETE FROM {}", ident(table))?;
                if let Some(w) = where_ {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable { name, if_not_exists, columns, as_query } => {
                write!(f, "CREATE TABLE ")?;
                if *if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                f.write_str(&ident(name))?;
                if let Some(q) = as_query {
                    write!(f, " AS {q}")
                } else {
                    write!(
                        f,
                        " ({})",
                        columns
                            .iter()
                            .map(|c| format!("{} {}", ident(&c.name), c.ty.sql_name()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            Statement::CreateView { name, or_replace, query } => {
                write!(
                    f,
                    "CREATE {}VIEW {} AS {query}",
                    if *or_replace { "OR REPLACE " } else { "" },
                    ident(name)
                )
            }
            Statement::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                ident(name)
            ),
            Statement::DropView { name, if_exists } => {
                write!(f, "DROP VIEW {}{}", if *if_exists { "IF EXISTS " } else { "" }, ident(name))
            }
            Statement::Checkpoint => write!(f, "CHECKPOINT"),
            Statement::Set { name, value } => write!(f, "SET {} = {value}", ident(name)),
            Statement::Cancel { session } => write!(f, "CANCEL {session}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display() {
        let e = Expr::BinOp {
            op: BinOp::Add,
            lhs: Box::new(Expr::col("a")),
            rhs: Box::new(Expr::int(1)),
        };
        assert_eq!(e.to_string(), "(a + 1)");
    }

    #[test]
    fn chain_display() {
        let e = Expr::Chain {
            first: Box::new(Expr::int(0)),
            rest: vec![(BinOp::Le, Expr::col("ar")), (BinOp::Le, Expr::int(5))],
        };
        assert_eq!(e.to_string(), "(0 <= ar <= 5)");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::BinOp {
            op: BinOp::Mul,
            lhs: Box::new(Expr::col("x")),
            rhs: Box::new(Expr::BinOp {
                op: BinOp::Add,
                lhs: Box::new(Expr::col("y")),
                rhs: Box::new(Expr::int(2)),
            }),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn ident_quoting() {
        assert_eq!(ident("foo"), "foo");
        assert_eq!(ident("Foo"), "\"Foo\"");
        assert_eq!(ident("group by"), "\"group by\"");
    }
}
