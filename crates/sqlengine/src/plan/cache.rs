//! Plan cache: optimized plans keyed by `(catalog epoch, exact query
//! rendering)`.
//!
//! Plans embed resolved [`crate::table::TableRef`] handles (the
//! `PlanNode::Scan` source), so a cached plan is only valid for the
//! exact catalog state it was built against. Rather than tracking
//! fine-grained dependencies, the key includes the catalog epoch — a
//! monotone counter [`Database::bump_epoch`] advances on *every*
//! catalog mutation (DDL, DML, wholesale replacement) — so any change
//! to tables or views strands stale entries, which age out when the
//! cache is cleared at its size bound. Table statistics are derived
//! from table data, so the epoch also covers stats changes.
//!
//! The key stores the full `Debug` rendering of the query, not a hash
//! of it: `HashMap` compares keys on lookup, so two distinct queries
//! can never alias one cache slot — a hash-only key would silently
//! execute the wrong plan on a 64-bit collision. The rendering is
//! literal-sensitive: `SELECT a FROM t WHERE b = 1` and `... b = 2`
//! cache separately. That is deliberate — constant folding bakes
//! literals into the optimized plan, so plans cannot be shared across
//! literal variants (unlike `sdb_stat_statements`, whose shape key
//! masks literals to group statements).

use super::PlannedQuery;
use crate::ast::{Expr, OrderItem, Select};
use crate::catalog::Database;
use std::sync::Arc;

/// Clear the cache once it holds this many plans. Epoch-keyed entries
/// go stale on every mutation, so a long DML-heavy session would
/// otherwise grow the map without bound.
const MAX_CACHED_PLANS: usize = 256;

/// Full plan-cache key: catalog epoch plus the exact rendered query.
/// Hash collisions between different queries land in the same bucket
/// but fail the equality check, so a lookup can never return another
/// query's plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    epoch: u64,
    query: String,
}

impl Database {
    /// Cache key for a plannable SELECT under the current catalog epoch.
    pub(crate) fn plan_cache_key(
        &self,
        sel: &Select,
        order_by: &[OrderItem],
        limit: &Option<Expr>,
        offset: &Option<Expr>,
    ) -> PlanCacheKey {
        PlanCacheKey {
            epoch: self.catalog_epoch(),
            query: format!("{sel:?}|{order_by:?}|{limit:?}|{offset:?}"),
        }
    }

    /// Look up a cached plan (a hit is an `Arc` clone, no re-planning).
    pub(crate) fn cached_plan(&self, key: &PlanCacheKey) -> Option<Arc<PlannedQuery>> {
        match self.plan_cache.lock() {
            Ok(cache) => cache.get(key).cloned(),
            Err(_) => None,
        }
    }

    /// Insert a freshly built plan under `key`.
    pub(crate) fn cache_plan(&self, key: PlanCacheKey, plan: Arc<PlannedQuery>) {
        if let Ok(mut cache) = self.plan_cache.lock() {
            if cache.len() >= MAX_CACHED_PLANS {
                cache.clear();
            }
            cache.insert(key, plan);
        }
    }

    /// Number of plans currently cached (observability).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().map(|c| c.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_sql;
    use crate::table::Table;
    use crate::types::Value;

    fn db_with_table() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Table::from_rows(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]),
            false,
        )
        .unwrap();
        db
    }

    fn key_for(db: &Database, sql: &str) -> PlanCacheKey {
        let stmt = crate::parser::parse_statement(sql).unwrap();
        let crate::ast::Statement::Query(q) = stmt else { panic!("expected query") };
        let crate::ast::SetExpr::Select(sel) = &q.body else { panic!("expected select") };
        db.plan_cache_key(sel, &q.order_by, &q.limit, &q.offset)
    }

    #[test]
    fn repeat_query_hits_cache() {
        let mut db = db_with_table();
        execute_sql(&mut db, "SELECT a FROM t WHERE a > 1").unwrap();
        let n = db.plan_cache_len();
        assert!(n >= 1, "first execution should populate the cache");
        execute_sql(&mut db, "SELECT a FROM t WHERE a > 1").unwrap();
        assert_eq!(db.plan_cache_len(), n, "repeat execution should not add entries");
    }

    #[test]
    fn mutation_invalidates_cached_plan() {
        let mut db = db_with_table();
        execute_sql(&mut db, "SELECT a FROM t").unwrap();
        let epoch = db.catalog_epoch();
        execute_sql(&mut db, "INSERT INTO t VALUES (3)").unwrap();
        assert!(db.catalog_epoch() > epoch, "DML must advance the epoch");
        // Same SQL now keys differently; results reflect the new row.
        let t = execute_sql(&mut db, "SELECT a FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn literal_variants_cache_separately() {
        let db = db_with_table();
        let k1 = key_for(&db, "SELECT a FROM t WHERE a = 1");
        let k2 = key_for(&db, "SELECT a FROM t WHERE a = 2");
        assert_ne!(k1, k2, "plan-cache key must be literal-sensitive");
    }

    /// The key carries the full query text: distinct queries compare
    /// unequal even if they were to hash alike, so a lookup can never
    /// serve another query's plan.
    #[test]
    fn key_stores_full_query_material() {
        let db = db_with_table();
        let k1 = key_for(&db, "SELECT a FROM t");
        let k1_again = key_for(&db, "SELECT a FROM t");
        assert_eq!(k1, k1_again, "same query, same epoch: identical key");
        let k2 = key_for(&db, "SELECT a FROM t ORDER BY a");
        assert_ne!(k1, k2);
        db.bump_epoch();
        let k3 = key_for(&db, "SELECT a FROM t");
        assert_ne!(k1, k3, "epoch changes must change the key");
    }
}
