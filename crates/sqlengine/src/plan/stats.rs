//! Per-table statistics for cost-based planning.
//!
//! Statistics are computed lazily the first time the planner sees a
//! table and cached on the [`Database`] keyed by the table's allocation
//! identity `(Arc pointer, row count)`. Tables are copy-on-write
//! (`Arc<Table>`), so any mutation produces a new allocation and the
//! planner naturally picks up fresh statistics. A recycled allocation
//! address with an identical row count can in principle alias a stale
//! entry — statistics are advisory (they steer plan choice, never
//! results), so the consequence is at worst a suboptimal plan.

use crate::catalog::Database;
use crate::table::TableRef;
use crate::types::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// How many rows to sample when estimating per-column distinct counts.
const SAMPLE_ROWS: usize = 1024;

/// Summary statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Exact row count at collection time.
    pub row_count: usize,
    /// Estimated distinct values per column (sampled; ≥ 1.0 for
    /// non-empty tables).
    pub distinct: Vec<f64>,
}

impl TableStats {
    /// Collect statistics by scanning at most [`SAMPLE_ROWS`] rows.
    pub fn collect(table: &crate::table::Table) -> TableStats {
        let row_count = table.rows.len();
        let sample = row_count.min(SAMPLE_ROWS);
        let ncols = table.schema.len();
        let mut distinct = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let mut seen: HashSet<crate::types::GroupKey> = HashSet::new();
            for row in table.rows.iter().take(sample) {
                let v: &Value = &row[c];
                seen.insert(v.group_key());
            }
            let d = if sample == 0 {
                0.0
            } else if sample < row_count {
                // Scale the sampled distinct count linearly, capped at the
                // row count — crude, but stable and monotone.
                (seen.len() as f64 * row_count as f64 / sample as f64).min(row_count as f64)
            } else {
                seen.len() as f64
            };
            distinct.push(d.max(if row_count == 0 { 0.0 } else { 1.0 }));
        }
        TableStats { row_count, distinct }
    }

    /// Distinct estimate for a column, defaulting to a third of the rows
    /// when the column is out of range (synthetic relations).
    pub fn distinct_of(&self, col: usize) -> f64 {
        self.distinct.get(col).copied().unwrap_or_else(|| (self.row_count as f64 / 3.0).max(1.0))
    }
}

impl Database {
    /// Statistics for a catalog table, computed on first use and cached.
    pub(crate) fn table_stats(&self, table: &TableRef) -> Arc<TableStats> {
        let key = (Arc::as_ptr(table) as usize, table.rows.len());
        if let Ok(cache) = self.stats_cache.lock() {
            if let Some(s) = cache.get(&key) {
                return s.clone();
            }
        }
        let stats = Arc::new(TableStats::collect(table));
        if let Ok(mut cache) = self.stats_cache.lock() {
            // Bound the cache: a DDL-heavy session would otherwise grow it
            // without limit.
            if cache.len() > 4096 {
                cache.clear();
            }
            cache.insert(key, stats.clone());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    #[test]
    fn collect_counts_rows_and_distincts() {
        let t = Table::from_rows(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(1), Value::text("y")],
                vec![Value::Int(2), Value::text("x")],
                vec![Value::Null, Value::text("x")],
            ],
        );
        let s = TableStats::collect(&t);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.distinct.len(), 2);
        // a: {1, 2, NULL} -> 3 distinct keys; b: {x, y} -> 2.
        assert_eq!(s.distinct[0], 3.0);
        assert_eq!(s.distinct[1], 2.0);
    }

    #[test]
    fn stats_cache_invalidates_on_copy_on_write() {
        let mut db = Database::new();
        db.create_table("t", Table::from_rows(&["a"], vec![vec![Value::Int(1)]]), false).unwrap();
        let s1 = db.table_stats(&db.table("t").unwrap().clone());
        assert_eq!(s1.row_count, 1);
        db.table_mut("t").unwrap().rows.push(vec![Value::Int(2)]);
        let s2 = db.table_stats(&db.table("t").unwrap().clone());
        assert_eq!(s2.row_count, 2);
    }
}
