//! Planned, vectorized query execution.
//!
//! Plain `SELECT` queries are compiled into a small logical plan IR
//! (`ir`), improved by a cost-based optimizer (predicate pushdown,
//! projection pruning, greedy join ordering from per-table statistics —
//! `build`/`stats`), and executed by a columnar batch executor
//! (`columnar`/`exec`) that processes typed column vectors with null
//! bitmaps in fixed-size batches.
//!
//! The planner is conservative: any shape it does not understand
//! (LATERAL, correlated outer context, set operations, SOLVE constructs
//! in expressions, …) returns `None` from [`plan_select`] and the row
//! interpreter in `exec::select` runs the query instead. Both paths
//! produce identical results by construction — the executor reuses the
//! interpreter's binder, expression evaluator (for non-vectorizable
//! expressions), aggregate accumulators and sort comparators.

pub mod build;
pub mod cache;
pub mod columnar;
pub mod exec;
pub mod ir;
pub mod stats;

pub use build::plan_select;
pub use exec::execute;
pub use ir::{PlanNode, PlannedQuery};
pub use stats::TableStats;

/// FNV-1a 64-bit hash — used for plan fingerprints.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
