//! Columnar batch executor for [`PlannedQuery`] trees.
//!
//! Operators consume and produce [`Batch`]es of typed column vectors.
//! Result parity with the row interpreter is maintained by construction:
//! every operator mirrors the interpreter's algorithm (same grouping
//! order, same hash-join build/probe order, same sort comparator) and
//! non-vectorizable expressions evaluate through the interpreter's
//! [`BoundExpr::eval`] on materialized rows. Each operator runs under an
//! `obs` span so `EXPLAIN ANALYZE` shows a per-operator timing tree.

use super::columnar::{batches_to_rows, Batch, ColumnVec, VecEvalCtx, VecExpr, BATCH_SIZE};
use super::ir::{PlanAggCall, PlanNode, PlannedQuery};
use crate::catalog::{Ctes, Database};
use crate::error::{Error, Result};
use crate::exec::eval::{BoundExpr, Env, EvalCtx, Scope};
use crate::exec::select::{sort_keyed, AggState};
use crate::table::{Column as TColumn, Row, Schema, Table};
use crate::types::{DataType, GroupKey, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Execute a planned query, producing the final result table.
pub fn execute(
    db: &Database,
    ctes: &Ctes,
    planned: &PlannedQuery,
    trace: Option<&obs::Trace>,
) -> Result<Table> {
    let ctx = EvalCtx { db, ctes };
    let span = trace.map(|t| t.span("columnar executor"));
    let batches = run_node(&ctx, &planned.root, trace)?;
    let mut rows = batches_to_rows(&batches);
    for r in &mut rows {
        r.truncate(planned.visible);
    }
    if let Some(s) = &span {
        s.rows(rows.len() as u64);
    }

    // Output schema: infer each column's type from the first non-NULL
    // value, falling back to the statically known type (same as the row
    // interpreter — solver variable typing depends on this).
    let mut schema = Schema::new(
        planned.names.iter().map(|n| TColumn::new(n.clone(), DataType::Unknown)).collect(),
    );
    for (i, col) in schema.columns.iter_mut().enumerate() {
        for row in &rows {
            if !row[i].is_null() {
                col.ty = row[i].data_type();
                break;
            }
        }
        if col.ty == DataType::Unknown {
            col.ty = planned.static_types[i].clone();
        }
    }
    Ok(Table::with_rows(schema, rows))
}

fn run_node(ctx: &EvalCtx<'_>, node: &PlanNode, trace: Option<&obs::Trace>) -> Result<Vec<Batch>> {
    let span = trace.map(|t| t.span(&node.describe()));
    let out = run_node_inner(ctx, node, trace)?;
    if let Some(s) = &span {
        s.rows(out.iter().map(|b| b.len as u64).sum());
    }
    Ok(out)
}

fn run_node_inner(
    ctx: &EvalCtx<'_>,
    node: &PlanNode,
    trace: Option<&obs::Trace>,
) -> Result<Vec<Batch>> {
    match node {
        PlanNode::Scan { source, cols, .. } => Ok(source
            .rows
            .chunks(BATCH_SIZE)
            .map(|c| Batch::from_rows(c, cols.as_deref()))
            .collect()),

        PlanNode::Filter { input, pred, .. } => {
            let scope = input.scope();
            let batches = run_node(ctx, input, trace)?;
            let vctx = VecEvalCtx { ctx, scope };
            let ve = VecExpr::compile(pred);
            let mut out = Vec::with_capacity(batches.len());
            for b in &batches {
                let col = ve.eval(b, &vctx)?;
                let mut sel = Vec::new();
                match col.as_ref() {
                    ColumnVec::Bool(vals, bm) => {
                        for (i, v) in vals.iter().enumerate().take(b.len) {
                            if bm.get(i) && *v {
                                sel.push(i);
                            }
                        }
                    }
                    other => {
                        // Mirror the interpreter: `as_bool` may error on
                        // non-boolean predicate values.
                        for i in 0..b.len {
                            if other.get(i).as_bool()? == Some(true) {
                                sel.push(i);
                            }
                        }
                    }
                }
                if sel.len() == b.len {
                    out.push(b.clone());
                } else if !sel.is_empty() {
                    out.push(b.gather(&sel));
                }
            }
            Ok(out)
        }

        PlanNode::Reorder { input, perm, .. } => {
            let batches = run_node(ctx, input, trace)?;
            Ok(batches
                .into_iter()
                .map(|b| Batch {
                    cols: perm.iter().map(|&p| b.cols[p].clone()).collect(),
                    len: b.len,
                })
                .collect())
        }

        PlanNode::Join { left, right, kind, lkeys, rkeys, cond, scope, .. } => {
            let lb = run_node(ctx, left, trace)?;
            let rb = run_node(ctx, right, trace)?;
            if !lkeys.is_empty() {
                hash_join(ctx, &lb, &rb, left.scope(), right.scope(), *kind, lkeys, rkeys)
            } else {
                loop_join(ctx, &lb, &rb, left.scope(), right.scope(), scope, *kind, cond.as_ref())
            }
        }

        PlanNode::Aggregate { input, group, sets, aggs, .. } => {
            let in_scope = input.scope();
            let batches = run_node(ctx, input, trace)?;
            aggregate(ctx, &batches, in_scope, group, sets, aggs)
        }

        PlanNode::Project { input, exprs, .. } => {
            let in_scope = input.scope();
            let batches = run_node(ctx, input, trace)?;
            let vctx = VecEvalCtx { ctx, scope: in_scope };
            let ves: Vec<VecExpr> = exprs.iter().map(VecExpr::compile).collect();
            batches
                .iter()
                .map(|b| {
                    let cols = ves.iter().map(|e| e.eval(b, &vctx)).collect::<Result<Vec<_>>>()?;
                    Ok(Batch { cols, len: b.len })
                })
                .collect()
        }

        PlanNode::Distinct { input, visible } => {
            let batches = run_node(ctx, input, trace)?;
            let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
            let mut out = Vec::new();
            for b in &batches {
                let mut sel = Vec::new();
                for i in 0..b.len {
                    let key: Vec<GroupKey> =
                        b.cols[..*visible].iter().map(|c| c.get(i).group_key()).collect();
                    if seen.insert(key, ()).is_none() {
                        sel.push(i);
                    }
                }
                if sel.len() == b.len {
                    out.push(b.clone());
                } else if !sel.is_empty() {
                    out.push(b.gather(&sel));
                }
            }
            Ok(out)
        }

        PlanNode::Sort { input, items, visible, .. } => {
            let batches = run_node(ctx, input, trace)?;
            let rows = batches_to_rows(&batches);
            let mut keyed: Vec<(Vec<Value>, Row)> =
                rows.into_iter().map(|r| (r[*visible..].to_vec(), r)).collect();
            sort_keyed(&mut keyed, items);
            let rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
            Ok(rows.chunks(BATCH_SIZE).map(|c| Batch::from_rows(c, None)).collect())
        }

        PlanNode::Limit { input, limit, offset } => {
            let batches = run_node(ctx, input, trace)?;
            let mut rows = batches_to_rows(&batches);
            if let Some(o) = offset {
                if *o >= rows.len() {
                    rows.clear();
                } else {
                    rows.drain(..*o);
                }
            }
            if let Some(l) = limit {
                rows.truncate(*l);
            }
            Ok(rows.chunks(BATCH_SIZE).map(|c| Batch::from_rows(c, None)).collect())
        }
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Concatenate a side's batches into one batch for join processing.
fn concat(batches: &[Batch], width: usize) -> Batch {
    if batches.len() == 1 {
        return batches[0].clone();
    }
    let len: usize = batches.iter().map(|b| b.len).sum();
    let mut cols = Vec::with_capacity(width);
    for c in 0..width {
        let mut vals = Vec::with_capacity(len);
        for b in batches {
            for i in 0..b.len {
                vals.push(b.cols[c].get(i));
            }
        }
        cols.push(Arc::new(ColumnVec::from_values(vals)));
    }
    Batch { cols, len }
}

/// Hash equi-join. Replicates the interpreter's `hash_join` exactly:
/// build on the right (right rows in order, NULL keys never match but
/// stay pad-eligible), probe left rows in order emitting matches in
/// bucket order, pad unmatched left inline for LEFT/FULL, then append
/// unmatched right rows in right order for RIGHT/FULL.
#[allow(clippy::too_many_arguments)]
fn hash_join(
    ctx: &EvalCtx<'_>,
    lb: &[Batch],
    rb: &[Batch],
    lscope: &Scope,
    rscope: &Scope,
    kind: crate::ast::JoinKind,
    lkeys: &[BoundExpr],
    rkeys: &[BoundExpr],
) -> Result<Vec<Batch>> {
    use crate::ast::JoinKind;
    let lbatch = concat(lb, lscope.cols.len());
    let rbatch = concat(rb, rscope.cols.len());

    let rv = VecEvalCtx { ctx, scope: rscope };
    let rkey_cols: Vec<Arc<ColumnVec>> =
        rkeys.iter().map(|k| VecExpr::compile(k).eval(&rbatch, &rv)).collect::<Result<_>>()?;
    let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    for ri in 0..rbatch.len {
        let mut key = Vec::with_capacity(rkey_cols.len());
        let mut has_null = false;
        for c in &rkey_cols {
            let v = c.get(ri);
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v.group_key());
        }
        if has_null {
            continue; // NULL keys never match.
        }
        table.entry(key).or_default().push(ri);
    }

    let lv = VecEvalCtx { ctx, scope: lscope };
    let lkey_cols: Vec<Arc<ColumnVec>> =
        lkeys.iter().map(|k| VecExpr::compile(k).eval(&lbatch, &lv)).collect::<Result<_>>()?;
    let mut li_out: Vec<Option<usize>> = Vec::new();
    let mut ri_out: Vec<Option<usize>> = Vec::new();
    let mut right_matched = vec![false; rbatch.len];
    for li in 0..lbatch.len {
        let mut key = Vec::with_capacity(lkey_cols.len());
        let mut has_null = false;
        for c in &lkey_cols {
            let v = c.get(li);
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v.group_key());
        }
        let matches = if has_null { None } else { table.get(&key) };
        match matches {
            Some(ris) if !ris.is_empty() => {
                for &ri in ris {
                    right_matched[ri] = true;
                    li_out.push(Some(li));
                    ri_out.push(Some(ri));
                }
            }
            _ => {
                if matches!(kind, JoinKind::Left | JoinKind::Full) {
                    li_out.push(Some(li));
                    ri_out.push(None);
                }
            }
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                li_out.push(None);
                ri_out.push(Some(ri));
            }
        }
    }

    let mut cols = Vec::with_capacity(lbatch.cols.len() + rbatch.cols.len());
    for c in &lbatch.cols {
        cols.push(Arc::new(c.gather_opt(&li_out)));
    }
    for c in &rbatch.cols {
        cols.push(Arc::new(c.gather_opt(&ri_out)));
    }
    Ok(vec![Batch { cols, len: li_out.len() }])
}

/// Nested-loop join for non-equi conditions and cross joins, mirroring
/// the interpreter's `join_rels` fallback (same row order, same padding
/// behavior).
#[allow(clippy::too_many_arguments)]
fn loop_join(
    ctx: &EvalCtx<'_>,
    lb: &[Batch],
    rb: &[Batch],
    lscope: &Scope,
    rscope: &Scope,
    combined: &Scope,
    kind: crate::ast::JoinKind,
    cond: Option<&BoundExpr>,
) -> Result<Vec<Batch>> {
    use crate::ast::JoinKind;
    let lrows = batches_to_rows(lb);
    let rrows = batches_to_rows(rb);
    let mut rows = Vec::new();
    let mut right_matched = vec![false; rrows.len()];
    for lrow in &lrows {
        let mut matched = false;
        for (ri, rrow) in rrows.iter().enumerate() {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            let ok = match cond {
                None => true,
                Some(b) => {
                    let env = Env { scope: combined, row: &row, parent: None };
                    b.eval(ctx, &env)?.as_bool()? == Some(true)
                }
            };
            if ok {
                matched = true;
                right_matched[ri] = true;
                rows.push(row);
            }
        }
        if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
            let mut row = lrow.clone();
            row.extend(vec![Value::Null; rscope.cols.len()]);
            rows.push(row);
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in rrows.iter().enumerate() {
            if !right_matched[ri] {
                let mut row = vec![Value::Null; lscope.cols.len()];
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(rows.chunks(BATCH_SIZE).map(|c| Batch::from_rows(c, None)).collect())
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// One accumulator per (group, aggregate call). Typed variants avoid
/// `Value` boxing and the interpreter's per-row string dispatch for the
/// hot aggregates over uniformly-typed columns; everything else runs the
/// interpreter's [`AggState`] for exact parity.
enum Acc {
    /// `count(*)` — increments unconditionally.
    CountStar(i64),
    /// Non-distinct `count(x)` — counts valid slots.
    CountCol(i64),
    SumInt {
        sum: i64,
        seen: bool,
    },
    SumFloat {
        sum: f64,
        seen: bool,
    },
    AvgInt {
        sum: i64,
        n: i64,
    },
    AvgFloat {
        sum: f64,
        n: i64,
    },
    MinInt(Option<i64>),
    MaxInt(Option<i64>),
    General(Box<AggState>),
}

#[derive(Clone, Copy, PartialEq)]
enum AccKind {
    CountStar,
    CountCol,
    SumInt,
    SumFloat,
    AvgInt,
    AvgFloat,
    MinInt,
    MaxInt,
    General,
}

impl Acc {
    fn new(kind: AccKind, call: &PlanAggCall) -> Acc {
        match kind {
            AccKind::CountStar => Acc::CountStar(0),
            AccKind::CountCol => Acc::CountCol(0),
            AccKind::SumInt => Acc::SumInt { sum: 0, seen: false },
            AccKind::SumFloat => Acc::SumFloat { sum: 0.0, seen: false },
            AccKind::AvgInt => Acc::AvgInt { sum: 0, n: 0 },
            AccKind::AvgFloat => Acc::AvgFloat { sum: 0.0, n: 0 },
            AccKind::MinInt => Acc::MinInt(None),
            AccKind::MaxInt => Acc::MaxInt(None),
            AccKind::General => Acc::General(Box::new(AggState::new(&call.name, call.distinct))),
        }
    }

    fn finish(self, sep: Option<&Value>) -> Result<Value> {
        Ok(match self {
            Acc::CountStar(c) | Acc::CountCol(c) => Value::Int(c),
            Acc::SumInt { sum, seen } => {
                if seen {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat { sum, seen } => {
                if seen {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            // avg over integers: the interpreter promotes the sum to
            // Float before dividing, so the result is always Float.
            Acc::AvgInt { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum as f64 / n as f64)
                }
            }
            Acc::AvgFloat { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::MinInt(v) | Acc::MaxInt(v) => v.map(Value::Int).unwrap_or(Value::Null),
            Acc::General(state) => state.finish(sep)?,
        })
    }
}

/// Per-batch evaluated input columns for the aggregate operator.
struct AggBatch {
    len: usize,
    group: Vec<Arc<ColumnVec>>,
    args: Vec<Option<Arc<ColumnVec>>>,
    args2: Vec<Option<Arc<ColumnVec>>>,
}

fn aggregate(
    ctx: &EvalCtx<'_>,
    batches: &[Batch],
    in_scope: &Scope,
    group: &[BoundExpr],
    sets: &[Vec<usize>],
    aggs: &[PlanAggCall],
) -> Result<Vec<Batch>> {
    let vctx = VecEvalCtx { ctx, scope: in_scope };
    let gexprs: Vec<VecExpr> = group.iter().map(VecExpr::compile).collect();
    let aexprs: Vec<Option<VecExpr>> =
        aggs.iter().map(|a| a.arg.as_ref().map(VecExpr::compile)).collect();
    let a2exprs: Vec<Option<VecExpr>> =
        aggs.iter().map(|a| a.arg2.as_ref().map(VecExpr::compile)).collect();

    // Evaluate group keys and aggregate arguments once per batch — they
    // are shared across all grouping sets.
    let mut abatches: Vec<AggBatch> = Vec::with_capacity(batches.len());
    for b in batches {
        abatches.push(AggBatch {
            len: b.len,
            group: gexprs.iter().map(|e| e.eval(b, &vctx)).collect::<Result<_>>()?,
            args: aexprs
                .iter()
                .map(|e| e.as_ref().map(|e| e.eval(b, &vctx)).transpose())
                .collect::<Result<_>>()?,
            args2: a2exprs
                .iter()
                .map(|e| e.as_ref().map(|e| e.eval(b, &vctx)).transpose())
                .collect::<Result<_>>()?,
        });
    }

    // Pick an accumulator per aggregate call: typed fast paths only when
    // the argument column is uniformly typed across every batch.
    let kinds: Vec<AccKind> =
        aggs.iter().enumerate().map(|(si, a)| acc_kind(a, si, &abatches)).collect();
    let make_accs =
        || -> Vec<Acc> { kinds.iter().zip(aggs).map(|(k, a)| Acc::new(*k, a)).collect() };

    // Group rows: same order as the interpreter — grouping sets outer,
    // input rows inner, groups created on first encounter; the empty set
    // contributes exactly one (global) group even over empty input.
    let mut groups: Vec<(Vec<Value>, Vec<Acc>, Option<Value>)> = Vec::new();
    for set in sets {
        let empty_gidx = if set.is_empty() {
            groups.push((vec![Value::Null; group.len()], make_accs(), None));
            Some(groups.len() - 1)
        } else {
            None
        };
        if let Some(g) = empty_gidx {
            for bc in &abatches {
                for i in 0..bc.len {
                    bump_group(&mut groups, g, bc, i)?;
                }
            }
            continue;
        }
        // Typed fast path: plain GROUP BY over one uniformly-Int column
        // keys by i64 directly, skipping per-row key allocation.
        let int_cols: Option<Vec<(&[i64], &crate::types::Bitmap)>> =
            if group.len() == 1 && set.len() == 1 {
                abatches
                    .iter()
                    .map(|b| match b.group[0].as_ref() {
                        ColumnVec::Int(v, bm) => Some((v.as_slice(), bm)),
                        _ => None,
                    })
                    .collect()
            } else {
                None
            };
        if let Some(cols) = int_cols {
            let mut iindex: HashMap<i64, usize> = HashMap::new();
            let mut null_gidx: Option<usize> = None;
            for (bi, bc) in abatches.iter().enumerate() {
                let (vals, valid) = cols[bi];
                for i in 0..bc.len {
                    let gidx = if valid.get(i) {
                        match iindex.get(&vals[i]) {
                            Some(&g) => g,
                            None => {
                                iindex.insert(vals[i], groups.len());
                                groups.push((vec![Value::Int(vals[i])], make_accs(), None));
                                groups.len() - 1
                            }
                        }
                    } else {
                        match null_gidx {
                            Some(g) => g,
                            None => {
                                groups.push((vec![Value::Null], make_accs(), None));
                                null_gidx = Some(groups.len() - 1);
                                groups.len() - 1
                            }
                        }
                    };
                    bump_group(&mut groups, gidx, bc, i)?;
                }
            }
            continue;
        }
        let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
        let mut keybuf: Vec<GroupKey> = Vec::with_capacity(group.len());
        for bc in &abatches {
            for i in 0..bc.len {
                keybuf.clear();
                for k in 0..group.len() {
                    if set.contains(&k) {
                        keybuf.push(bc.group[k].get(i).group_key());
                    } else {
                        keybuf.push(Value::Null.group_key());
                    }
                }
                let gidx = match index.get(keybuf.as_slice()) {
                    Some(&g) => g,
                    None => {
                        let masked: Vec<Value> =
                            (0..group.len())
                                .map(|k| {
                                    if set.contains(&k) {
                                        bc.group[k].get(i)
                                    } else {
                                        Value::Null
                                    }
                                })
                                .collect();
                        index.insert(std::mem::take(&mut keybuf), groups.len());
                        groups.push((masked, make_accs(), None));
                        groups.len() - 1
                    }
                };
                bump_group(&mut groups, gidx, bc, i)?;
            }
        }
    }

    fn bump_group(
        groups: &mut [(Vec<Value>, Vec<Acc>, Option<Value>)],
        gidx: usize,
        bc: &AggBatch,
        i: usize,
    ) -> Result<()> {
        let (_, accs, sep_slot) = &mut groups[gidx];
        for (si, acc) in accs.iter_mut().enumerate() {
            let sep = match &bc.args2[si] {
                None => None,
                Some(c) => {
                    let s = c.get(i);
                    *sep_slot = Some(s.clone());
                    Some(s)
                }
            };
            update_acc(acc, &bc.args[si], i, sep)?;
        }
        Ok(())
    }

    let mut agg_rows: Vec<Row> = Vec::with_capacity(groups.len());
    for (gvals, accs, sep) in groups {
        let mut row = gvals;
        for acc in accs {
            row.push(acc.finish(sep.as_ref())?);
        }
        agg_rows.push(row);
    }
    Ok(agg_rows.chunks(BATCH_SIZE).map(|c| Batch::from_rows(c, None)).collect())
}

/// Choose the accumulator implementation for one aggregate call.
fn acc_kind(call: &PlanAggCall, si: usize, abatches: &[AggBatch]) -> AccKind {
    if call.distinct {
        return AccKind::General;
    }
    if call.name == "count" && call.arg.is_none() {
        return AccKind::CountStar;
    }
    if call.arg.is_none() {
        return AccKind::General;
    }
    if call.name == "count" {
        return AccKind::CountCol;
    }
    // Uniform column type across all batches?
    let all_int =
        abatches.iter().all(|b| matches!(b.args[si].as_deref(), Some(ColumnVec::Int(..))));
    let all_float =
        abatches.iter().all(|b| matches!(b.args[si].as_deref(), Some(ColumnVec::Float(..))));
    match (call.name.as_str(), all_int, all_float) {
        ("sum", true, _) => AccKind::SumInt,
        ("sum", _, true) => AccKind::SumFloat,
        ("avg", true, _) => AccKind::AvgInt,
        ("avg", _, true) => AccKind::AvgFloat,
        ("min", true, _) => AccKind::MinInt,
        ("max", true, _) => AccKind::MaxInt,
        _ => AccKind::General,
    }
}

fn update_acc(
    acc: &mut Acc,
    col: &Option<Arc<ColumnVec>>,
    i: usize,
    sep: Option<Value>,
) -> Result<()> {
    match acc {
        Acc::CountStar(c) => *c += 1,
        Acc::CountCol(c) => {
            if col.as_ref().is_some_and(|c| c.is_valid(i)) {
                *c += 1;
            }
        }
        Acc::SumInt { sum, seen } => {
            if let Some(ColumnVec::Int(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *sum =
                        sum.checked_add(vals[i]).ok_or_else(|| Error::eval("integer overflow"))?;
                    *seen = true;
                }
            }
        }
        Acc::SumFloat { sum, seen } => {
            if let Some(ColumnVec::Float(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *sum += vals[i];
                    *seen = true;
                }
            }
        }
        Acc::AvgInt { sum, n } => {
            if let Some(ColumnVec::Int(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *sum =
                        sum.checked_add(vals[i]).ok_or_else(|| Error::eval("integer overflow"))?;
                    *n += 1;
                }
            }
        }
        Acc::AvgFloat { sum, n } => {
            if let Some(ColumnVec::Float(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *sum += vals[i];
                    *n += 1;
                }
            }
        }
        Acc::MinInt(m) => {
            if let Some(ColumnVec::Int(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *m = Some(m.map_or(vals[i], |p| p.min(vals[i])));
                }
            }
        }
        Acc::MaxInt(m) => {
            if let Some(ColumnVec::Int(vals, bm)) = col.as_deref() {
                if bm.get(i) {
                    *m = Some(m.map_or(vals[i], |p| p.max(vals[i])));
                }
            }
        }
        Acc::General(state) => {
            let v = col.as_ref().map(|c| c.get(i));
            state.update(v, sep.as_ref())?;
        }
    }
    Ok(())
}
