//! The logical plan IR.
//!
//! A [`PlanNode`] tree is produced by the builder (`plan::build`) from a
//! bound `SELECT`, already optimized: predicates pushed down, scans
//! pruned to the referenced columns, joins reordered. Every node carries
//! its *output* [`Scope`] (the columns visible to expressions evaluated
//! above it — fallback expressions need it to build row environments)
//! and a cardinality estimate from per-table statistics.
//!
//! The IR renders in two forms: an `EXPLAIN` tree with cardinality and
//! cost annotations, and a structural string (no estimates) hashed into
//! the plan fingerprint recorded in `sdb_stat_statements`.

use crate::ast::{JoinKind, OrderItem};
use crate::exec::eval::{BoundExpr, Scope};
use crate::table::TableRef;
use crate::types::DataType;

/// One aggregate call in an [`PlanNode::Aggregate`], with pre-bound
/// argument expressions (evaluated against the aggregate input scope).
#[derive(Debug, Clone)]
pub struct PlanAggCall {
    pub name: String,
    pub distinct: bool,
    /// `None` for `count(*)`.
    pub arg: Option<BoundExpr>,
    /// Second argument (`string_agg` separator).
    pub arg2: Option<BoundExpr>,
    /// Display form for EXPLAIN / fingerprinting.
    pub desc: String,
}

/// A logical plan operator. `est` fields are output-cardinality
/// estimates; `desc` fields are pre-rendered display fragments (the
/// builder has the original AST at hand, the executor does not).
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan a materialized relation (base table, CTE, view or subquery
    /// result), optionally keeping only the columns in `cols`.
    Scan {
        label: String,
        source: TableRef,
        /// `Some` = projection pruning kept these source column indices
        /// (in order); `None` = full width.
        cols: Option<Vec<usize>>,
        total_cols: usize,
        scope: Scope,
        est: f64,
    },
    /// Keep rows where `pred` is true.
    Filter { input: Box<PlanNode>, pred: BoundExpr, desc: String, est: f64 },
    /// Join two inputs. When `lkeys`/`rkeys` are non-empty this is a
    /// hash equi-join on those key expressions; `cond` holds any
    /// residual (non-equi) condition evaluated on the combined row.
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: JoinKind,
        lkeys: Vec<BoundExpr>,
        rkeys: Vec<BoundExpr>,
        cond: Option<BoundExpr>,
        desc: String,
        scope: Scope,
        est: f64,
    },
    /// Restore the syntactic column order after join reordering:
    /// output column `i` is input column `perm[i]`.
    Reorder { input: Box<PlanNode>, perm: Vec<usize>, scope: Scope },
    /// Hash aggregation over grouping sets. `sets` lists, per grouping
    /// set, the indices into `group` that are active (others masked to
    /// NULL); a plain GROUP BY is the single full set.
    Aggregate {
        input: Box<PlanNode>,
        group: Vec<BoundExpr>,
        sets: Vec<Vec<usize>>,
        aggs: Vec<PlanAggCall>,
        desc: String,
        scope: Scope,
        est: f64,
    },
    /// Compute output expressions. The first `visible` are the SELECT
    /// list; the rest are ORDER BY keys carried alongside.
    Project {
        input: Box<PlanNode>,
        exprs: Vec<BoundExpr>,
        visible: usize,
        desc: String,
        scope: Scope,
    },
    /// SELECT DISTINCT over the first `visible` columns.
    Distinct { input: Box<PlanNode>, visible: usize },
    /// Sort by the key columns `visible..` produced by the Project
    /// below, using the direction/null-order of `items`.
    Sort { input: Box<PlanNode>, items: Vec<OrderItem>, visible: usize, desc: String },
    /// LIMIT/OFFSET with plan-time-constant values.
    Limit { input: Box<PlanNode>, limit: Option<usize>, offset: Option<usize> },
}

impl PlanNode {
    /// The node's output scope.
    pub fn scope(&self) -> &Scope {
        match self {
            PlanNode::Scan { scope, .. }
            | PlanNode::Join { scope, .. }
            | PlanNode::Reorder { scope, .. }
            | PlanNode::Aggregate { scope, .. }
            | PlanNode::Project { scope, .. } => scope,
            PlanNode::Filter { input, .. }
            | PlanNode::Distinct { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => input.scope(),
        }
    }

    /// Estimated output cardinality.
    pub fn est(&self) -> f64 {
        match self {
            PlanNode::Scan { est, .. }
            | PlanNode::Filter { est, .. }
            | PlanNode::Join { est, .. }
            | PlanNode::Aggregate { est, .. } => *est,
            PlanNode::Reorder { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Sort { input, .. } => input.est(),
            PlanNode::Distinct { input, .. } => input.est() / 2.0,
            PlanNode::Limit { input, limit, .. } => match limit {
                Some(n) => input.est().min(*n as f64),
                None => input.est(),
            },
        }
    }

    /// Cumulative cost estimate: child costs plus the rows this operator
    /// touches (sorts pay an extra log factor).
    pub fn cost(&self) -> f64 {
        match self {
            PlanNode::Scan { est, cols, total_cols, .. } => {
                // Pruned scans move less data.
                let width = match cols {
                    Some(c) if *total_cols > 0 => c.len() as f64 / *total_cols as f64,
                    _ => 1.0,
                };
                est * width.max(0.1)
            }
            PlanNode::Filter { input, .. } => input.cost() + input.est(),
            PlanNode::Join { left, right, lkeys, est, .. } => {
                let base = left.cost() + right.cost();
                if lkeys.is_empty() {
                    // Nested loop.
                    base + left.est() * right.est().max(1.0)
                } else {
                    base + left.est() + right.est() + est
                }
            }
            PlanNode::Reorder { input, .. } => input.cost(),
            PlanNode::Aggregate { input, sets, .. } => {
                input.cost() + input.est() * sets.len().max(1) as f64
            }
            PlanNode::Project { input, .. } | PlanNode::Distinct { input, .. } => {
                input.cost() + input.est()
            }
            PlanNode::Sort { input, .. } => {
                let n = input.est();
                input.cost() + n * (n + 2.0).log2()
            }
            PlanNode::Limit { input, .. } => input.cost(),
        }
    }

    /// One-line description of this operator (no tree prefix).
    pub(crate) fn describe(&self) -> String {
        match self {
            PlanNode::Scan { label, cols, total_cols, .. } => match cols {
                Some(c) => format!("Scan {label} cols={}/{total_cols}", c.len()),
                None => format!("Scan {label}"),
            },
            PlanNode::Filter { desc, .. } => format!("Filter {desc}"),
            PlanNode::Join { kind, lkeys, desc, .. } => {
                let how = if lkeys.is_empty() { "NestedLoopJoin" } else { "HashJoin" };
                let kw = match kind {
                    JoinKind::Inner => "Inner",
                    JoinKind::Left => "Left",
                    JoinKind::Right => "Right",
                    JoinKind::Full => "Full",
                    JoinKind::Cross => "Cross",
                };
                if desc.is_empty() {
                    format!("{how} {kw}")
                } else {
                    format!("{how} {kw} on {desc}")
                }
            }
            PlanNode::Reorder { perm, .. } => format!("Reorder perm={perm:?}"),
            PlanNode::Aggregate { desc, sets, .. } => {
                if sets.len() > 1 {
                    format!("Aggregate {desc} sets={}", sets.len())
                } else {
                    format!("Aggregate {desc}")
                }
            }
            PlanNode::Project { desc, .. } => format!("Project {desc}"),
            PlanNode::Distinct { .. } => "Distinct".to_string(),
            PlanNode::Sort { desc, .. } => format!("Sort {desc}"),
            PlanNode::Limit { limit, offset, .. } => {
                let mut s = "Limit".to_string();
                if let Some(n) = limit {
                    s.push_str(&format!(" {n}"));
                }
                if let Some(n) = offset {
                    s.push_str(&format!(" offset {n}"));
                }
                s
            }
        }
    }

    fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Scan { .. } => vec![],
            PlanNode::Filter { input, .. }
            | PlanNode::Reorder { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Distinct { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => vec![input],
            PlanNode::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Append EXPLAIN lines for this subtree.
    fn render_into(&self, lines: &mut Vec<String>, prefix: &str, is_last: bool, is_root: bool) {
        let own = format!(
            "{} (rows\u{2248}{}, cost\u{2248}{})",
            self.describe(),
            fmt_est(self.est()),
            fmt_est(self.cost())
        );
        if is_root {
            lines.push(own);
        } else {
            let branch = if is_last { "\u{2514}\u{2500} " } else { "\u{251c}\u{2500} " };
            lines.push(format!("{prefix}{branch}{own}"));
        }
        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}\u{2502}  ")
        };
        let kids = self.children();
        let n = kids.len();
        for (i, k) in kids.into_iter().enumerate() {
            k.render_into(lines, &child_prefix, i + 1 == n, false);
        }
    }

    /// Append the structural (estimate-free) form used for
    /// fingerprinting.
    fn structure_into(&self, out: &mut String) {
        match self {
            PlanNode::Scan { label, cols, .. } => {
                out.push_str("scan(");
                out.push_str(label);
                if let Some(c) = cols {
                    out.push_str(&format!(" cols={c:?}"));
                }
                out.push(')');
            }
            PlanNode::Filter { input, desc, .. } => {
                out.push_str("filter(");
                out.push_str(desc);
                out.push_str(")<-");
                input.structure_into(out);
            }
            PlanNode::Join { left, right, kind, lkeys, desc, .. } => {
                out.push_str(if lkeys.is_empty() { "nljoin(" } else { "hashjoin(" });
                out.push_str(&format!("{kind:?} {desc})["));
                left.structure_into(out);
                out.push_str(" , ");
                right.structure_into(out);
                out.push(']');
            }
            PlanNode::Reorder { input, perm, .. } => {
                out.push_str(&format!("reorder({perm:?})<-"));
                input.structure_into(out);
            }
            PlanNode::Aggregate { input, sets, desc, .. } => {
                out.push_str(&format!("agg({desc} sets={sets:?})<-"));
                input.structure_into(out);
            }
            PlanNode::Project { input, desc, visible, .. } => {
                out.push_str(&format!("project({desc} vis={visible})<-"));
                input.structure_into(out);
            }
            PlanNode::Distinct { input, .. } => {
                out.push_str("distinct<-");
                input.structure_into(out);
            }
            PlanNode::Sort { input, desc, .. } => {
                out.push_str(&format!("sort({desc})<-"));
                input.structure_into(out);
            }
            PlanNode::Limit { input, limit, offset, .. } => {
                out.push_str(&format!("limit({limit:?},{offset:?})<-"));
                input.structure_into(out);
            }
        }
    }
}

fn fmt_est(v: f64) -> String {
    if v >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.1}")
    }
}

/// A fully planned `SELECT`: optimized operator tree plus output
/// metadata.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub root: PlanNode,
    /// Output column names (the SELECT list).
    pub names: Vec<String>,
    /// Statically inferred output types, used when a column has no
    /// non-NULL value to sniff a type from.
    pub static_types: Vec<DataType>,
    /// Number of visible output columns (ORDER BY keys beyond this are
    /// dropped from the final table).
    pub visible: usize,
}

impl PlannedQuery {
    /// Stable structural fingerprint of the optimized plan (FNV-1a over
    /// the estimate-free plan rendering).
    pub fn fingerprint(&self) -> u64 {
        let mut s = String::new();
        self.root.structure_into(&mut s);
        super::fnv1a(s.as_bytes())
    }

    /// Render the `EXPLAIN SELECT` tree, one line per operator.
    pub fn explain_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        self.root.render_into(&mut lines, "", true, true);
        lines.push(format!("plan fingerprint: {:016x}", self.fingerprint()));
        lines
    }
}
