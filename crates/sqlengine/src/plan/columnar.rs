//! Typed column vectors, fixed-size batches and vectorized expression
//! evaluation.
//!
//! A [`ColumnVec`] stores one column of a batch in a typed vector with a
//! validity [`Bitmap`]; heterogeneous columns degrade to `Any` (boxed
//! [`Value`]s). A [`Batch`] is a set of columns of equal length, at most
//! [`BATCH_SIZE`] rows when produced by a scan.
//!
//! [`VecExpr`] is the vectorized form of a [`BoundExpr`]: column loads,
//! constants, binary/unary operators, `IS NULL` and casts evaluate a
//! whole batch at a time (with typed fast loops for the common numeric
//! and text cases); any other expression — function calls, CASE,
//! subqueries, LIKE, IN — compiles to a `Fallback` node that re-enters
//! the row interpreter's evaluator per row, guaranteeing identical
//! semantics. A subtree with a fallback child collapses into a fallback
//! of the whole expression: mixed vector/row evaluation is never
//! attempted.

use crate::error::{Error, Result};
use crate::exec::eval::{BoundExpr, Env, EvalCtx, Scope};
use crate::table::Row;
use crate::types::value::cmp_f64;
use crate::types::{BinOp, Bitmap, UnOp, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Rows per scan-produced batch.
pub const BATCH_SIZE: usize = 1024;

// ---------------------------------------------------------------------------
// Column vectors
// ---------------------------------------------------------------------------

/// One column of a batch. Typed variants carry a validity bitmap
/// (`true` = present); slots that are invalid hold an arbitrary
/// placeholder and read back as SQL NULL.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    Int(Vec<i64>, Bitmap),
    Float(Vec<f64>, Bitmap),
    Bool(Vec<bool>, Bitmap),
    Text(Vec<Arc<str>>, Bitmap),
    /// Mixed or non-primitive values (timestamps, intervals, bit
    /// strings, custom solver values) stay boxed.
    Any(Vec<Value>),
}

impl ColumnVec {
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v, _) => v.len(),
            ColumnVec::Float(v, _) => v.len(),
            ColumnVec::Bool(v, _) => v.len(),
            ColumnVec::Text(v, _) => v.len(),
            ColumnVec::Any(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is the slot at `i` non-NULL?
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int(_, b)
            | ColumnVec::Float(_, b)
            | ColumnVec::Bool(_, b)
            | ColumnVec::Text(_, b) => b.get(i),
            ColumnVec::Any(v) => !v[i].is_null(),
        }
    }

    /// Read one slot back as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int(v, b) => {
                if b.get(i) {
                    Value::Int(v[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Float(v, b) => {
                if b.get(i) {
                    Value::Float(v[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Bool(v, b) => {
                if b.get(i) {
                    Value::Bool(v[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Text(v, b) => {
                if b.get(i) {
                    Value::Text(v[i].clone())
                } else {
                    Value::Null
                }
            }
            ColumnVec::Any(v) => v[i].clone(),
        }
    }

    /// Build a column from owned values, choosing the narrowest typed
    /// representation that fits every non-NULL value.
    pub fn from_values(values: Vec<Value>) -> ColumnVec {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Bool,
            Text,
            Mixed,
        }
        let mut kind = Kind::Unknown;
        for v in &values {
            let k = match v {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Text(_) => Kind::Text,
                _ => Kind::Mixed,
            };
            kind = match (kind, k) {
                (Kind::Unknown, k) => k,
                (a, b) if a == b => a,
                _ => Kind::Mixed,
            };
            if kind == Kind::Mixed {
                break;
            }
        }
        let n = values.len();
        match kind {
            Kind::Int => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for v in values {
                    match v {
                        Value::Int(i) => {
                            data.push(i);
                            valid.push(true);
                        }
                        _ => {
                            data.push(0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Int(data, valid)
            }
            Kind::Float => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for v in values {
                    match v {
                        Value::Float(f) => {
                            data.push(f);
                            valid.push(true);
                        }
                        _ => {
                            data.push(0.0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Float(data, valid)
            }
            Kind::Bool => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for v in values {
                    match v {
                        Value::Bool(b) => {
                            data.push(b);
                            valid.push(true);
                        }
                        _ => {
                            data.push(false);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Bool(data, valid)
            }
            Kind::Text => {
                let empty: Arc<str> = Arc::from("");
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for v in values {
                    match v {
                        Value::Text(s) => {
                            data.push(s);
                            valid.push(true);
                        }
                        _ => {
                            data.push(empty.clone());
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Text(data, valid)
            }
            // All-NULL columns stay Any so they read back as NULL without
            // inventing a type.
            Kind::Unknown | Kind::Mixed => ColumnVec::Any(values),
        }
    }

    /// Broadcast one value to a column of length `n`.
    pub fn broadcast(v: &Value, n: usize) -> ColumnVec {
        match v {
            Value::Int(i) => ColumnVec::Int(vec![*i; n], Bitmap::filled(n, true)),
            Value::Float(f) => ColumnVec::Float(vec![*f; n], Bitmap::filled(n, true)),
            Value::Bool(b) => ColumnVec::Bool(vec![*b; n], Bitmap::filled(n, true)),
            Value::Text(s) => ColumnVec::Text(vec![s.clone(); n], Bitmap::filled(n, true)),
            other => ColumnVec::Any(vec![other.clone(); n]),
        }
    }

    /// Select the slots at `idx` (in order) into a new column.
    pub fn gather(&self, idx: &[usize]) -> ColumnVec {
        match self {
            ColumnVec::Int(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    data.push(v[i]);
                    valid.push(b.get(i));
                }
                ColumnVec::Int(data, valid)
            }
            ColumnVec::Float(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    data.push(v[i]);
                    valid.push(b.get(i));
                }
                ColumnVec::Float(data, valid)
            }
            ColumnVec::Bool(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    data.push(v[i]);
                    valid.push(b.get(i));
                }
                ColumnVec::Bool(data, valid)
            }
            ColumnVec::Text(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    data.push(v[i].clone());
                    valid.push(b.get(i));
                }
                ColumnVec::Text(data, valid)
            }
            ColumnVec::Any(v) => ColumnVec::Any(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Gather with optional indices: `None` produces NULL (outer-join
    /// padding).
    pub fn gather_opt(&self, idx: &[Option<usize>]) -> ColumnVec {
        // Padding introduces NULLs regardless of the source type, so the
        // typed variants keep their representation with invalid slots.
        match self {
            ColumnVec::Int(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    match i {
                        Some(i) => {
                            data.push(v[i]);
                            valid.push(b.get(i));
                        }
                        None => {
                            data.push(0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Int(data, valid)
            }
            ColumnVec::Float(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    match i {
                        Some(i) => {
                            data.push(v[i]);
                            valid.push(b.get(i));
                        }
                        None => {
                            data.push(0.0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Float(data, valid)
            }
            ColumnVec::Bool(v, b) => {
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    match i {
                        Some(i) => {
                            data.push(v[i]);
                            valid.push(b.get(i));
                        }
                        None => {
                            data.push(false);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Bool(data, valid)
            }
            ColumnVec::Text(v, b) => {
                let empty: Arc<str> = Arc::from("");
                let mut data = Vec::with_capacity(idx.len());
                let mut valid = Bitmap::with_capacity(idx.len());
                for &i in idx {
                    match i {
                        Some(i) => {
                            data.push(v[i].clone());
                            valid.push(b.get(i));
                        }
                        None => {
                            data.push(empty.clone());
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Text(data, valid)
            }
            ColumnVec::Any(v) => ColumnVec::Any(
                idx.iter().map(|&i| i.map(|i| v[i].clone()).unwrap_or(Value::Null)).collect(),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

/// A horizontal slice of a relation: columns of equal length.
#[derive(Debug, Clone)]
pub struct Batch {
    pub cols: Vec<Arc<ColumnVec>>,
    pub len: usize,
}

impl Batch {
    /// Build a batch from row-major storage, optionally keeping only the
    /// columns listed in `keep` (in that order).
    pub fn from_rows(rows: &[Row], keep: Option<&[usize]>) -> Batch {
        let len = rows.len();
        let cols: Vec<Arc<ColumnVec>> = match keep {
            Some(keep) => keep
                .iter()
                .map(|&c| {
                    Arc::new(ColumnVec::from_values(rows.iter().map(|r| r[c].clone()).collect()))
                })
                .collect(),
            None => {
                let width = rows.first().map(|r| r.len()).unwrap_or(0);
                (0..width)
                    .map(|c| {
                        Arc::new(ColumnVec::from_values(
                            rows.iter().map(|r| r[c].clone()).collect(),
                        ))
                    })
                    .collect()
            }
        };
        Batch { cols, len }
    }

    /// Materialize one row.
    pub fn row_at(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Keep only the rows at `idx`.
    pub fn gather(&self, idx: &[usize]) -> Batch {
        Batch { cols: self.cols.iter().map(|c| Arc::new(c.gather(idx))).collect(), len: idx.len() }
    }
}

/// Materialize a sequence of batches as rows.
pub fn batches_to_rows(batches: &[Batch]) -> Vec<Row> {
    let mut rows = Vec::with_capacity(batches.iter().map(|b| b.len).sum());
    for b in batches {
        for i in 0..b.len {
            rows.push(b.row_at(i));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Vectorized expressions
// ---------------------------------------------------------------------------

/// Context for vectorized evaluation: the interpreter's evaluation
/// context plus the scope of the batch (needed when a fallback
/// expression contains a subquery that correlates to the current row).
pub struct VecEvalCtx<'a> {
    pub ctx: &'a EvalCtx<'a>,
    pub scope: &'a Scope,
}

/// A bound expression compiled for batch evaluation.
#[derive(Debug, Clone)]
pub enum VecExpr {
    Col(usize),
    Const(Value),
    BinOp {
        op: BinOp,
        lhs: Box<VecExpr>,
        rhs: Box<VecExpr>,
        orig: BoundExpr,
    },
    UnOp {
        op: UnOp,
        expr: Box<VecExpr>,
    },
    IsNull {
        expr: Box<VecExpr>,
        negated: bool,
    },
    Cast {
        expr: Box<VecExpr>,
        ty: crate::types::DataType,
    },
    /// Row-at-a-time re-entry into the interpreter's evaluator.
    Fallback(BoundExpr),
}

impl VecExpr {
    /// Compile a bound expression. Unsupported shapes become `Fallback`;
    /// a fallback child collapses the whole subtree.
    pub fn compile(b: &BoundExpr) -> VecExpr {
        match b {
            BoundExpr::Column { depth: 0, index } => VecExpr::Col(*index),
            BoundExpr::Const(v) => VecExpr::Const(v.clone()),
            BoundExpr::BinOp { op, lhs, rhs } => {
                let l = VecExpr::compile(lhs);
                let r = VecExpr::compile(rhs);
                if matches!(l, VecExpr::Fallback(_)) || matches!(r, VecExpr::Fallback(_)) {
                    VecExpr::Fallback(b.clone())
                } else {
                    VecExpr::BinOp { op: *op, lhs: Box::new(l), rhs: Box::new(r), orig: b.clone() }
                }
            }
            BoundExpr::UnOp { op, expr } => {
                let e = VecExpr::compile(expr);
                if matches!(e, VecExpr::Fallback(_)) {
                    VecExpr::Fallback(b.clone())
                } else {
                    VecExpr::UnOp { op: *op, expr: Box::new(e) }
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let e = VecExpr::compile(expr);
                if matches!(e, VecExpr::Fallback(_)) {
                    VecExpr::Fallback(b.clone())
                } else {
                    VecExpr::IsNull { expr: Box::new(e), negated: *negated }
                }
            }
            BoundExpr::Cast { expr, ty } => {
                let e = VecExpr::compile(expr);
                if matches!(e, VecExpr::Fallback(_)) {
                    VecExpr::Fallback(b.clone())
                } else {
                    VecExpr::Cast { expr: Box::new(e), ty: ty.clone() }
                }
            }
            other => VecExpr::Fallback(other.clone()),
        }
    }

    /// Evaluate against a batch, producing one column.
    pub fn eval(&self, batch: &Batch, ev: &VecEvalCtx<'_>) -> Result<Arc<ColumnVec>> {
        match self {
            VecExpr::Col(i) => Ok(batch.cols[*i].clone()),
            VecExpr::Const(v) => Ok(Arc::new(ColumnVec::broadcast(v, batch.len))),
            VecExpr::BinOp { op, lhs, rhs, orig } => {
                let l = lhs.eval(batch, ev)?;
                if matches!(op, BinOp::And | BinOp::Or) {
                    // The interpreter short-circuits AND/OR on a plain
                    // boolean left side, so the right side may error only
                    // on rows that never evaluate it. Vector evaluation is
                    // eager; when the right side errors, replay the whole
                    // expression row-by-row to reproduce the interpreter's
                    // exact behavior.
                    let r = match rhs.eval(batch, ev) {
                        Ok(r) => r,
                        Err(_) => return eval_fallback(orig, batch, ev),
                    };
                    return binop_columns(*op, &l, &r).map(Arc::new);
                }
                let r = rhs.eval(batch, ev)?;
                binop_columns(*op, &l, &r).map(Arc::new)
            }
            VecExpr::UnOp { op, expr } => {
                let c = expr.eval(batch, ev)?;
                let mut out = Vec::with_capacity(c.len());
                for i in 0..c.len() {
                    out.push(Value::unop(*op, &c.get(i))?);
                }
                Ok(Arc::new(ColumnVec::from_values(out)))
            }
            VecExpr::IsNull { expr, negated } => {
                let c = expr.eval(batch, ev)?;
                let mut data = Vec::with_capacity(c.len());
                for i in 0..c.len() {
                    data.push(c.is_valid(i) == *negated);
                }
                let n = data.len();
                Ok(Arc::new(ColumnVec::Bool(data, Bitmap::filled(n, true))))
            }
            VecExpr::Cast { expr, ty } => {
                let c = expr.eval(batch, ev)?;
                let mut out = Vec::with_capacity(c.len());
                for i in 0..c.len() {
                    out.push(c.get(i).cast(ty)?);
                }
                Ok(Arc::new(ColumnVec::from_values(out)))
            }
            VecExpr::Fallback(b) => eval_fallback(b, batch, ev),
        }
    }
}

/// Row-at-a-time evaluation of a bound expression over a batch.
fn eval_fallback(b: &BoundExpr, batch: &Batch, ev: &VecEvalCtx<'_>) -> Result<Arc<ColumnVec>> {
    let mut out = Vec::with_capacity(batch.len);
    for i in 0..batch.len {
        let row = batch.row_at(i);
        let env = Env { scope: ev.scope, row: &row, parent: None };
        out.push(b.eval(ev.ctx, &env)?);
    }
    Ok(Arc::new(ColumnVec::from_values(out)))
}

// ---------------------------------------------------------------------------
// Vectorized binary operators
// ---------------------------------------------------------------------------

fn ord_matches(op: BinOp, o: Ordering) -> bool {
    match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Ne => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::Le => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::Ge => o != Ordering::Less,
        _ => false,
    }
}

/// Apply a binary operator over two columns with typed fast loops for
/// the common cases; everything else routes each element through
/// [`Value::binop`] (identical semantics to the row interpreter).
fn binop_columns(op: BinOp, l: &ColumnVec, r: &ColumnVec) -> Result<ColumnVec> {
    use ColumnVec::*;
    let n = l.len();
    debug_assert_eq!(n, r.len());

    // Comparisons on matching primitive columns.
    if op.is_comparison() {
        match (l, r) {
            (Int(a, av), Int(b, bv)) => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    let ok = av.get(i) && bv.get(i);
                    data.push(ok && ord_matches(op, a[i].cmp(&b[i])));
                    valid.push(ok);
                }
                return Ok(Bool(data, valid));
            }
            (Float(a, av), Float(b, bv)) => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    let ok = av.get(i) && bv.get(i);
                    data.push(ok && ord_matches(op, cmp_f64(a[i], b[i])));
                    valid.push(ok);
                }
                return Ok(Bool(data, valid));
            }
            (Int(a, av), Float(b, bv)) => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    let ok = av.get(i) && bv.get(i);
                    data.push(ok && ord_matches(op, cmp_f64(a[i] as f64, b[i])));
                    valid.push(ok);
                }
                return Ok(Bool(data, valid));
            }
            (Float(a, av), Int(b, bv)) => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    let ok = av.get(i) && bv.get(i);
                    data.push(ok && ord_matches(op, cmp_f64(a[i], b[i] as f64)));
                    valid.push(ok);
                }
                return Ok(Bool(data, valid));
            }
            (Text(a, av), Text(b, bv)) => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    let ok = av.get(i) && bv.get(i);
                    data.push(ok && ord_matches(op, a[i].as_ref().cmp(b[i].as_ref())));
                    valid.push(ok);
                }
                return Ok(Bool(data, valid));
            }
            _ => {}
        }
    }

    // Kleene AND/OR on boolean columns.
    if matches!(op, BinOp::And | BinOp::Or) {
        if let (Bool(a, av), Bool(b, bv)) = (l, r) {
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::with_capacity(n);
            for i in 0..n {
                let x = if av.get(i) { Some(a[i]) } else { None };
                let y = if bv.get(i) { Some(b[i]) } else { None };
                let out = match (op, x, y) {
                    (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
                    (BinOp::And, Some(true), Some(true)) => Some(true),
                    (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
                    (BinOp::Or, Some(false), Some(false)) => Some(false),
                    _ => None,
                };
                data.push(out.unwrap_or(false));
                valid.push(out.is_some());
            }
            return Ok(Bool(data, valid));
        }
        // Non-boolean operand: route through Value::binop to reproduce
        // the interpreter's error.
        return binop_generic(op, l, r);
    }

    // Integer arithmetic with overflow checks (mirrors Value::binop).
    if let (Int(a, av), Int(b, bv)) = (l, r) {
        let checked = |f: fn(i64, i64) -> Option<i64>| -> Result<ColumnVec> {
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::with_capacity(n);
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    data.push(f(a[i], b[i]).ok_or_else(|| Error::eval("integer overflow"))?);
                    valid.push(true);
                } else {
                    data.push(0);
                    valid.push(false);
                }
            }
            Ok(Int(data, valid))
        };
        match op {
            BinOp::Add => return checked(i64::checked_add),
            BinOp::Sub => return checked(i64::checked_sub),
            BinOp::Mul => return checked(i64::checked_mul),
            BinOp::Div | BinOp::Mod => {
                let mut data = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for i in 0..n {
                    if av.get(i) && bv.get(i) {
                        if b[i] == 0 {
                            return Err(Error::eval("division by zero"));
                        }
                        data.push(if op == BinOp::Div { a[i] / b[i] } else { a[i] % b[i] });
                        valid.push(true);
                    } else {
                        data.push(0);
                        valid.push(false);
                    }
                }
                return Ok(Int(data, valid));
            }
            _ => {}
        }
    }

    // Float (or mixed int/float) arithmetic.
    let float_at = |c: &ColumnVec, i: usize| -> Option<f64> {
        match c {
            Int(v, b) => b.get(i).then(|| v[i] as f64),
            Float(v, b) => b.get(i).then(|| v[i]),
            _ => None,
        }
    };
    if matches!((l, r), (Int(..) | Float(..), Int(..) | Float(..)))
        && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::Pow)
    {
        let mut data = Vec::with_capacity(n);
        let mut valid = Bitmap::with_capacity(n);
        for i in 0..n {
            match (float_at(l, i), float_at(r, i)) {
                (Some(x), Some(y)) => {
                    let v = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div | BinOp::Mod => {
                            if y == 0.0 {
                                return Err(Error::eval("division by zero"));
                            }
                            if op == BinOp::Div {
                                x / y
                            } else {
                                x % y
                            }
                        }
                        _ => x.powf(y),
                    };
                    data.push(v);
                    valid.push(true);
                }
                _ => {
                    data.push(0.0);
                    valid.push(false);
                }
            }
        }
        return Ok(Float(data, valid));
    }

    // Text concatenation.
    if op == BinOp::Concat {
        if let (Text(a, av), Text(b, bv)) = (l, r) {
            let empty: Arc<str> = Arc::from("");
            let mut data = Vec::with_capacity(n);
            let mut valid = Bitmap::with_capacity(n);
            for i in 0..n {
                if av.get(i) && bv.get(i) {
                    let mut s = String::with_capacity(a[i].len() + b[i].len());
                    s.push_str(&a[i]);
                    s.push_str(&b[i]);
                    data.push(Arc::from(s.as_str()));
                    valid.push(true);
                } else {
                    data.push(empty.clone());
                    valid.push(false);
                }
            }
            return Ok(Text(data, valid));
        }
    }

    binop_generic(op, l, r)
}

/// Element-by-element application of [`Value::binop`].
fn binop_generic(op: BinOp, l: &ColumnVec, r: &ColumnVec) -> Result<ColumnVec> {
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(Value::binop(op, &l.get(i), &r.get(i))?);
    }
    Ok(ColumnVec::from_values(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[Option<i64>]) -> ColumnVec {
        ColumnVec::from_values(
            vals.iter().map(|v| v.map(Value::Int).unwrap_or(Value::Null)).collect(),
        )
    }

    #[test]
    fn from_values_picks_typed_representation() {
        let c = ints(&[Some(1), None, Some(3)]);
        assert!(matches!(c, ColumnVec::Int(..)));
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        let mixed = ColumnVec::from_values(vec![Value::Int(1), Value::text("x")]);
        assert!(matches!(mixed, ColumnVec::Any(_)));
    }

    #[test]
    fn typed_comparison_propagates_nulls() {
        let a = ints(&[Some(1), None, Some(3)]);
        let b = ints(&[Some(2), Some(2), Some(2)]);
        let c = binop_columns(BinOp::Gt, &a, &b).unwrap();
        assert_eq!(c.get(0), Value::Bool(false));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Value::Bool(true));
    }

    #[test]
    fn int_arithmetic_checks_overflow() {
        let a = ints(&[Some(i64::MAX)]);
        let b = ints(&[Some(1)]);
        assert!(binop_columns(BinOp::Add, &a, &b).is_err());
        let ok = binop_columns(BinOp::Add, &ints(&[Some(2)]), &ints(&[Some(3)])).unwrap();
        assert_eq!(ok.get(0), Value::Int(5));
    }

    #[test]
    fn kleene_and_matches_interpreter() {
        let t = ColumnVec::from_values(vec![Value::Bool(true), Value::Bool(false), Value::Null]);
        let u = ColumnVec::from_values(vec![Value::Null, Value::Null, Value::Null]);
        let c = binop_columns(BinOp::And, &t, &u).unwrap();
        assert!(c.get(0).is_null());
        assert_eq!(c.get(1), Value::Bool(false));
        assert!(c.get(2).is_null());
    }

    #[test]
    fn mixed_numeric_division_promotes_to_float() {
        let a = ints(&[Some(7)]);
        let b = ColumnVec::from_values(vec![Value::Float(2.0)]);
        let c = binop_columns(BinOp::Div, &a, &b).unwrap();
        assert_eq!(c.get(0), Value::Float(3.5));
    }
}
