//! Plan construction and cost-based optimization.
//!
//! [`plan_select`] compiles a plain `SELECT` into a [`PlannedQuery`].
//! It is deliberately conservative: any shape outside the planner's
//! competence returns `Ok(None)` (or an error, which the caller also
//! treats as "fall back") and the row interpreter executes the query
//! with its original semantics. Shapes that stay on the row path:
//!
//! - no FROM clause, LATERAL, `USING` joins
//! - `SOLVEMODEL` expressions or `SOLVESELECT` subqueries anywhere
//! - correlated outer context (the caller only plans top-level queries)
//!
//! For a FROM clause of pure inner/cross joins the builder runs the
//! full optimization pipeline: `WHERE` and `ON` conjuncts are pooled
//! (sound because inner-join `ON` and `WHERE` are interchangeable),
//! single-table conjuncts are pushed below the join onto their scan,
//! two-table equalities become hash-join edges, scans are pruned to the
//! referenced columns, and the join order is chosen greedily from
//! per-table statistics (smallest relation first, then whichever
//! candidate minimizes the estimated intermediate size). A `Reorder`
//! node restores the syntactic column order above the chosen join tree.
//! Outer joins keep their syntactic structure (predicate motion across
//! the nullable side of an outer join is unsound) and only get the
//! vectorized executor, not the optimizer.
//!
//! Expressions containing subqueries disable column pruning and join
//! reordering: bound subqueries re-bind against the runtime scope chain
//! at evaluation time, so the scope they see must stay syntactic.

use super::ir::{PlanAggCall, PlanNode, PlannedQuery};
use crate::ast::{
    Expr, JoinConstraint, JoinKind, Literal, OrderItem, Select, SelectItem, SetExpr,
    TableRef as AstTableRef,
};
use crate::catalog::{Ctes, Database};
use crate::error::Result;
use crate::exec::eval::{Binder, BoundExpr, Env, EvalCtx, Scope, ScopeCol};
use crate::exec::select::{
    bind_with_idx_markers, expand_projection, find_aggregates, resolve_group_by,
    resolve_idx_markers, rewrite_agg, run_query, static_type, try_equi_keys, AggCall,
};
use crate::table::TableRef;
use crate::types::DataType;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Compile a `SELECT` into an optimized plan, or `None` when the shape
/// belongs on the row interpreter.
pub fn plan_select(
    db: &Database,
    ctes: &Ctes,
    sel: &Select,
    order_by: &[OrderItem],
    limit: &Option<Expr>,
    offset: &Option<Expr>,
) -> Result<Option<PlannedQuery>> {
    // -- shape gate ---------------------------------------------------------
    if sel.from.is_empty() {
        return Ok(None);
    }
    if sel.from.iter().any(tref_unsupported) {
        return Ok(None);
    }
    if select_has_solve(sel)
        || order_by.iter().any(|o| expr_has_solve(&o.expr))
        || limit.as_ref().is_some_and(expr_has_solve)
        || offset.as_ref().is_some_and(expr_has_solve)
    {
        return Ok(None);
    }

    // LIMIT/OFFSET are constant expressions; resolve them at plan time
    // (errors fall back so the interpreter reports them).
    let eval_const = |e: &Expr| -> Result<Option<usize>> {
        let scope = Scope::default();
        let binder = Binder::new(db, &scope);
        let b = binder.bind(e)?;
        let ctx = EvalCtx { db, ctes };
        let v = b.eval(&ctx, &Env::empty())?;
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(v.as_i64()?.max(0) as usize))
        }
    };
    let limit_n = match limit {
        Some(e) => eval_const(e)?,
        None => None,
    };
    let offset_n = match offset {
        Some(e) => eval_const(e)?,
        None => None,
    };

    // -- FROM clause --------------------------------------------------------
    let pure = sel.from.iter().all(is_pure_inner);
    let from = if pure {
        let mut bases = Vec::new();
        let mut ons: Vec<(&Expr, Scope)> = Vec::new();
        for tref in &sel.from {
            if !flatten_pure(db, ctes, tref, &mut bases, &mut ons)? {
                return Ok(None);
            }
        }
        // Validate ON conditions the way the interpreter would: bound
        // against the local combined scope of their join node.
        for (e, local) in &ons {
            let binder = Binder::new(db, local);
            binder.bind(e)?; // Err → fall back; interpreter reproduces it
        }
        let mut syn_scope = Scope::default();
        let mut offsets = Vec::with_capacity(bases.len());
        for b in &bases {
            offsets.push(syn_scope.cols.len());
            syn_scope = syn_scope.join(&b.scope);
        }
        FromShape::Pure {
            bases,
            offsets,
            syn_scope,
            ons: ons.into_iter().map(|(e, _)| e).collect(),
        }
    } else {
        let mut node: Option<PlanNode> = None;
        for tref in &sel.from {
            let Some(next) = build_syntactic(db, ctes, tref)? else { return Ok(None) };
            node = Some(match node {
                None => next,
                Some(acc) => {
                    let scope = acc.scope().join(next.scope());
                    let est = acc.est() * next.est();
                    PlanNode::Join {
                        left: Box::new(acc),
                        right: Box::new(next),
                        kind: JoinKind::Cross,
                        lkeys: vec![],
                        rkeys: vec![],
                        cond: None,
                        desc: String::new(),
                        scope,
                        est,
                    }
                }
            });
        }
        let Some(node) = node else { return Ok(None) };
        let syn_scope = node.scope().clone();
        FromShape::General { node, syn_scope }
    };
    let syn_scope = match &from {
        FromShape::Pure { syn_scope, .. } | FromShape::General { syn_scope, .. } => {
            syn_scope.clone()
        }
    };

    // -- projection / grouping analysis (mirrors run_select) ----------------
    let proj = expand_projection(sel, &syn_scope)?;
    let group_by = resolve_group_by(&sel.group_by, &proj, &syn_scope)?;
    let mut aggs: Vec<AggCall> = Vec::new();
    for (_, e) in &proj {
        find_aggregates(e, &mut aggs);
    }
    if let Some(h) = &sel.having {
        find_aggregates(h, &mut aggs);
    }
    for o in order_by {
        find_aggregates(&o.expr, &mut aggs);
    }
    let aggregated = !group_by.is_empty()
        || sel.grouping_sets.is_some()
        || !aggs.is_empty()
        || sel.having.is_some();

    // Subqueries re-bind against the runtime scope at evaluation time,
    // so any subquery in any expression pins the scope to its syntactic
    // shape: no pruning, no join reordering.
    let mut has_subquery = proj.iter().any(|(_, e)| expr_has_subquery(e))
        || sel.where_.as_ref().is_some_and(expr_has_subquery)
        || sel.having.as_ref().is_some_and(expr_has_subquery)
        || group_by.iter().any(expr_has_subquery)
        || order_by.iter().any(|o| expr_has_subquery(&o.expr));

    // Bind the pre-aggregation expressions against the syntactic scope.
    let syn_binder = Binder::new(db, &syn_scope);
    let mut group_bound: Vec<BoundExpr> = Vec::new();
    let mut agg_args: Vec<(Option<BoundExpr>, Option<BoundExpr>)> = Vec::new();
    let mut proj_bound: Vec<BoundExpr> = Vec::new();
    let mut order_bound: Vec<BoundExpr> = Vec::new();
    if aggregated {
        for g in &group_by {
            group_bound.push(syn_binder.bind(g)?);
        }
        for a in &aggs {
            agg_args.push((
                a.arg.as_ref().map(|e| syn_binder.bind(e)).transpose()?,
                a.arg2.as_ref().map(|e| syn_binder.bind(e)).transpose()?,
            ));
        }
    } else {
        for (_, e) in &proj {
            proj_bound.push(bind_with_idx_markers(&syn_binder, e, &syn_scope)?);
        }
        for o in order_by {
            if let Expr::Literal(Literal::Int(i)) = &o.expr {
                let idx = *i - 1;
                if idx < 0 || idx as usize >= proj_bound.len() {
                    return Ok(None); // interpreter reports the range error
                }
                order_bound.push(proj_bound[idx as usize].clone());
                continue;
            }
            if let Expr::Column { qualifier: None, name } = &o.expr {
                if let Some(i) = proj.iter().position(|(n, _)| n.as_deref() == Some(name.as_str()))
                {
                    order_bound.push(proj_bound[i].clone());
                    continue;
                }
            }
            order_bound.push(syn_binder.bind(&o.expr)?);
        }
    }

    // -- conjunct classification (pure mode) --------------------------------
    let (mut input, col_map) = match from {
        FromShape::General { node, .. } => {
            let node = match &sel.where_ {
                Some(w) => {
                    let pred = syn_binder.bind(w)?;
                    let est = sel_est(node.est(), 1);
                    PlanNode::Filter {
                        input: Box::new(node),
                        pred,
                        desc: clip(&w.to_string()),
                        est,
                    }
                }
                None => node,
            };
            (node, None)
        }
        FromShape::Pure { bases, offsets, syn_scope: _, ons } => {
            let mut conjuncts: Vec<&Expr> = Vec::new();
            for e in &ons {
                split_and(e, &mut conjuncts);
            }
            if let Some(w) = &sel.where_ {
                split_and(w, &mut conjuncts);
            }

            let base_of = |cols: &[usize]| -> Option<usize> {
                let mut owner = None;
                for &c in cols {
                    let b = offsets.iter().rposition(|&o| o <= c)?;
                    if owner.is_some_and(|p| p != b) {
                        return None;
                    }
                    owner = Some(b);
                }
                owner
            };

            struct Edge {
                a: usize,
                b: usize,
                ab: BoundExpr,
                bb: BoundExpr,
                desc: String,
            }
            let mut pushed: Vec<Vec<(BoundExpr, String)>> = vec![Vec::new(); bases.len()];
            let mut edges: Vec<Edge> = Vec::new();
            let mut residual: Vec<(BoundExpr, String)> = Vec::new();
            for c in conjuncts {
                let b = syn_binder.bind(c)?;
                let desc = clip(&c.to_string());
                if bound_has_subquery(&b) {
                    has_subquery = true;
                    residual.push((b, desc));
                    continue;
                }
                let mut cols = Vec::new();
                collect_cols(&b, &mut cols);
                if !cols.is_empty() {
                    if let Some(owner) = base_of(&cols) {
                        pushed[owner].push((b, desc));
                        continue;
                    }
                }
                if let BoundExpr::BinOp { op: crate::types::BinOp::Eq, lhs, rhs } = &b {
                    let (mut lc, mut rc) = (Vec::new(), Vec::new());
                    collect_cols(lhs, &mut lc);
                    collect_cols(rhs, &mut rc);
                    if !lc.is_empty() && !rc.is_empty() {
                        if let (Some(a), Some(bb)) = (base_of(&lc), base_of(&rc)) {
                            if a != bb {
                                edges.push(Edge {
                                    a,
                                    b: bb,
                                    ab: (**lhs).clone(),
                                    bb: (**rhs).clone(),
                                    desc,
                                });
                                continue;
                            }
                        }
                    }
                }
                residual.push((b, desc));
            }

            // -- column pruning ---------------------------------------------
            let widths: Vec<usize> = bases.iter().map(|b| b.scope.cols.len()).collect();
            let total: usize = widths.iter().sum();
            let kept: Vec<Vec<usize>> = if has_subquery {
                widths.iter().map(|&w| (0..w).collect()).collect()
            } else {
                let mut used: HashSet<usize> = HashSet::new();
                let mut add = |b: &BoundExpr| {
                    let mut cols = Vec::new();
                    collect_cols(b, &mut cols);
                    used.extend(cols);
                };
                for (b, _) in pushed.iter().flatten() {
                    add(b);
                }
                for e in &edges {
                    add(&e.ab);
                    add(&e.bb);
                }
                for (b, _) in &residual {
                    add(b);
                }
                for b in group_bound.iter().chain(proj_bound.iter()).chain(order_bound.iter()) {
                    add(b);
                }
                for (a1, a2) in &agg_args {
                    if let Some(b) = a1 {
                        add(b);
                    }
                    if let Some(b) = a2 {
                        add(b);
                    }
                }
                (0..bases.len())
                    .map(|bi| {
                        (0..widths[bi]).filter(|j| used.contains(&(offsets[bi] + j))).collect()
                    })
                    .collect()
            };
            // Old syntactic index → pruned syntactic index.
            let mut to_pruned: HashMap<usize, usize> = HashMap::new();
            let mut pruned_offsets = Vec::with_capacity(bases.len());
            let mut pruned_scope = Scope::default();
            for (bi, keep) in kept.iter().enumerate() {
                pruned_offsets.push(pruned_scope.cols.len());
                for &j in keep {
                    to_pruned.insert(offsets[bi] + j, pruned_scope.cols.len());
                    pruned_scope.cols.push(bases[bi].scope.cols[j].clone());
                }
            }
            let map: Option<HashMap<usize, usize>> =
                if to_pruned.len() == total && (0..total).all(|i| to_pruned.get(&i) == Some(&i)) {
                    None
                } else {
                    Some(to_pruned.clone())
                };

            // -- per-base scan (+ pushed filter) nodes -----------------------
            let col_distinct = |syn: usize| -> Option<f64> {
                let bi = offsets.iter().rposition(|&o| o <= syn)?;
                let j = syn - offsets[bi];
                let stats = db.table_stats(&bases[bi].source);
                Some(stats.distinct_of(j))
            };
            let mut nodes: Vec<Option<PlanNode>> = Vec::with_capacity(bases.len());
            let mut ests: Vec<f64> = Vec::with_capacity(bases.len());
            for (bi, base) in bases.iter().enumerate() {
                let stats = db.table_stats(&base.source);
                let scope =
                    Scope::new(kept[bi].iter().map(|&j| base.scope.cols[j].clone()).collect());
                let full = kept[bi].len() == widths[bi];
                let mut est = stats.row_count as f64;
                let mut node = PlanNode::Scan {
                    label: base.label.clone(),
                    source: base.source.clone(),
                    cols: if full { None } else { Some(kept[bi].clone()) },
                    total_cols: widths[bi],
                    scope,
                    est,
                };
                // Base-local remap: syntactic index → scan output index.
                let local: HashMap<usize, usize> =
                    kept[bi].iter().enumerate().map(|(pos, &j)| (offsets[bi] + j, pos)).collect();
                for (b, desc) in &pushed[bi] {
                    est = pred_est(b, est, &col_distinct);
                    let Some(pred) = remap_cols(b, &local) else { return Ok(None) };
                    node =
                        PlanNode::Filter { input: Box::new(node), pred, desc: desc.clone(), est };
                }
                nodes.push(Some(node));
                ests.push(est);
            }

            // -- greedy join order ------------------------------------------
            let nb = bases.len();
            let reorder_ok = !has_subquery;
            let mut order: Vec<usize> = Vec::with_capacity(nb);
            if nb > 1 && reorder_ok {
                let mut start = 0;
                for i in 1..nb {
                    if ests[i] < ests[start] {
                        start = i;
                    }
                }
                let mut in_set = vec![false; nb];
                in_set[start] = true;
                order.push(start);
                let mut acc_est = ests[start];
                while order.len() < nb {
                    let mut best: Option<(f64, usize)> = None;
                    for c in 0..nb {
                        if in_set[c] {
                            continue;
                        }
                        let est = join_est(
                            acc_est,
                            ests[c],
                            &edges_between(
                                &edges.iter().map(|e| (e.a, e.b, &e.ab, &e.bb)).collect::<Vec<_>>(),
                                &in_set,
                                c,
                            ),
                            &col_distinct,
                        );
                        if best.is_none_or(|(be, _)| est < be) {
                            best = Some((est, c));
                        }
                    }
                    let Some((est, c)) = best else { return Ok(None) };
                    in_set[c] = true;
                    order.push(c);
                    acc_est = est;
                }
            } else {
                order.extend(0..nb);
            }

            // -- assemble the join tree -------------------------------------
            // acc_map: pruned syntactic index → position in the join output.
            let mut acc_map: HashMap<usize, usize> = HashMap::new();
            let first = order[0];
            for pos in 0..kept[first].len() {
                acc_map.insert(pruned_offsets[first] + pos, pos);
            }
            let Some(mut node) = nodes[first].take() else { return Ok(None) };
            let mut acc_est = ests[first];
            let mut in_set = vec![false; nb];
            in_set[first] = true;
            let mut edge_used = vec![false; edges.len()];
            for &c in &order[1..] {
                let mut lkeys = Vec::new();
                let mut rkeys = Vec::new();
                let mut descs = Vec::new();
                let local: HashMap<usize, usize> =
                    kept[c].iter().enumerate().map(|(pos, &j)| (offsets[c] + j, pos)).collect();
                let mut denom = 1.0f64;
                for (ei, e) in edges.iter().enumerate() {
                    if edge_used[ei] {
                        continue;
                    }
                    let (set_side, c_side) = if e.b == c && in_set[e.a] {
                        (&e.ab, &e.bb)
                    } else if e.a == c && in_set[e.b] {
                        (&e.bb, &e.ab)
                    } else {
                        continue;
                    };
                    // Remap through pruning first, then to positions.
                    let set_pruned = match &map {
                        Some(m) => {
                            let Some(x) = remap_cols(set_side, m) else { return Ok(None) };
                            x
                        }
                        None => set_side.clone(),
                    };
                    let Some(lk) = remap_cols(&set_pruned, &acc_map) else { return Ok(None) };
                    let Some(rk) = remap_cols(c_side, &local) else { return Ok(None) };
                    lkeys.push(lk);
                    rkeys.push(rk);
                    descs.push(e.desc.clone());
                    denom = denom.max(edge_distinct(set_side, c_side, &col_distinct));
                    edge_used[ei] = true;
                }
                let Some(right) = nodes[c].take() else { return Ok(None) };
                let est = if lkeys.is_empty() {
                    acc_est * ests[c]
                } else {
                    (acc_est * ests[c] / denom.max(1.0)).max(0.0)
                };
                let kind = if lkeys.is_empty() { JoinKind::Cross } else { JoinKind::Inner };
                let scope = node.scope().join(right.scope());
                let width = acc_map.len();
                for pos in 0..kept[c].len() {
                    acc_map.insert(pruned_offsets[c] + pos, width + pos);
                }
                node = PlanNode::Join {
                    left: Box::new(node),
                    right: Box::new(right),
                    kind,
                    lkeys,
                    rkeys,
                    cond: None,
                    desc: descs.join(" AND "),
                    scope,
                    est,
                };
                acc_est = est;
                in_set[c] = true;
            }

            // Restore syntactic column order above the join.
            let width = pruned_scope.cols.len();
            let mut perm = Vec::with_capacity(width);
            for i in 0..width {
                let Some(&p) = acc_map.get(&i) else { return Ok(None) };
                perm.push(p);
            }
            if perm.iter().enumerate().any(|(i, &p)| i != p) {
                node =
                    PlanNode::Reorder { input: Box::new(node), perm, scope: pruned_scope.clone() };
            }

            // Residual predicates evaluate on the reordered (syntactic)
            // columns.
            for (b, desc) in &residual {
                let pred = match &map {
                    Some(m) => {
                        let Some(x) = remap_cols(b, m) else { return Ok(None) };
                        x
                    }
                    None => b.clone(),
                };
                let est = sel_est(node.est(), 1);
                node = PlanNode::Filter { input: Box::new(node), pred, desc: desc.clone(), est };
            }
            (node, map)
        }
    };

    // Remap the pre-aggregation expressions through pruning.
    if let Some(m) = &col_map {
        for b in group_bound.iter_mut().chain(proj_bound.iter_mut()).chain(order_bound.iter_mut()) {
            let Some(x) = remap_cols(b, m) else { return Ok(None) };
            *b = x;
        }
        for (a1, a2) in agg_args.iter_mut() {
            for slot in [a1, a2] {
                if let Some(b) = slot {
                    let Some(x) = remap_cols(b, m) else { return Ok(None) };
                    *slot = Some(x);
                }
            }
        }
    }

    // -- aggregation / projection tail --------------------------------------
    let (names, static_types, visible);
    if aggregated {
        let sets: Vec<Vec<usize>> = match &sel.grouping_sets {
            Some(s) => s.clone(),
            None => vec![(0..group_by.len()).collect()],
        };
        // Post-aggregation scope: #g0.. then #a0.. (same as run_select).
        let mut cols = Vec::new();
        for i in 0..group_by.len() {
            cols.push(ScopeCol { qualifier: None, name: format!("#g{i}"), ty: DataType::Unknown });
        }
        for i in 0..aggs.len() {
            cols.push(ScopeCol { qualifier: None, name: format!("#a{i}"), ty: DataType::Unknown });
        }
        let agg_scope = Scope::new(cols);

        let agg_desc = {
            let g = group_by.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ");
            let a = aggs.iter().map(agg_display).collect::<Vec<_>>().join(", ");
            clip(&format!("group=[{g}] aggs=[{a}]"))
        };
        let input_est = input.est();
        let est = agg_est(input_est, &sets);
        let plan_aggs: Vec<PlanAggCall> = aggs
            .iter()
            .zip(agg_args)
            .map(|(call, (arg, arg2))| PlanAggCall {
                name: call.name.clone(),
                distinct: call.distinct,
                arg,
                arg2,
                desc: agg_display(call),
            })
            .collect();
        input = PlanNode::Aggregate {
            input: Box::new(input),
            group: group_bound,
            sets,
            aggs: plan_aggs,
            desc: agg_desc,
            scope: agg_scope.clone(),
            est,
        };

        // HAVING filters aggregate rows before projection.
        let agg_binder = Binder::new(db, &agg_scope);
        if let Some(h) = &sel.having {
            let pred = agg_binder.bind(&rewrite_agg(h, &group_by, &aggs))?;
            let est = sel_est(input.est(), 1);
            input =
                PlanNode::Filter { input: Box::new(input), pred, desc: clip(&h.to_string()), est };
        }

        // Projection and ORDER BY bind against the aggregate scope.
        let rewritten_proj: Vec<(Option<String>, Expr)> = proj
            .iter()
            .map(|(n, e)| {
                (n.clone(), rewrite_agg(&resolve_idx_markers(e, &syn_scope), &group_by, &aggs))
            })
            .collect();
        let pb: Vec<BoundExpr> =
            rewritten_proj.iter().map(|(_, e)| agg_binder.bind(e)).collect::<Result<_>>()?;
        let mut ob: Vec<BoundExpr> = Vec::new();
        for o in order_by {
            if let Expr::Literal(Literal::Int(i)) = &o.expr {
                let idx = *i - 1;
                if idx < 0 || idx as usize >= pb.len() {
                    return Ok(None);
                }
                ob.push(pb[idx as usize].clone());
                continue;
            }
            if let Expr::Column { qualifier: None, name } = &o.expr {
                if let Some(i) =
                    rewritten_proj.iter().position(|(n, _)| n.as_deref() == Some(name.as_str()))
                {
                    ob.push(pb[i].clone());
                    continue;
                }
            }
            ob.push(agg_binder.bind(&rewrite_agg(&o.expr, &group_by, &aggs))?);
        }
        proj_bound = pb;
        order_bound = ob;
        names = output_names(&proj);
        static_types = proj_bound.iter().map(|b| static_type(b, &agg_scope)).collect::<Vec<_>>();
        visible = proj.len();
    } else {
        names = output_names(&proj);
        static_types = proj_bound.iter().map(|b| static_type(b, input.scope())).collect::<Vec<_>>();
        visible = proj.len();
    }

    // Project (visible columns + ORDER BY keys).
    let mut out_cols: Vec<ScopeCol> = names
        .iter()
        .zip(static_types.iter())
        .map(|(n, t)| ScopeCol { qualifier: None, name: n.clone(), ty: t.clone() })
        .collect();
    for i in 0..order_bound.len() {
        out_cols.push(ScopeCol {
            qualifier: None,
            name: format!("#ord{i}"),
            ty: DataType::Unknown,
        });
    }
    let proj_desc = clip(&proj.iter().map(|(_, e)| e.to_string()).collect::<Vec<_>>().join(", "));
    let mut exprs = proj_bound;
    exprs.extend(order_bound);
    input = PlanNode::Project {
        input: Box::new(input),
        exprs,
        visible,
        desc: proj_desc,
        scope: Scope::new(out_cols),
    };

    if sel.distinct {
        input = PlanNode::Distinct { input: Box::new(input), visible };
    }
    if !order_by.is_empty() {
        let desc = clip(
            &order_by
                .iter()
                .map(|o| {
                    let mut s = o.expr.to_string();
                    if o.desc {
                        s.push_str(" DESC");
                    }
                    s
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
        input = PlanNode::Sort { input: Box::new(input), items: order_by.to_vec(), visible, desc };
    }
    if limit_n.is_some() || offset_n.is_some() {
        input = PlanNode::Limit { input: Box::new(input), limit: limit_n, offset: offset_n };
    }

    Ok(Some(PlannedQuery { root: input, names, static_types, visible }))
}

// ---------------------------------------------------------------------------
// FROM analysis
// ---------------------------------------------------------------------------

enum FromShape<'a> {
    Pure { bases: Vec<Base>, offsets: Vec<usize>, syn_scope: Scope, ons: Vec<&'a Expr> },
    General { node: PlanNode, syn_scope: Scope },
}

struct Base {
    label: String,
    source: TableRef,
    scope: Scope,
}

/// Is this FROM element a tree of inner/cross joins over plain
/// primaries (full optimization applies)?
fn is_pure_inner(t: &AstTableRef) -> bool {
    match t {
        AstTableRef::Named { .. } => true,
        AstTableRef::Subquery { lateral, .. } => !lateral,
        AstTableRef::Join { left, right, kind, constraint } => {
            matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && matches!(constraint, JoinConstraint::On(_) | JoinConstraint::None)
                && is_pure_inner(left)
                && is_pure_inner(right)
        }
    }
}

/// Shapes the planner refuses outright.
fn tref_unsupported(t: &AstTableRef) -> bool {
    match t {
        AstTableRef::Named { .. } => false,
        AstTableRef::Subquery { lateral, query, .. } => *lateral || query_has_solve(query),
        AstTableRef::Join { left, right, constraint, .. } => {
            matches!(constraint, JoinConstraint::Using(_))
                || tref_unsupported(left)
                || tref_unsupported(right)
        }
    }
}

/// Flatten a pure-inner tree into `bases` (syntactic order), recording
/// each ON condition with the combined scope of its join node (for
/// validation). Returns false on shapes that cannot be planned.
fn flatten_pure<'a>(
    db: &Database,
    ctes: &Ctes,
    t: &'a AstTableRef,
    bases: &mut Vec<Base>,
    ons: &mut Vec<(&'a Expr, Scope)>,
) -> Result<bool> {
    fn go<'a>(
        db: &Database,
        ctes: &Ctes,
        t: &'a AstTableRef,
        bases: &mut Vec<Base>,
        ons: &mut Vec<(&'a Expr, Scope)>,
    ) -> Result<Option<Scope>> {
        match t {
            AstTableRef::Join { left, right, constraint, .. } => {
                let Some(ls) = go(db, ctes, left, bases, ons)? else { return Ok(None) };
                let Some(rs) = go(db, ctes, right, bases, ons)? else { return Ok(None) };
                let combined = ls.join(&rs);
                if let JoinConstraint::On(e) = constraint {
                    ons.push((e, combined.clone()));
                }
                Ok(Some(combined))
            }
            primary => match materialize_primary(db, ctes, primary)? {
                Some(base) => {
                    let scope = base.scope.clone();
                    bases.push(base);
                    Ok(Some(scope))
                }
                None => Ok(None),
            },
        }
    }
    Ok(go(db, ctes, t, bases, ons)?.is_some())
}

/// Materialize a table primary (named relation or subquery) as an
/// `Arc<Table>` plus its scope — the same resolution order as the row
/// interpreter's `scan_named`: CTEs shadow views shadow tables shadow
/// virtual tables.
fn materialize_primary(db: &Database, ctes: &Ctes, t: &AstTableRef) -> Result<Option<Base>> {
    match t {
        AstTableRef::Named { name, alias } => {
            let qualifier = alias.as_ref().map(|a| a.name.as_str()).unwrap_or(name);
            let (source, mut scope) = if let Some(t) = ctes.get(name) {
                let scope = Scope::from_schema(Some(qualifier), &t.schema);
                (t.clone(), scope)
            } else if let Some(vq) = db.view(name) {
                let t = run_query(db, ctes, vq, None)?;
                let scope = Scope::from_schema(Some(qualifier), &t.schema);
                (Arc::new(t), scope)
            } else {
                match db.table(name) {
                    Ok(t) => {
                        let scope = Scope::from_schema(Some(qualifier), &t.schema);
                        (t.clone(), scope)
                    }
                    Err(e) => match db.virtual_table(name) {
                        Some(t) => {
                            let scope = Scope::from_schema(Some(qualifier), &t.schema);
                            (Arc::new(t), scope)
                        }
                        None => return Err(e),
                    },
                }
            };
            crate::exec::select::apply_alias_columns(&mut scope, alias.as_ref())?;
            Ok(Some(Base { label: name.clone(), source, scope }))
        }
        AstTableRef::Subquery { query, lateral: false, alias } => {
            let t = run_query(db, ctes, query, None)?;
            let qualifier = alias.as_ref().map(|a| a.name.as_str());
            let mut scope = Scope::from_schema(qualifier, &t.schema);
            crate::exec::select::apply_alias_columns(&mut scope, alias.as_ref())?;
            let label =
                alias.as_ref().map(|a| a.name.clone()).unwrap_or_else(|| "(subquery)".to_string());
            Ok(Some(Base { label, source: Arc::new(t), scope }))
        }
        _ => Ok(None),
    }
}

/// Build a plan subtree that mirrors the syntactic join structure
/// (used for outer joins, where reordering/pushdown are unsound).
fn build_syntactic(db: &Database, ctes: &Ctes, t: &AstTableRef) -> Result<Option<PlanNode>> {
    match t {
        AstTableRef::Join { left, right, kind, constraint } => {
            let Some(l) = build_syntactic(db, ctes, left)? else { return Ok(None) };
            let Some(r) = build_syntactic(db, ctes, right)? else { return Ok(None) };
            let combined = l.scope().join(r.scope());
            let (lkeys, rkeys, cond, desc) = match constraint {
                JoinConstraint::Using(_) => return Ok(None),
                JoinConstraint::None => (vec![], vec![], None, String::new()),
                JoinConstraint::On(e) => {
                    let keys = if !matches!(kind, JoinKind::Cross) {
                        try_equi_keys(db, e, l.scope(), r.scope())
                    } else {
                        None
                    };
                    match keys {
                        Some((lk, rk)) => (lk, rk, None, clip(&e.to_string())),
                        None => {
                            let binder = Binder::new(db, &combined);
                            (vec![], vec![], Some(binder.bind(e)?), clip(&e.to_string()))
                        }
                    }
                }
            };
            let (le, re) = (l.est(), r.est());
            let mut est = if lkeys.is_empty() && cond.is_none() {
                le * re
            } else if lkeys.is_empty() {
                le * re / 3.0
            } else {
                le * re / le.max(re).max(1.0)
            };
            if matches!(kind, JoinKind::Left | JoinKind::Full) {
                est = est.max(le);
            }
            if matches!(kind, JoinKind::Right | JoinKind::Full) {
                est = est.max(re);
            }
            Ok(Some(PlanNode::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind: *kind,
                lkeys,
                rkeys,
                cond,
                desc,
                scope: combined,
                est,
            }))
        }
        primary => {
            let Some(base) = materialize_primary(db, ctes, primary)? else { return Ok(None) };
            let stats = db.table_stats(&base.source);
            let total = base.scope.cols.len();
            Ok(Some(PlanNode::Scan {
                label: base.label,
                source: base.source,
                cols: None,
                total_cols: total,
                scope: base.scope,
                est: stats.row_count as f64,
            }))
        }
    }
}

// ---------------------------------------------------------------------------
// Expression analysis helpers
// ---------------------------------------------------------------------------

fn split_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::BinOp { op: crate::types::BinOp::And, lhs, rhs } = e {
        split_and(lhs, out);
        split_and(rhs, out);
    } else {
        out.push(e);
    }
}

fn expr_has_solve(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        found = found
            || matches!(n, Expr::SolveModel(_))
            || match n {
                Expr::ScalarSubquery(q) => query_has_solve(q),
                Expr::InSubquery { query, .. } | Expr::Exists { query, .. } => {
                    query_has_solve(query)
                }
                _ => false,
            };
    });
    found
}

fn expr_has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        found = found
            || matches!(n, Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. });
    });
    found
}

fn select_has_solve(sel: &Select) -> bool {
    sel.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_has_solve(expr),
        SelectItem::Wildcard { .. } => false,
    }) || sel.where_.as_ref().is_some_and(expr_has_solve)
        || sel.having.as_ref().is_some_and(expr_has_solve)
        || sel.group_by.iter().any(expr_has_solve)
        || sel.from.iter().any(tref_has_solve)
}

fn tref_has_solve(t: &AstTableRef) -> bool {
    match t {
        AstTableRef::Named { .. } => false,
        AstTableRef::Subquery { query, .. } => query_has_solve(query),
        AstTableRef::Join { left, right, constraint, .. } => {
            tref_has_solve(left)
                || tref_has_solve(right)
                || matches!(constraint, JoinConstraint::On(e) if expr_has_solve(e))
        }
    }
}

fn query_has_solve(q: &crate::ast::Query) -> bool {
    fn set_expr(s: &SetExpr) -> bool {
        match s {
            SetExpr::Solve(_) => true,
            SetExpr::Select(sel) => select_has_solve(sel),
            SetExpr::Query(q) => query_has_solve(q),
            SetExpr::SetOp { left, right, .. } => set_expr(left) || set_expr(right),
            SetExpr::Values(rows) => rows.iter().flatten().any(expr_has_solve),
        }
    }
    q.with.iter().any(|c| query_has_solve(&c.query))
        || set_expr(&q.body)
        || q.order_by.iter().any(|o| expr_has_solve(&o.expr))
        || q.limit.as_ref().is_some_and(expr_has_solve)
        || q.offset.as_ref().is_some_and(expr_has_solve)
}

/// Does a bound expression contain a subquery (or solve) node? Such
/// expressions bind their subqueries against the runtime scope chain at
/// evaluation time and therefore must not be index-remapped.
pub(crate) fn bound_has_subquery(b: &BoundExpr) -> bool {
    match b {
        BoundExpr::ScalarSubquery(_)
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::SolveModel(_) => true,
        BoundExpr::Const(_) | BoundExpr::Column { .. } => false,
        BoundExpr::BinOp { lhs, rhs, .. } => bound_has_subquery(lhs) || bound_has_subquery(rhs),
        BoundExpr::UnOp { expr, .. } => bound_has_subquery(expr),
        BoundExpr::Chain { first, rest } => {
            bound_has_subquery(first) || rest.iter().any(|(_, e)| bound_has_subquery(e))
        }
        BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
            args.iter().any(bound_has_subquery)
        }
        BoundExpr::Cast { expr, .. } => bound_has_subquery(expr),
        BoundExpr::Case { operand, branches, else_ } => {
            operand.as_deref().is_some_and(bound_has_subquery)
                || branches.iter().any(|(c, r)| bound_has_subquery(c) || bound_has_subquery(r))
                || else_.as_deref().is_some_and(bound_has_subquery)
        }
        BoundExpr::IsNull { expr, .. } => bound_has_subquery(expr),
        BoundExpr::InList { expr, list, .. } => {
            bound_has_subquery(expr) || list.iter().any(bound_has_subquery)
        }
        BoundExpr::Between { expr, low, high, .. } => {
            bound_has_subquery(expr) || bound_has_subquery(low) || bound_has_subquery(high)
        }
        BoundExpr::Like { expr, pattern, .. } => {
            bound_has_subquery(expr) || bound_has_subquery(pattern)
        }
    }
}

/// Collect all depth-0 column indices referenced by a bound expression.
pub(crate) fn collect_cols(b: &BoundExpr, out: &mut Vec<usize>) {
    match b {
        BoundExpr::Column { depth: 0, index } => out.push(*index),
        BoundExpr::Column { .. } | BoundExpr::Const(_) => {}
        BoundExpr::BinOp { lhs, rhs, .. } => {
            collect_cols(lhs, out);
            collect_cols(rhs, out);
        }
        BoundExpr::UnOp { expr, .. } => collect_cols(expr, out),
        BoundExpr::Chain { first, rest } => {
            collect_cols(first, out);
            for (_, e) in rest {
                collect_cols(e, out);
            }
        }
        BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
            for a in args {
                collect_cols(a, out);
            }
        }
        BoundExpr::Cast { expr, .. } => collect_cols(expr, out),
        BoundExpr::Case { operand, branches, else_ } => {
            if let Some(o) = operand {
                collect_cols(o, out);
            }
            for (c, r) in branches {
                collect_cols(c, out);
                collect_cols(r, out);
            }
            if let Some(e) = else_ {
                collect_cols(e, out);
            }
        }
        BoundExpr::IsNull { expr, .. } => collect_cols(expr, out),
        BoundExpr::InList { expr, list, .. } => {
            collect_cols(expr, out);
            for e in list {
                collect_cols(e, out);
            }
        }
        BoundExpr::Between { expr, low, high, .. } => {
            collect_cols(expr, out);
            collect_cols(low, out);
            collect_cols(high, out);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            collect_cols(expr, out);
            collect_cols(pattern, out);
        }
        BoundExpr::ScalarSubquery(_)
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::SolveModel(_) => {}
    }
}

/// Rewrite depth-0 column indices through `map`. Returns `None` when a
/// column is missing from the map or the expression contains a subquery
/// (those must never be remapped).
pub(crate) fn remap_cols(b: &BoundExpr, map: &HashMap<usize, usize>) -> Option<BoundExpr> {
    Some(match b {
        BoundExpr::Column { depth: 0, index } => {
            BoundExpr::Column { depth: 0, index: *map.get(index)? }
        }
        BoundExpr::Column { .. } => return None,
        BoundExpr::Const(v) => BoundExpr::Const(v.clone()),
        BoundExpr::BinOp { op, lhs, rhs } => BoundExpr::BinOp {
            op: *op,
            lhs: Box::new(remap_cols(lhs, map)?),
            rhs: Box::new(remap_cols(rhs, map)?),
        },
        BoundExpr::UnOp { op, expr } => {
            BoundExpr::UnOp { op: *op, expr: Box::new(remap_cols(expr, map)?) }
        }
        BoundExpr::Chain { first, rest } => BoundExpr::Chain {
            first: Box::new(remap_cols(first, map)?),
            rest: rest
                .iter()
                .map(|(op, e)| remap_cols(e, map).map(|e| (*op, e)))
                .collect::<Option<Vec<_>>>()?,
        },
        BoundExpr::Builtin { f, args } => BoundExpr::Builtin {
            f,
            args: args.iter().map(|a| remap_cols(a, map)).collect::<Option<Vec<_>>>()?,
        },
        BoundExpr::Udf { udf, args } => BoundExpr::Udf {
            udf: udf.clone(),
            args: args.iter().map(|a| remap_cols(a, map)).collect::<Option<Vec<_>>>()?,
        },
        BoundExpr::Cast { expr, ty } => {
            BoundExpr::Cast { expr: Box::new(remap_cols(expr, map)?), ty: ty.clone() }
        }
        BoundExpr::Case { operand, branches, else_ } => BoundExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(remap_cols(o, map)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(c, r)| Some((remap_cols(c, map)?, remap_cols(r, map)?)))
                .collect::<Option<Vec<_>>>()?,
            else_: match else_ {
                Some(e) => Some(Box::new(remap_cols(e, map)?)),
                None => None,
            },
        },
        BoundExpr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(remap_cols(expr, map)?), negated: *negated }
        }
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(remap_cols(expr, map)?),
            list: list.iter().map(|e| remap_cols(e, map)).collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(remap_cols(expr, map)?),
            low: Box::new(remap_cols(low, map)?),
            high: Box::new(remap_cols(high, map)?),
            negated: *negated,
        },
        BoundExpr::Like { expr, pattern, negated, case_insensitive, compiled } => BoundExpr::Like {
            expr: Box::new(remap_cols(expr, map)?),
            pattern: Box::new(remap_cols(pattern, map)?),
            negated: *negated,
            case_insensitive: *case_insensitive,
            compiled: compiled.clone(),
        },
        BoundExpr::ScalarSubquery(_)
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::SolveModel(_) => return None,
    })
}

// ---------------------------------------------------------------------------
// Cardinality helpers
// ---------------------------------------------------------------------------

/// Generic predicate selectivity: one third per conjunct, floored at one
/// row for non-empty inputs.
fn sel_est(input: f64, conjuncts: usize) -> f64 {
    if input <= 0.0 {
        return 0.0;
    }
    (input / 3.0f64.powi(conjuncts as i32)).max(1.0)
}

/// Filter estimate for a pushed predicate; equality with a constant uses
/// the column's distinct count.
fn pred_est(b: &BoundExpr, input: f64, col_distinct: &dyn Fn(usize) -> Option<f64>) -> f64 {
    if input <= 0.0 {
        return 0.0;
    }
    if let BoundExpr::BinOp { op: crate::types::BinOp::Eq, lhs, rhs } = b {
        let col = match (lhs.as_ref(), rhs.as_ref()) {
            (BoundExpr::Column { depth: 0, index }, BoundExpr::Const(_))
            | (BoundExpr::Const(_), BoundExpr::Column { depth: 0, index }) => Some(*index),
            _ => None,
        };
        if let Some(c) = col {
            if let Some(d) = col_distinct(c) {
                return (input / d.max(1.0)).max(1.0);
            }
        }
    }
    sel_est(input, 1)
}

/// Distinct estimate for one equi-edge: the larger side's key distinct
/// count (standard |L||R|/max(dL,dR) formula).
fn edge_distinct(a: &BoundExpr, b: &BoundExpr, col_distinct: &dyn Fn(usize) -> Option<f64>) -> f64 {
    let side = |e: &BoundExpr| -> f64 {
        if let BoundExpr::Column { depth: 0, index } = e {
            col_distinct(*index).unwrap_or(1.0)
        } else {
            1.0
        }
    };
    side(a).max(side(b))
}

fn edges_between<'a>(
    edges: &[(usize, usize, &'a BoundExpr, &'a BoundExpr)],
    in_set: &[bool],
    c: usize,
) -> Vec<(&'a BoundExpr, &'a BoundExpr)> {
    edges
        .iter()
        .filter_map(|&(a, b, ab, bb)| {
            if a == c && in_set[b] {
                Some((bb, ab))
            } else if b == c && in_set[a] {
                Some((ab, bb))
            } else {
                None
            }
        })
        .collect()
}

fn join_est(
    acc: f64,
    cand: f64,
    edges: &[(&BoundExpr, &BoundExpr)],
    col_distinct: &dyn Fn(usize) -> Option<f64>,
) -> f64 {
    if edges.is_empty() {
        return acc * cand;
    }
    let mut denom = 1.0f64;
    for (a, b) in edges {
        denom = denom.max(edge_distinct(a, b, col_distinct));
    }
    (acc * cand / denom.max(1.0)).max(0.0)
}

/// Aggregate output estimate: one row per grouping set at minimum,
/// bounded by the input size per set.
fn agg_est(input: f64, sets: &[Vec<usize>]) -> f64 {
    let per_set = |set: &Vec<usize>| -> f64 {
        if set.is_empty() {
            1.0
        } else {
            (input / 2.0).max(1.0).min(input.max(1.0))
        }
    };
    sets.iter().map(per_set).sum::<f64>().max(1.0)
}

// ---------------------------------------------------------------------------
// Display helpers
// ---------------------------------------------------------------------------

fn agg_display(call: &AggCall) -> String {
    let arg = match &call.arg {
        Some(e) => e.to_string(),
        None => "*".to_string(),
    };
    if call.distinct {
        format!("{}(DISTINCT {})", call.name, arg)
    } else {
        format!("{}({})", call.name, arg)
    }
}

fn output_names(proj: &[(Option<String>, Expr)]) -> Vec<String> {
    proj.iter()
        .enumerate()
        .map(|(i, (n, _))| n.clone().unwrap_or_else(|| format!("column{}", i + 1)))
        .collect()
}

/// Clip a display string for EXPLAIN output.
fn clip(s: &str) -> String {
    const MAX: usize = 64;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let mut out: String = s.chars().take(MAX).collect();
        out.push('\u{2026}');
        out
    }
}
