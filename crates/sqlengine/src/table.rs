//! In-memory tables: schema + row storage.

use crate::error::{Error, Result};
use crate::types::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column { name: name.into(), ty }
    }
}

/// A table schema. Column names are stored as written (the lexer already
/// folds unquoted identifiers to lower case); lookups are exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn from_names(names: &[&str]) -> Schema {
        Schema { columns: names.iter().map(|n| Column::new(*n, DataType::Unknown)).collect() }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// An in-memory table (also used for intermediate results).
/// Equality is structural over schema and rows (with [`Value`]'s
/// numeric cross-type semantics), used by tests and the wire codec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(schema: Schema) -> Table {
        Table { schema, rows: Vec::new() }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Row>) -> Table {
        Table { schema, rows }
    }

    /// Build a table from column names and rows of convertible values —
    /// a test/datagen convenience.
    pub fn from_rows(names: &[&str], rows: Vec<Row>) -> Table {
        let mut schema = Schema::from_names(names);
        // Infer column types from the first non-null value per column.
        for (i, col) in schema.columns.iter_mut().enumerate() {
            for row in &rows {
                if let Some(v) = row.get(i) {
                    if !v.is_null() {
                        col.ty = v.data_type();
                        break;
                    }
                }
            }
        }
        Table { schema, rows }
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Append a row, coercing each value to the column's declared type
    /// (Unknown columns accept anything).
    pub fn push_coerced(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::eval(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            out.push(coerce(v, &col.ty)?);
        }
        self.rows.push(out);
        Ok(())
    }

    /// Fetch a single value (row-major); test convenience.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Fetch by column name; test convenience.
    pub fn value_by_name(&self, row: usize, name: &str) -> Result<&Value> {
        let idx =
            self.schema.index_of(name).ok_or_else(|| Error::bind(format!("no column '{name}'")))?;
        Ok(&self.rows[row][idx])
    }

    /// The single value of a 1×1 table (scalar subquery result shape).
    pub fn scalar(&self) -> Result<Value> {
        if self.num_columns() != 1 {
            return Err(Error::eval(format!(
                "expected a single column, got {}",
                self.num_columns()
            )));
        }
        match self.rows.len() {
            0 => Ok(Value::Null),
            1 => Ok(self.rows[0][0].clone()),
            n => Err(Error::eval(format!("expected at most one row, got {n}"))),
        }
    }

    /// Extract one column as a vector.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        let idx =
            self.schema.index_of(name).ok_or_else(|| Error::bind(format!("no column '{name}'")))?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }
}

/// Coerce a value to a column type on storage (mirrors PostgreSQL's
/// assignment casts: numeric widening/narrowing and text parsing).
pub fn coerce(v: Value, ty: &DataType) -> Result<Value> {
    if v.is_null() || *ty == DataType::Unknown || v.data_type() == *ty {
        return Ok(v);
    }
    v.cast(ty)
}

impl fmt::Display for Table {
    /// Render as an aligned text table (for examples and debugging).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.columns.iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Shared handle used throughout execution.
pub type TableRef = Arc<Table>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_infers_types() {
        let t = Table::from_rows(
            &["a", "b"],
            vec![vec![Value::Null, Value::text("x")], vec![Value::Int(2), Value::text("y")]],
        );
        assert_eq!(t.schema.columns[0].ty, DataType::Int);
        assert_eq!(t.schema.columns[1].ty, DataType::Text);
    }

    #[test]
    fn push_coerced_casts() {
        let mut t = Table::new(Schema::new(vec![
            Column::new("a", DataType::Float),
            Column::new("b", DataType::Text),
        ]));
        t.push_coerced(vec![Value::Int(1), Value::Int(7)]).unwrap();
        assert_eq!(t.rows[0][0], Value::Float(1.0));
        assert_eq!(t.rows[0][1], Value::text("7"));
        assert!(t.push_coerced(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn scalar_shapes() {
        let t = Table::from_rows(&["x"], vec![vec![Value::Int(5)]]);
        assert_eq!(t.scalar().unwrap(), Value::Int(5));
        let empty = Table::from_rows(&["x"], vec![]);
        assert!(empty.scalar().unwrap().is_null());
        let two = Table::from_rows(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert!(two.scalar().is_err());
        let wide = Table::from_rows(&["x", "y"], vec![]);
        assert!(wide.scalar().is_err());
    }

    #[test]
    fn display_renders_grid() {
        let t = Table::from_rows(&["id", "name"], vec![vec![Value::Int(1), Value::text("aa")]]);
        let s = t.to_string();
        assert!(s.contains("| id | name |"));
        assert!(s.contains("| 1  | aa   |"));
    }
}
