//! Per-statement read/write set extraction.
//!
//! The whole-script analyzer reasons about statements purely through the
//! relation names they touch. This module walks a [`Statement`] and
//! collects four sets:
//!
//! * `reads` — relations the statement consumes when it executes,
//! * `lazy_reads` — relations a `CREATE VIEW` definition references
//!   (views are stored unevaluated, so these are only *read* when the
//!   view itself is read; they still order statements in the DAG),
//! * `writes` — existing relations the statement mutates in place
//!   (`INSERT`/`UPDATE`/`DELETE` targets),
//! * `creates` / `drops` — relations brought into or removed from the
//!   catalog.
//!
//! Names bound locally — CTEs, solve aliases (`D₁..D_N`, `INLINE`
//! aliases), subquery aliases — are excluded via a scope set that is
//! deliberately over-approximate (every alias of a solve statement is
//! visible in all of its queries): binding too much can at worst hide a
//! read, never invent one, so the cross-statement checks stay free of
//! false positives.

use crate::ast::{Expr, Query, SetExpr, SolveStmt, Statement, TableRef};
use std::collections::{BTreeSet, HashSet};

/// The relation footprint of one statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    pub reads: BTreeSet<String>,
    /// View-definition reads: deferred until the view is read, but still
    /// dependency-ordering for the DAG.
    pub lazy_reads: BTreeSet<String>,
    pub writes: BTreeSet<String>,
    pub creates: BTreeSet<String>,
    pub drops: BTreeSet<String>,
}

impl RwSet {
    /// Every relation this statement writes in the broad sense: mutates,
    /// creates, or drops.
    pub fn touched(&self) -> BTreeSet<String> {
        self.writes.iter().chain(self.creates.iter()).chain(self.drops.iter()).cloned().collect()
    }

    /// Every relation read either eagerly or through a stored view
    /// definition.
    pub fn all_reads(&self) -> BTreeSet<String> {
        self.reads.union(&self.lazy_reads).cloned().collect()
    }

    /// True when `self` and `other` commute: neither reads what the
    /// other writes, and their write sets are disjoint.
    pub fn independent(&self, other: &RwSet) -> bool {
        let (wa, wb) = (self.touched(), other.touched());
        wa.is_disjoint(&other.all_reads())
            && wb.is_disjoint(&self.all_reads())
            && wa.is_disjoint(&wb)
    }
}

/// Short display label for a statement ("CREATE TABLE", "SOLVESELECT", ...).
pub fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Query(q) => {
            if contains_solve(&q.body) {
                "SOLVESELECT"
            } else {
                "SELECT"
            }
        }
        Statement::Solve(_) => "SOLVESELECT",
        Statement::Explain { .. } | Statement::ExplainQuery { .. } => "EXPLAIN",
        Statement::ExplainScript { .. } => "EXPLAIN SCRIPT",
        Statement::ModelEval { .. } => "MODELEVAL",
        Statement::Insert { .. } => "INSERT",
        Statement::Update { .. } => "UPDATE",
        Statement::Delete { .. } => "DELETE",
        Statement::CreateTable { as_query: Some(_), .. } => "CREATE TABLE AS",
        Statement::CreateTable { .. } => "CREATE TABLE",
        Statement::CreateView { .. } => "CREATE VIEW",
        Statement::DropTable { .. } => "DROP TABLE",
        Statement::DropView { .. } => "DROP VIEW",
        Statement::Checkpoint => "CHECKPOINT",
        Statement::Set { .. } => "SET",
        Statement::Cancel { .. } => "CANCEL",
    }
}

fn contains_solve(body: &SetExpr) -> bool {
    match body {
        SetExpr::Solve(_) => true,
        SetExpr::Query(q) => contains_solve(&q.body),
        SetExpr::SetOp { left, right, .. } => contains_solve(left) || contains_solve(right),
        SetExpr::Select(_) | SetExpr::Values(_) => false,
    }
}

/// Compute the relation footprint of a statement.
pub fn statement_rwset(stmt: &Statement) -> RwSet {
    let mut rw = RwSet::default();
    let bound = HashSet::new();
    match stmt {
        Statement::Query(q) => query_reads(q, &bound, &mut rw.reads),
        Statement::ExplainQuery { query, .. } => query_reads(query, &bound, &mut rw.reads),
        Statement::Solve(s) => solve_reads(s, &bound, &mut rw.reads),
        Statement::Explain { stmt, .. } => solve_reads(stmt, &bound, &mut rw.reads),
        Statement::ExplainScript { .. } => {}
        Statement::ModelEval { select, model } => {
            query_reads(select, &bound, &mut rw.reads);
            query_reads(model, &bound, &mut rw.reads);
        }
        Statement::Insert { table, source, .. } => {
            rw.writes.insert(table.clone());
            query_reads(source, &bound, &mut rw.reads);
        }
        Statement::Update { table, assignments, where_ } => {
            rw.writes.insert(table.clone());
            rw.reads.insert(table.clone());
            for (_, e) in assignments {
                expr_reads(e, &bound, &mut rw.reads);
            }
            if let Some(w) = where_ {
                expr_reads(w, &bound, &mut rw.reads);
            }
        }
        Statement::Delete { table, where_ } => {
            rw.writes.insert(table.clone());
            rw.reads.insert(table.clone());
            if let Some(w) = where_ {
                expr_reads(w, &bound, &mut rw.reads);
            }
        }
        Statement::CreateTable { name, as_query, .. } => {
            rw.creates.insert(name.clone());
            if let Some(q) = as_query {
                query_reads(q, &bound, &mut rw.reads);
            }
        }
        Statement::CreateView { name, query, .. } => {
            rw.creates.insert(name.clone());
            query_reads(query, &bound, &mut rw.lazy_reads);
        }
        Statement::DropTable { name, .. } => {
            rw.drops.insert(name.clone());
        }
        Statement::DropView { name, .. } => {
            rw.drops.insert(name.clone());
        }
        Statement::Checkpoint => {}
        // Session-control statements touch no relations.
        Statement::Set { .. } | Statement::Cancel { .. } => {}
    }
    rw
}

/// Collect every `SOLVESELECT`/`SOLVEMODEL` that this statement would
/// *execute* (not merely package as a model value), paired with a short
/// context label. Used by the statically-empty-input check (SD018).
pub fn executed_solves(stmt: &Statement) -> Vec<&SolveStmt> {
    let mut out = Vec::new();
    match stmt {
        Statement::Solve(s) => out.push(s),
        Statement::Query(q) => body_solves(&q.body, &mut out),
        Statement::Insert { source, .. } => body_solves(&source.body, &mut out),
        Statement::CreateTable { as_query: Some(q), .. } => body_solves(&q.body, &mut out),
        _ => {}
    }
    out
}

fn body_solves<'a>(body: &'a SetExpr, out: &mut Vec<&'a SolveStmt>) {
    match body {
        SetExpr::Solve(s) => out.push(s),
        SetExpr::Query(q) => body_solves(&q.body, out),
        SetExpr::SetOp { left, right, .. } => {
            body_solves(left, out);
            body_solves(right, out);
        }
        SetExpr::Select(_) | SetExpr::Values(_) => {}
    }
}

/// Relation names read by a query, excluding names in `bound`.
pub fn query_reads(q: &Query, bound: &HashSet<String>, out: &mut BTreeSet<String>) {
    let mut b = bound.clone();
    if q.recursive {
        for cte in &q.with {
            b.insert(cte.name.clone());
        }
    }
    for cte in &q.with {
        query_reads(&cte.query, &b, out);
        b.insert(cte.name.clone());
    }
    body_reads(&q.body, &b, out);
    for o in &q.order_by {
        expr_reads(&o.expr, &b, out);
    }
    if let Some(l) = &q.limit {
        expr_reads(l, &b, out);
    }
    if let Some(o) = &q.offset {
        expr_reads(o, &b, out);
    }
}

fn body_reads(body: &SetExpr, bound: &HashSet<String>, out: &mut BTreeSet<String>) {
    match body {
        SetExpr::Select(s) => {
            for t in &s.from {
                tableref_reads(t, bound, out);
            }
            for item in &s.projection {
                if let crate::ast::SelectItem::Expr { expr, .. } = item {
                    expr_reads(expr, bound, out);
                }
            }
            if let Some(w) = &s.where_ {
                expr_reads(w, bound, out);
            }
            for g in &s.group_by {
                expr_reads(g, bound, out);
            }
            if let Some(h) = &s.having {
                expr_reads(h, bound, out);
            }
        }
        SetExpr::Solve(s) => solve_reads(s, bound, out),
        SetExpr::Query(q) => query_reads(q, bound, out),
        SetExpr::SetOp { left, right, .. } => {
            body_reads(left, bound, out);
            body_reads(right, bound, out);
        }
        SetExpr::Values(rows) => {
            for row in rows {
                for e in row {
                    expr_reads(e, bound, out);
                }
            }
        }
    }
}

fn tableref_reads(t: &TableRef, bound: &HashSet<String>, out: &mut BTreeSet<String>) {
    match t {
        TableRef::Named { name, .. } => {
            if !bound.contains(name) {
                out.insert(name.clone());
            }
        }
        TableRef::Subquery { query, .. } => query_reads(query, bound, out),
        TableRef::Join { left, right, constraint, .. } => {
            tableref_reads(left, bound, out);
            tableref_reads(right, bound, out);
            if let crate::ast::JoinConstraint::On(e) = constraint {
                expr_reads(e, bound, out);
            }
        }
    }
}

/// Reads of a solve statement. All aliases (input, CDTEs, inlines) are
/// bound across every sub-query — over-approximate on purpose.
pub fn solve_reads(s: &SolveStmt, bound: &HashSet<String>, out: &mut BTreeSet<String>) {
    let mut b = bound.clone();
    for a in std::iter::once(&s.input.alias)
        .chain(s.ctes.iter().map(|c| &c.alias))
        .chain(s.inlines.iter().map(|i| &i.alias))
        .flatten()
    {
        b.insert(a.clone());
    }
    query_reads(&s.input.query, &b, out);
    for inl in &s.inlines {
        query_reads(&inl.query, &b, out);
    }
    for cte in &s.ctes {
        query_reads(&cte.query, &b, out);
    }
    if let Some(m) = &s.minimize {
        query_reads(m, &b, out);
    }
    if let Some(m) = &s.maximize {
        query_reads(m, &b, out);
    }
    for rule in &s.subjectto {
        query_reads(&rule.query, &b, out);
    }
    if let Some(u) = &s.using {
        for (_, e) in &u.params {
            expr_reads(e, &b, out);
        }
    }
}

/// Reads hidden in expression-level subqueries (`IN (SELECT ...)`,
/// `EXISTS`, scalar subqueries, `SOLVEMODEL` values).
pub fn expr_reads(e: &Expr, bound: &HashSet<String>, out: &mut BTreeSet<String>) {
    e.walk(&mut |n| match n {
        Expr::InSubquery { query, .. } | Expr::Exists { query, .. } => {
            query_reads(query, bound, out)
        }
        Expr::ScalarSubquery(q) => query_reads(q, bound, out),
        Expr::SolveModel(s) => solve_reads(s, bound, out),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn rw(sql: &str) -> RwSet {
        statement_rwset(&parse_statement(sql).expect("parse"))
    }

    #[test]
    fn select_reads_tables_not_ctes() {
        let s = rw("WITH c AS (SELECT * FROM t) SELECT * FROM c JOIN u ON c.x = u.x");
        assert_eq!(s.reads, ["t", "u"].iter().map(|s| s.to_string()).collect());
        assert!(s.touched().is_empty());
    }

    #[test]
    fn insert_reads_source_writes_target() {
        let s = rw("INSERT INTO t SELECT * FROM src WHERE x IN (SELECT x FROM other)");
        assert!(s.writes.contains("t"));
        assert!(s.reads.contains("src") && s.reads.contains("other"));
    }

    #[test]
    fn ctas_creates_and_reads() {
        let s = rw("CREATE TABLE out AS SELECT * FROM base");
        assert!(s.creates.contains("out"));
        assert!(s.reads.contains("base"));
    }

    #[test]
    fn view_reads_are_lazy() {
        let s = rw("CREATE VIEW v AS SELECT * FROM base");
        assert!(s.creates.contains("v"));
        assert!(s.lazy_reads.contains("base") && !s.reads.contains("base"));
    }

    #[test]
    fn solve_aliases_are_bound() {
        let s = rw("SOLVESELECT t(x) AS (SELECT * FROM input) \
                    WITH u(y) AS (SELECT * FROM aux) \
                    MINIMIZE (SELECT sum(x) FROM t) \
                    SUBJECTTO (SELECT x >= y FROM t, u) \
                    USING solverlp()");
        assert_eq!(s.reads, ["aux", "input"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn independence_is_symmetric_and_conflicts_detected() {
        let a = rw("INSERT INTO t VALUES (1)");
        let b = rw("SELECT * FROM t");
        let c = rw("SELECT * FROM u");
        assert!(!a.independent(&b) && !b.independent(&a));
        assert!(a.independent(&c) && c.independent(&a));
    }

    #[test]
    fn update_delete_read_and_write_target() {
        let s = rw("UPDATE t SET x = (SELECT max(y) FROM m) WHERE x < 0");
        assert!(s.writes.contains("t") && s.reads.contains("t") && s.reads.contains("m"));
        let d = rw("DELETE FROM t WHERE x IN (SELECT x FROM dead)");
        assert!(d.writes.contains("t") && d.reads.contains("dead"));
    }
}
