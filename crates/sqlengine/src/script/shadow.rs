//! The statically derived catalog state ("shadow catalog").
//!
//! As the script analyzer steps through statements it maintains, per
//! relation name, what is *statically known* about that relation at that
//! point: whether it exists, its (possibly partial) schema, a row-count
//! estimate, and — where every inserted value was a numeric literal —
//! per-column value intervals in the spirit of the presolve interval
//! domain. Everything here is conservative: `None`/`Unknown` means
//! "cannot tell", and downstream checks stay silent rather than guess.

use crate::ast::{Expr, Literal, Query, Select, SelectItem, SetExpr, Statement, TableRef};
use crate::types::{BinOp, DataType};
use std::collections::HashMap;
use std::sync::Arc;

/// What kind of relation a shadow entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    Table,
    View,
    /// A name the script reads but never creates: assumed to exist in
    /// the session catalog at run time (never diagnosed).
    External,
}

/// One column of a derived schema. Either component may be unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedCol {
    pub name: Option<String>,
    pub ty: Option<DataType>,
}

/// Statically derived row count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowEstimate {
    Known(usize),
    Unknown,
}

/// Inclusive numeric interval for a column, derived from literal
/// `INSERT ... VALUES` rows. `nullable` records whether a `NULL` was
/// ever inserted (NULLs never satisfy a comparison, so they do not
/// widen the interval but are tracked for honesty in messages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColRange {
    pub lo: f64,
    pub hi: f64,
    pub nullable: bool,
}

/// Everything statically known about one relation at one script point.
#[derive(Debug, Clone)]
pub struct DerivedRel {
    pub kind: RelKind,
    pub schema: Option<Vec<DerivedCol>>,
    pub rows: RowEstimate,
    /// Statement index (0-based) that created it; `None` = pre-existing.
    pub created_at: Option<usize>,
    /// Statement index that dropped it, when dropped and not recreated.
    pub dropped_at: Option<usize>,
    /// Set once any later statement reads it (directly or through a view).
    pub ever_read: bool,
    /// For views: the stored defining query.
    pub view_def: Option<Arc<Query>>,
    /// Literal-derived per-column intervals; `None` = intervals lost.
    pub ranges: Option<HashMap<String, ColRange>>,
}

impl DerivedRel {
    pub fn external() -> DerivedRel {
        DerivedRel {
            kind: RelKind::External,
            schema: None,
            rows: RowEstimate::Unknown,
            created_at: None,
            dropped_at: None,
            ever_read: false,
            view_def: None,
            ranges: None,
        }
    }

    pub fn is_dropped(&self) -> bool {
        self.dropped_at.is_some()
    }

    /// Column names, when the whole schema is known by name.
    pub fn column_names(&self) -> Option<Vec<&str>> {
        let schema = self.schema.as_ref()?;
        schema.iter().map(|c| c.name.as_deref()).collect()
    }
}

/// The shadow catalog: name → derived state. Plain map plus the handful
/// of transition helpers the checks need.
#[derive(Debug, Clone, Default)]
pub struct ShadowCatalog {
    pub rels: HashMap<String, DerivedRel>,
}

impl ShadowCatalog {
    pub fn get(&self, name: &str) -> Option<&DerivedRel> {
        self.rels.get(name)
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut DerivedRel> {
        self.rels.get_mut(name)
    }

    /// Record a read of `name`, materializing an external entry for
    /// never-created names.
    pub fn mark_read(&mut self, name: &str) {
        self.rels.entry(name.to_string()).or_insert_with(DerivedRel::external).ever_read = true;
    }

    /// Apply the catalog effects of `stmt` (index `idx`) to the shadow
    /// state. Diagnostics never happen here — this is pure transition.
    pub fn apply(&mut self, idx: usize, stmt: &Statement) {
        match stmt {
            Statement::CreateTable { name, if_not_exists, columns, as_query } => {
                if *if_not_exists
                    && self
                        .rels
                        .get(name)
                        .is_some_and(|r| !r.is_dropped() && r.kind != RelKind::External)
                {
                    return; // no-op create; keep the known state
                }
                let (schema, rows) = match as_query {
                    None => (
                        Some(
                            columns
                                .iter()
                                .map(|c| DerivedCol {
                                    name: Some(c.name.clone()),
                                    ty: Some(c.ty.clone()),
                                })
                                .collect(),
                        ),
                        RowEstimate::Known(0),
                    ),
                    Some(q) => (
                        derive_schema(q, self),
                        insert_row_count(q).map_or(RowEstimate::Unknown, RowEstimate::Known),
                    ),
                };
                self.rels.insert(
                    name.clone(),
                    DerivedRel {
                        kind: RelKind::Table,
                        schema,
                        rows,
                        created_at: Some(idx),
                        dropped_at: None,
                        ever_read: false,
                        view_def: None,
                        ranges: Some(HashMap::new()),
                    },
                );
            }
            Statement::CreateView { name, query, .. } => {
                self.rels.insert(
                    name.clone(),
                    DerivedRel {
                        kind: RelKind::View,
                        schema: derive_schema(query, self),
                        rows: RowEstimate::Unknown,
                        created_at: Some(idx),
                        dropped_at: None,
                        ever_read: false,
                        view_def: Some(Arc::new(query.clone())),
                        ranges: None,
                    },
                );
            }
            Statement::DropTable { name, .. } | Statement::DropView { name, .. } => {
                if let Some(rel) = self.rels.get_mut(name) {
                    rel.dropped_at = Some(idx);
                } else {
                    // Dropping an external relation: remember it is gone.
                    let mut rel = DerivedRel::external();
                    rel.dropped_at = Some(idx);
                    self.rels.insert(name.clone(), rel);
                }
            }
            Statement::Insert { table, columns, source } => {
                let added = insert_row_count(source);
                let literal_rows = literal_values_rows(source);
                if let Some(rel) = self.rels.get_mut(table) {
                    rel.rows = match (rel.rows, added) {
                        (RowEstimate::Known(n), Some(m)) => RowEstimate::Known(n + m),
                        _ => RowEstimate::Unknown,
                    };
                    // Interval update: only full-width literal inserts
                    // keep the ranges sound; anything else drops them.
                    match (&literal_rows, columns.is_empty(), &rel.schema) {
                        (Some(rows), true, Some(schema)) => {
                            merge_literal_ranges(rel, rows, schema.clone())
                        }
                        _ => rel.ranges = None,
                    }
                }
            }
            Statement::Update { table, assignments, .. } => {
                if let Some(rel) = self.rels.get_mut(table) {
                    if let Some(ranges) = rel.ranges.as_mut() {
                        for (col, _) in assignments {
                            ranges.remove(col);
                        }
                    }
                }
            }
            Statement::Delete { table, where_ } => {
                if let Some(rel) = self.rels.get_mut(table) {
                    match where_ {
                        None => {
                            rel.rows = RowEstimate::Known(0);
                            rel.ranges = Some(HashMap::new());
                        }
                        // Deleting rows can only shrink intervals; keep
                        // them (they stay a sound over-approximation).
                        Some(_) => rel.rows = RowEstimate::Unknown,
                    }
                }
            }
            _ => {}
        }
    }
}

fn merge_literal_ranges(rel: &mut DerivedRel, rows: &[Vec<Literal>], schema: Vec<DerivedCol>) {
    let Some(ranges) = rel.ranges.as_mut() else { return };
    if rows.iter().any(|r| r.len() != schema.len()) {
        rel.ranges = None; // arity mismatch: SD015 territory, intervals moot
        return;
    }
    for (ci, col) in schema.iter().enumerate() {
        let Some(name) = col.name.clone() else { continue };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut nullable = false;
        let mut numeric = true;
        for row in rows {
            match &row[ci] {
                Literal::Int(i) => {
                    lo = lo.min(*i as f64);
                    hi = hi.max(*i as f64);
                }
                Literal::Float(x) => {
                    lo = lo.min(*x);
                    hi = hi.max(*x);
                }
                Literal::Null => nullable = true,
                _ => numeric = false,
            }
        }
        if !numeric {
            ranges.remove(&name);
            continue;
        }
        let entry = ranges.entry(name).or_insert(ColRange { lo, hi, nullable });
        entry.lo = entry.lo.min(lo);
        entry.hi = entry.hi.max(hi);
        entry.nullable |= nullable;
    }
}

/// Number of rows a query contributes, when statically countable.
fn insert_row_count(q: &Query) -> Option<usize> {
    if q.limit.is_some() || q.offset.is_some() {
        return None;
    }
    body_row_count(&q.body)
}

fn body_row_count(body: &SetExpr) -> Option<usize> {
    match body {
        SetExpr::Values(rows) => Some(rows.len()),
        SetExpr::Query(q) => insert_row_count(q),
        SetExpr::Select(s)
            if s.from.is_empty()
                && s.where_.is_none()
                && s.group_by.is_empty()
                && s.having.is_none()
                && !s.distinct =>
        {
            Some(1) // SELECT <exprs> with no FROM yields exactly one row
        }
        _ => None,
    }
}

/// When the source is a plain `VALUES` of literals, return its rows.
fn literal_values_rows(q: &Query) -> Option<Vec<Vec<Literal>>> {
    if !q.with.is_empty() || q.limit.is_some() || q.offset.is_some() {
        return None;
    }
    let SetExpr::Values(rows) = &q.body else { return None };
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|e| match e {
                    Expr::Literal(l) => Some(l.clone()),
                    Expr::UnOp { op: crate::types::UnOp::Neg, expr } => match expr.as_ref() {
                        Expr::Literal(Literal::Int(i)) => Some(Literal::Int(-i)),
                        Expr::Literal(Literal::Float(x)) => Some(Literal::Float(-x)),
                        _ => None,
                    },
                    _ => None,
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Schema derivation
// ---------------------------------------------------------------------------

/// Best-effort schema of a query against the shadow catalog. `None`
/// means even the arity is unknown (e.g. an unresolvable wildcard).
pub fn derive_schema(q: &Query, shadow: &ShadowCatalog) -> Option<Vec<DerivedCol>> {
    // CTE names shadow catalog names inside this query; treat any query
    // with CTEs as opaque rather than resolve a second scope level.
    if !q.with.is_empty() {
        return derive_body_schema(&q.body, &ShadowCatalog::default());
    }
    derive_body_schema(&q.body, shadow)
}

fn derive_body_schema(body: &SetExpr, shadow: &ShadowCatalog) -> Option<Vec<DerivedCol>> {
    match body {
        SetExpr::Values(rows) => {
            let first = rows.first()?;
            Some(first.iter().map(|e| DerivedCol { name: None, ty: literal_type(e) }).collect())
        }
        SetExpr::Query(q) => derive_schema(q, shadow),
        SetExpr::SetOp { left, .. } => derive_body_schema(left, shadow),
        SetExpr::Solve(s) => derive_schema(&s.input.query, shadow),
        SetExpr::Select(s) => derive_select_schema(s, shadow),
    }
}

fn derive_select_schema(s: &Select, shadow: &ShadowCatalog) -> Option<Vec<DerivedCol>> {
    // Source schema: only resolved for a single plain named source.
    let source = match s.from.as_slice() {
        [TableRef::Named { name, .. }] => {
            shadow.get(name).filter(|r| !r.is_dropped()).and_then(|r| r.schema.clone())
        }
        _ => None,
    };
    let mut out = Vec::new();
    for item in &s.projection {
        match item {
            SelectItem::Wildcard { .. } => match (&source, s.from.len()) {
                (Some(cols), 1) => out.extend(cols.iter().cloned()),
                _ => return None, // unresolvable wildcard: arity unknown
            },
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().or_else(|| match expr {
                    Expr::Column { name, .. } => Some(name.clone()),
                    Expr::Func { name, .. } => Some(name.clone()),
                    _ => None,
                });
                let ty = expr_type(expr, source.as_deref());
                out.push(DerivedCol { name, ty });
            }
        }
    }
    Some(out)
}

fn literal_type(e: &Expr) -> Option<DataType> {
    match e {
        Expr::Literal(Literal::Int(_)) => Some(DataType::Int),
        Expr::Literal(Literal::Float(_)) => Some(DataType::Float),
        Expr::Literal(Literal::Bool(_)) => Some(DataType::Bool),
        Expr::Literal(Literal::Str(_)) => Some(DataType::Text),
        _ => None,
    }
}

fn expr_type(e: &Expr, source: Option<&[DerivedCol]>) -> Option<DataType> {
    match e {
        Expr::Cast { ty, .. } => Some(ty.clone()),
        Expr::Column { name, .. } => source?
            .iter()
            .find(|c| c.name.as_deref() == Some(name.as_str()))
            .and_then(|c| c.ty.clone()),
        _ => literal_type(e),
    }
}

// ---------------------------------------------------------------------------
// Static emptiness
// ---------------------------------------------------------------------------

/// Try to prove that `WHERE where_` selects no row of `rel`, using the
/// literal-derived column intervals. Returns the human-readable reason
/// on success. Sound but very incomplete: only conjunctions of
/// column-vs-literal comparisons (and comparison chains) are examined.
pub fn where_provably_empty(where_: &Expr, rel: &DerivedRel) -> Option<String> {
    match where_ {
        Expr::Literal(Literal::Bool(false)) => Some("the WHERE clause is constant FALSE".into()),
        Expr::BinOp { op: BinOp::And, lhs, rhs } => {
            where_provably_empty(lhs, rel).or_else(|| where_provably_empty(rhs, rel))
        }
        Expr::BinOp { op, lhs, rhs } if op.is_comparison() => comparison_unsat(*op, lhs, rhs, rel),
        Expr::Chain { first, rest } => {
            let mut prev = first.as_ref();
            for (op, next) in rest {
                if let Some(reason) = comparison_unsat(*op, prev, next, rel) {
                    return Some(reason);
                }
                prev = next;
            }
            None
        }
        _ => None,
    }
}

fn comparison_unsat(op: BinOp, lhs: &Expr, rhs: &Expr, rel: &DerivedRel) -> Option<String> {
    // Normalize to column ⋈ constant.
    let (col, c, op) = match (column_name(lhs), numeric_literal(rhs)) {
        (Some(col), Some(c)) => (col, c, op),
        _ => match (numeric_literal(lhs), column_name(rhs)) {
            (Some(c), Some(col)) => (col, c, flip(op)?),
            _ => return None,
        },
    };
    let range = rel.ranges.as_ref()?.get(col)?;
    let (lo, hi) = (range.lo, range.hi);
    if lo > hi {
        return None; // no numeric rows recorded
    }
    let unsat = match op {
        BinOp::Lt => lo >= c,
        BinOp::Le => lo > c,
        BinOp::Gt => hi <= c,
        BinOp::Ge => hi < c,
        BinOp::Eq => c < lo || c > hi,
        _ => false,
    };
    unsat.then(|| {
        format!(
            "every inserted value of '{col}' lies in [{lo}, {hi}], so '{col} {} {c}' \
             matches no row",
            op.symbol()
        )
    })
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Eq,
        _ => return None,
    })
}

fn column_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column { name, .. } => Some(name),
        _ => None,
    }
}

fn numeric_literal(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(Literal::Int(i)) => Some(*i as f64),
        Expr::Literal(Literal::Float(x)) => Some(*x),
        Expr::UnOp { op: crate::types::UnOp::Neg, expr } => numeric_literal(expr).map(|v| -v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn apply_all(sql: &str) -> ShadowCatalog {
        let mut shadow = ShadowCatalog::default();
        for (i, piece) in crate::parser::split_statements(sql).iter().enumerate() {
            let stmt = parse_statement(piece).expect("parse");
            shadow.apply(i, &stmt);
        }
        shadow
    }

    #[test]
    fn create_insert_tracks_rows_and_ranges() {
        let s = apply_all(
            "CREATE TABLE t (x float8, y int4); \
             INSERT INTO t VALUES (1.5, 10), (2.5, 20), (NULL, 30)",
        );
        let rel = s.get("t").expect("t");
        assert_eq!(rel.rows, RowEstimate::Known(3));
        let ranges = rel.ranges.as_ref().expect("ranges");
        let x = ranges.get("x").expect("x range");
        assert_eq!((x.lo, x.hi, x.nullable), (1.5, 2.5, true));
        assert_eq!(ranges.get("y").map(|r| (r.lo, r.hi)), Some((10.0, 30.0)));
    }

    #[test]
    fn delete_without_where_empties() {
        let s = apply_all("CREATE TABLE t (x int4); INSERT INTO t VALUES (1); DELETE FROM t");
        assert_eq!(s.get("t").expect("t").rows, RowEstimate::Known(0));
    }

    #[test]
    fn non_literal_insert_drops_ranges_keeps_count_unknown() {
        let s = apply_all("CREATE TABLE t (x int4); INSERT INTO t SELECT x FROM src");
        let rel = s.get("t").expect("t");
        assert_eq!(rel.rows, RowEstimate::Unknown);
        assert!(rel.ranges.is_none());
    }

    #[test]
    fn where_contradiction_is_proven() {
        let s = apply_all("CREATE TABLE t (x int4); INSERT INTO t VALUES (1), (5)");
        let rel = s.get("t").expect("t");
        let pred = |sql: &str| {
            let stmt = parse_statement(&format!("SELECT * FROM t WHERE {sql}")).expect("parse");
            let crate::ast::Statement::Query(q) = stmt else { panic!("query") };
            let SetExpr::Select(sel) = q.body else { panic!("select") };
            sel.where_.clone().expect("where")
        };
        assert!(where_provably_empty(&pred("x < 0"), rel).is_some());
        assert!(where_provably_empty(&pred("x > 5"), rel).is_some());
        assert!(where_provably_empty(&pred("x = 3 AND x < 99"), rel).is_none());
        assert!(where_provably_empty(&pred("x = 7"), rel).is_some());
        assert!(where_provably_empty(&pred("0 > x"), rel).is_some());
        assert!(where_provably_empty(&pred("x >= 1"), rel).is_none());
    }

    #[test]
    fn ctas_schema_derived_from_named_source() {
        let s = apply_all(
            "CREATE TABLE base (a int4, b text); \
             CREATE TABLE derived AS SELECT a, b AS label, 1.5 AS w FROM base",
        );
        let rel = s.get("derived").expect("derived");
        let schema = rel.schema.as_ref().expect("schema");
        let names: Vec<_> = schema.iter().map(|c| c.name.as_deref()).collect();
        assert_eq!(names, [Some("a"), Some("label"), Some("w")]);
        assert_eq!(schema[0].ty, Some(DataType::Int));
        assert_eq!(schema[2].ty, Some(DataType::Float));
    }
}
