//! `scriptcheck` — whole-script static analysis.
//!
//! The per-statement analyzer (`solvecheck`, SD001–SD012) inspects one
//! compiled model at a time; this module analyzes an entire SQL script
//! *before anything runs*. It parses the script, computes per-statement
//! read/write sets over tables, views and solve outputs ([`rwset`]),
//! threads a statically derived catalog state through the statements
//! ([`shadow`]) and builds a statement dependency DAG. On top of that
//! state it emits the cross-statement diagnostics SD013–SD018:
//!
//! | code  | severity | finding                                         |
//! |-------|----------|-------------------------------------------------|
//! | SD013 | error    | relation used before the statement that creates it |
//! | SD014 | error    | relation used after being dropped               |
//! | SD015 | error    | statement conflicts with the derived schema (arity/column mismatch, duplicate create) |
//! | SD016 | warning  | view or table shadowed/replaced before ever being read |
//! | SD017 | note     | script-created table never read (script output or dead) |
//! | SD018 | warning  | statically-empty relation feeds a `SOLVESELECT`  |
//!
//! Names a script reads but never creates are assumed to exist in the
//! session catalog ("external") and are never diagnosed — so scripts
//! that run against prepared sessions stay clean. The analysis is
//! surfaced through `EXPLAIN SCRIPT`, `solvedb --check`, the server's
//! batch WARNING frames, and `Session::check_script`.

pub mod rwset;
pub mod shadow;

use crate::ast::{SolveStmt, Statement, TableRef};
use crate::catalog::Database;
use crate::diag::{Diagnostic, Severity};
use crate::error::Result;
use crate::parser;
use crate::table::{Column, Schema, Table};
use crate::types::{DataType, Value};
use rwset::RwSet;
use shadow::{DerivedRel, RelKind, RowEstimate, ShadowCatalog};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Catalog snapshot
// ---------------------------------------------------------------------------

/// The catalog state a script is analyzed against: relation names and
/// (for tables) schemas + current row counts. `empty()` models batch
/// linting of a standalone script; `from_db` models `EXPLAIN SCRIPT`
/// inside a live session.
#[derive(Debug, Clone, Default)]
pub struct CatalogSnapshot {
    shadow: ShadowCatalog,
}

impl CatalogSnapshot {
    pub fn empty() -> CatalogSnapshot {
        CatalogSnapshot::default()
    }

    pub fn from_db(db: &Database) -> CatalogSnapshot {
        let mut shadow = ShadowCatalog::default();
        for (name, table) in db.tables_snapshot() {
            let schema = table
                .schema
                .columns
                .iter()
                .map(|c| shadow::DerivedCol { name: Some(c.name.clone()), ty: Some(c.ty.clone()) })
                .collect();
            shadow.rels.insert(
                name,
                DerivedRel {
                    kind: RelKind::Table,
                    schema: Some(schema),
                    rows: RowEstimate::Known(table.num_rows()),
                    created_at: None,
                    dropped_at: None,
                    ever_read: false,
                    view_def: None,
                    ranges: None,
                },
            );
        }
        for (name, _) in db.views_snapshot() {
            let view_def = db.view(&name).cloned();
            shadow.rels.insert(
                name,
                DerivedRel {
                    kind: RelKind::View,
                    schema: None,
                    rows: RowEstimate::Unknown,
                    created_at: None,
                    dropped_at: None,
                    ever_read: false,
                    view_def,
                    ranges: None,
                },
            );
        }
        CatalogSnapshot { shadow }
    }
}

// ---------------------------------------------------------------------------
// Analysis result types
// ---------------------------------------------------------------------------

/// Why statement `to` must run after statement `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `to` reads a relation `from` writes (read-after-write).
    Raw,
    /// `to` writes a relation `from` reads (write-after-read).
    War,
    /// Both write the same relation (write-after-write).
    Waw,
}

impl EdgeKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Raw => "read-after-write",
            EdgeKind::War => "write-after-read",
            EdgeKind::Waw => "write-after-write",
        }
    }
}

/// One dependency edge of the statement DAG. `from < to` always holds,
/// so the graph is acyclic by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub kind: EdgeKind,
    /// The relation that induces the dependency.
    pub relation: String,
}

/// Per-statement analysis record.
#[derive(Debug, Clone)]
pub struct StmtAnalysis {
    pub index: usize,
    pub kind: &'static str,
    pub rw: RwSet,
}

/// A diagnostic anchored to one statement of the script.
#[derive(Debug, Clone)]
pub struct ScriptDiagnostic {
    /// 0-based statement index.
    pub stmt: usize,
    pub diag: Diagnostic,
}

/// The full result of analyzing a script.
#[derive(Debug, Clone)]
pub struct ScriptAnalysis {
    pub statements: Vec<StmtAnalysis>,
    pub edges: Vec<Edge>,
    /// Number of mutually independent statement groups (connected
    /// components of the dependency graph) — the parallelism ceiling.
    pub groups: usize,
    pub diagnostics: Vec<ScriptDiagnostic>,
}

impl ScriptAnalysis {
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.diag.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.diag.severity == Severity::Warning).count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Diagnostics of at least `min` severity, grouped by statement —
    /// the shape the server/batch layers attach to per-statement results.
    pub fn by_statement(&self, min: Severity) -> HashMap<usize, Vec<Diagnostic>> {
        let mut out: HashMap<usize, Vec<Diagnostic>> = HashMap::new();
        for d in &self.diagnostics {
            if d.diag.severity >= min {
                out.entry(d.stmt).or_default().push(d.diag.clone());
            }
        }
        out
    }

    /// One-line summary, also used as the first row of `EXPLAIN SCRIPT`.
    pub fn summary(&self) -> String {
        format!(
            "{} statement(s), {} dependency edge(s), {} independent group(s); \
             {} error(s), {} warning(s)",
            self.statements.len(),
            self.edges.len(),
            self.groups,
            self.error_count(),
            self.warning_count(),
        )
    }

    /// Render as a relation: `stmt | code | severity | message | detail`.
    /// Dataflow rows (reads/writes/dependencies) are notes with a NULL
    /// code; diagnostics carry their SD code.
    pub fn to_table(&self) -> Table {
        let schema = Schema::new(vec![
            Column::new("stmt", DataType::Int),
            Column::new("code", DataType::Text),
            Column::new("severity", DataType::Text),
            Column::new("message", DataType::Text),
            Column::new("detail", DataType::Text),
        ]);
        let mut rows = Vec::new();
        rows.push(vec![
            Value::Null,
            Value::Null,
            Value::text("note"),
            Value::text(self.summary()),
            Value::Null,
        ]);
        for s in &self.statements {
            let deps: Vec<String> = self
                .edges
                .iter()
                .filter(|e| e.to == s.index)
                .map(|e| format!("{} ({} '{}')", e.from + 1, e.kind.as_str(), e.relation))
                .collect();
            let detail = if deps.is_empty() {
                Value::Null
            } else {
                Value::text(format!("depends on statement(s) {}", deps.join(", ")))
            };
            rows.push(vec![
                Value::Int((s.index + 1) as i64),
                Value::Null,
                Value::text("note"),
                Value::text(format!(
                    "{}: reads {} writes {}",
                    s.kind,
                    fmt_names(&s.rw.all_reads()),
                    fmt_names(&s.rw.touched()),
                )),
                detail,
            ]);
        }
        for d in &self.diagnostics {
            rows.push(vec![
                Value::Int((d.stmt + 1) as i64),
                Value::text(&d.diag.code),
                Value::text(d.diag.severity.as_str()),
                Value::text(&d.diag.message),
                d.diag.detail.as_deref().map_or(Value::Null, Value::text),
            ]);
        }
        Table::with_rows(schema, rows)
    }
}

fn fmt_names(names: &BTreeSet<String>) -> String {
    if names.is_empty() {
        return "{}".into();
    }
    const MAX: usize = 6;
    let shown: Vec<&str> = names.iter().take(MAX).map(String::as_str).collect();
    let extra = names.len().saturating_sub(MAX);
    if extra > 0 {
        format!("{{{}, +{} more}}", shown.join(", "), extra)
    } else {
        format!("{{{}}}", shown.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Parse and analyze a full script.
pub fn analyze_sql(sql: &str, base: &CatalogSnapshot) -> Result<ScriptAnalysis> {
    let stmts = parser::parse_statements(sql)?;
    Ok(analyze_script(&stmts, base))
}

/// Analyze an already-parsed statement sequence against a base catalog
/// state. Infallible: defects become diagnostics, never errors.
pub fn analyze_script(stmts: &[Statement], base: &CatalogSnapshot) -> ScriptAnalysis {
    let statements: Vec<StmtAnalysis> = stmts
        .iter()
        .enumerate()
        .map(|(i, s)| StmtAnalysis {
            index: i,
            kind: rwset::statement_kind(s),
            rw: rwset::statement_rwset(s),
        })
        .collect();

    let edges = dependency_edges(&statements);
    let groups = independent_groups(statements.len(), &edges);

    let diagnostics = {
        let mut checker = Checker {
            shadow: base.shadow.clone(),
            statements: &statements,
            diagnostics: Vec::new(),
        };
        for (i, stmt) in stmts.iter().enumerate() {
            checker.check_statement(i, stmt);
            checker.shadow.apply(i, stmt);
        }
        checker.finish(stmts.len());
        checker.diagnostics
    };

    ScriptAnalysis { statements, edges, groups, diagnostics }
}

/// Build the dependency DAG: for every ordered pair `i < j` sharing a
/// relation in a conflicting way, one edge (strongest kind wins:
/// RAW > WAW > WAR).
fn dependency_edges(statements: &[StmtAnalysis]) -> Vec<Edge> {
    let mut edges = Vec::new();
    for j in 1..statements.len() {
        for i in 0..j {
            let (a, b) = (&statements[i].rw, &statements[j].rw);
            let pick = |names: BTreeSet<String>| names.into_iter().next();
            let (wa, wb) = (a.touched(), b.touched());
            let edge = pick(wa.intersection(&b.all_reads()).cloned().collect())
                .map(|relation| (EdgeKind::Raw, relation))
                .or_else(|| {
                    pick(wa.intersection(&wb).cloned().collect())
                        .map(|relation| (EdgeKind::Waw, relation))
                })
                .or_else(|| {
                    pick(a.all_reads().intersection(&wb).cloned().collect())
                        .map(|relation| (EdgeKind::War, relation))
                });
            if let Some((kind, relation)) = edge {
                edges.push(Edge { from: i, to: j, kind, relation });
            }
        }
    }
    edges
}

/// Connected components of the (undirected) dependency graph.
fn independent_groups(n: usize, edges: &[Edge]) -> usize {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in edges {
        let (a, b) = (find(&mut parent, e.from), find(&mut parent, e.to));
        parent[a] = b;
    }
    (0..n).map(|i| find(&mut parent, i)).collect::<HashSet<_>>().len()
}

// ---------------------------------------------------------------------------
// Cross-statement checks (SD013–SD018)
// ---------------------------------------------------------------------------

struct Checker<'a> {
    shadow: ShadowCatalog,
    statements: &'a [StmtAnalysis],
    diagnostics: Vec<ScriptDiagnostic>,
}

impl Checker<'_> {
    fn push(&mut self, stmt: usize, diag: Diagnostic) {
        self.diagnostics.push(ScriptDiagnostic { stmt, diag });
    }

    /// First later statement (index > `idx`) that creates `name`.
    fn created_later(&self, idx: usize, name: &str) -> Option<usize> {
        self.statements[idx + 1..].iter().find(|s| s.rw.creates.contains(name)).map(|s| s.index)
    }

    /// Resolve a use (read or write) of `name` at statement `idx`,
    /// emitting SD013/SD014 when the derived state proves it invalid.
    /// Returns the resolved entry when the relation is usable here.
    fn resolve_use(&mut self, idx: usize, name: &str, verb: &str) -> Option<DerivedRel> {
        match self.shadow.get(name) {
            Some(rel) if rel.is_dropped() => {
                let dropped_at = rel.dropped_at.unwrap_or(idx);
                self.push(
                    idx,
                    Diagnostic::error(
                        "SD014",
                        format!(
                            "statement {} {verb} '{name}', which was dropped by statement {}",
                            idx + 1,
                            dropped_at + 1
                        ),
                    )
                    .with_detail(
                        "move this statement before the DROP, or recreate the relation first",
                    ),
                );
                None
            }
            Some(rel) => {
                let rel = rel.clone();
                self.shadow.mark_read(name);
                // Reading a view touches its base relations too.
                if rel.kind == RelKind::View {
                    self.resolve_view_bases(idx, name, &rel);
                }
                Some(rel)
            }
            None => {
                if let Some(created) = self.created_later(idx, name) {
                    self.push(
                        idx,
                        Diagnostic::error(
                            "SD013",
                            format!(
                                "statement {} {verb} '{name}' before statement {} creates it",
                                idx + 1,
                                created + 1
                            ),
                        )
                        .with_detail("reorder the script so the CREATE runs first"),
                    );
                    None
                } else {
                    // External: assumed present in the session catalog.
                    self.shadow.mark_read(name);
                    self.shadow.get(name).cloned()
                }
            }
        }
    }

    /// Transitively validate the base relations of a view being read.
    fn resolve_view_bases(&mut self, idx: usize, view: &str, rel: &DerivedRel) {
        let mut visited = HashSet::new();
        visited.insert(view.to_string());
        let mut queue: Vec<Arc<crate::ast::Query>> = rel.view_def.iter().cloned().collect();
        while let Some(def) = queue.pop() {
            let mut bases = BTreeSet::new();
            rwset::query_reads(&def, &HashSet::new(), &mut bases);
            for base in bases {
                if !visited.insert(base.clone()) {
                    continue;
                }
                match self.shadow.get(&base) {
                    Some(b) if b.is_dropped() => {
                        let dropped_at = b.dropped_at.unwrap_or(idx);
                        self.push(
                            idx,
                            Diagnostic::error(
                                "SD014",
                                format!(
                                    "statement {} reads view '{view}', but its base relation \
                                     '{base}' was dropped by statement {}",
                                    idx + 1,
                                    dropped_at + 1
                                ),
                            )
                            .with_detail(
                                "the view is evaluated lazily: it breaks at first use \
                                 after the DROP",
                            ),
                        );
                    }
                    Some(b) => {
                        let next = b.view_def.clone();
                        self.shadow.mark_read(&base);
                        queue.extend(next);
                    }
                    None => {
                        if let Some(created) = self.created_later(idx, &base) {
                            self.push(
                                idx,
                                Diagnostic::error(
                                    "SD013",
                                    format!(
                                        "statement {} reads view '{view}', but its base relation \
                                         '{base}' is only created by statement {}",
                                        idx + 1,
                                        created + 1
                                    ),
                                )
                                .with_detail("reorder the script so the CREATE runs first"),
                            );
                        } else {
                            self.shadow.mark_read(&base);
                        }
                    }
                }
            }
        }
    }

    fn check_statement(&mut self, idx: usize, stmt: &Statement) {
        // Generic read resolution first (SD013/SD014 on reads).
        let reads = self.statements[idx].rw.reads.clone();
        for name in &reads {
            self.resolve_use(idx, name, "reads");
        }

        match stmt {
            Statement::Insert { table, columns, source } => {
                if let Some(rel) = self.resolve_use(idx, table, "inserts into") {
                    self.check_insert(idx, table, columns, source, &rel);
                }
            }
            Statement::Update { table, assignments, .. } => {
                // The target was already resolved through `reads`.
                if let Some(rel) = self.shadow.get(table).filter(|r| !r.is_dropped()).cloned() {
                    if let Some(names) = rel.column_names() {
                        for (col, _) in assignments {
                            if !names.contains(&col.as_str()) {
                                self.push(
                                    idx,
                                    Diagnostic::error(
                                        "SD015",
                                        format!(
                                            "UPDATE sets column '{col}', but the derived schema \
                                             of '{table}' has no such column"
                                        ),
                                    )
                                    .with_detail(format!("columns: {}", names.join(", "))),
                                );
                            }
                        }
                    }
                }
            }
            Statement::Delete { .. } => {} // target covered via reads
            Statement::CreateTable { name, if_not_exists, .. } => {
                if !if_not_exists {
                    if let Some(rel) = self.shadow.get(name) {
                        if !rel.is_dropped() && rel.kind != RelKind::External {
                            let origin = match rel.created_at {
                                Some(c) => format!("created by statement {}", c + 1),
                                None => "already present in the catalog".to_string(),
                            };
                            self.push(
                                idx,
                                Diagnostic::error(
                                    "SD015",
                                    format!(
                                        "CREATE TABLE '{name}' conflicts with the derived \
                                         catalog: the relation is {origin}"
                                    ),
                                )
                                .with_detail(
                                    "add IF NOT EXISTS, DROP the old relation first, \
                                     or pick another name",
                                ),
                            );
                        }
                    }
                }
            }
            Statement::CreateView { name, or_replace, .. } => {
                if let Some(rel) = self.shadow.get(name) {
                    if !rel.is_dropped() && rel.kind != RelKind::External {
                        if *or_replace {
                            if rel.created_at.is_some() && !rel.ever_read {
                                self.push(
                                    idx,
                                    Diagnostic::warning(
                                        "SD016",
                                        format!(
                                            "view '{name}' (created by statement {}) is replaced \
                                             before ever being read",
                                            rel.created_at.map_or(0, |c| c + 1)
                                        ),
                                    )
                                    .with_detail(
                                        "the earlier definition is dead; \
                                         remove it or read it before replacing",
                                    ),
                                );
                            }
                        } else {
                            let origin = match rel.created_at {
                                Some(c) => format!("created by statement {}", c + 1),
                                None => "already present in the catalog".to_string(),
                            };
                            self.push(
                                idx,
                                Diagnostic::error(
                                    "SD015",
                                    format!(
                                        "CREATE VIEW '{name}' conflicts with the derived \
                                         catalog: the relation is {origin}"
                                    ),
                                )
                                .with_detail("use CREATE OR REPLACE VIEW, or DROP it first"),
                            );
                        }
                    }
                }
            }
            Statement::DropTable { name, if_exists } | Statement::DropView { name, if_exists } => {
                if !if_exists {
                    match self.shadow.get(name) {
                        Some(rel) if rel.is_dropped() => {
                            let dropped_at = rel.dropped_at.unwrap_or(idx);
                            self.push(
                                idx,
                                Diagnostic::error(
                                    "SD014",
                                    format!(
                                        "statement {} drops '{name}', which was already dropped \
                                         by statement {}",
                                        idx + 1,
                                        dropped_at + 1
                                    ),
                                )
                                .with_detail("add IF EXISTS or remove the duplicate DROP"),
                            );
                        }
                        Some(_) => {}
                        None => {
                            if let Some(created) = self.created_later(idx, name) {
                                self.push(
                                    idx,
                                    Diagnostic::error(
                                        "SD013",
                                        format!(
                                            "statement {} drops '{name}' before statement {} \
                                             creates it",
                                            idx + 1,
                                            created + 1
                                        ),
                                    )
                                    .with_detail("reorder the script so the CREATE runs first"),
                                );
                            }
                        }
                    }
                }
            }
            _ => {}
        }

        // SD018: statically empty input feeding a solve.
        for solve in rwset::executed_solves(stmt) {
            self.check_solve_input(idx, solve);
        }
    }

    fn check_insert(
        &mut self,
        idx: usize,
        table: &str,
        columns: &[String],
        source: &crate::ast::Query,
        rel: &DerivedRel,
    ) {
        let Some(schema) = rel.schema.as_ref() else { return };
        // Column-name check (only when every schema name is known).
        if let Some(names) = rel.column_names() {
            for col in columns {
                if !names.contains(&col.as_str()) {
                    self.push(
                        idx,
                        Diagnostic::error(
                            "SD015",
                            format!(
                                "INSERT targets column '{col}', but the derived schema of \
                                 '{table}' has no such column"
                            ),
                        )
                        .with_detail(format!("columns: {}", names.join(", "))),
                    );
                }
            }
        }
        // Arity check: source width vs target width (or column list).
        let expected = if columns.is_empty() { schema.len() } else { columns.len() };
        let provided = shadow::derive_schema(source, &self.shadow).map(|cols| cols.len());
        if let Some(provided) = provided {
            if provided != expected {
                let target = if columns.is_empty() {
                    format!("'{table}' has {expected} column(s)")
                } else {
                    format!("the column list names {expected} column(s)")
                };
                self.push(
                    idx,
                    Diagnostic::error(
                        "SD015",
                        format!("INSERT provides {provided} value(s) per row, but {target}"),
                    )
                    .with_detail(format!(
                        "derived schema of '{table}': {}",
                        schema
                            .iter()
                            .map(|c| c.name.as_deref().unwrap_or("?").to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                );
            }
        }
    }

    /// SD018 over one executed solve: the input relation is statically
    /// empty (zero derived rows, or a WHERE the intervals contradict).
    fn check_solve_input(&mut self, idx: usize, solve: &SolveStmt) {
        let q = &solve.input.query;
        if !q.with.is_empty() {
            return;
        }
        let crate::ast::SetExpr::Select(sel) = &q.body else { return };
        let [TableRef::Named { name, .. }] = sel.from.as_slice() else { return };
        let Some(rel) = self.shadow.get(name) else { return };
        if rel.is_dropped() {
            return; // SD014 already fired
        }
        let alias = solve.input.alias.as_deref().unwrap_or("input");
        if rel.rows == RowEstimate::Known(0) {
            self.push(
                idx,
                Diagnostic::warning(
                    "SD018",
                    format!(
                        "SOLVESELECT input '{alias}' reads '{name}', which is statically \
                         empty at this point"
                    ),
                )
                .with_detail(
                    "an empty input relation yields no decision variables; \
                     the solve is a no-op",
                ),
            );
            return;
        }
        if let Some(where_) = &sel.where_ {
            if let Some(reason) = shadow::where_provably_empty(where_, rel) {
                self.push(
                    idx,
                    Diagnostic::warning(
                        "SD018",
                        format!("SOLVESELECT input '{alias}' selects no row of '{name}': {reason}"),
                    )
                    .with_detail(
                        "an empty input relation yields no decision variables; \
                         the solve is a no-op",
                    ),
                );
            }
        }
    }

    /// End-of-script checks: SD017 (dead script-created tables).
    fn finish(&mut self, _n: usize) {
        let mut dead: Vec<(usize, String)> = self
            .shadow
            .rels
            .iter()
            .filter(|(_, rel)| {
                rel.kind == RelKind::Table
                    && rel.created_at.is_some()
                    && !rel.ever_read
                    && !rel.is_dropped()
            })
            .filter_map(|(name, rel)| rel.created_at.map(|c| (c, name.clone())))
            .collect();
        dead.sort();
        for (created, name) in dead {
            self.push(
                created,
                Diagnostic::note(
                    "SD017",
                    format!(
                        "table '{name}' (created by statement {}) is never read by any \
                         later statement",
                        created + 1
                    ),
                )
                .with_detail("fine if it is the script's output; otherwise the statement is dead"),
            );
        }
        self.diagnostics.sort_by(|a, b| {
            b.diag
                .severity
                .cmp(&a.diag.severity)
                .then_with(|| a.stmt.cmp(&b.stmt))
                .then_with(|| a.diag.code.cmp(&b.diag.code))
        });
    }
}

// ---------------------------------------------------------------------------
// Source resolution for EXPLAIN SCRIPT / --check
// ---------------------------------------------------------------------------

/// `EXPLAIN SCRIPT '<arg>'` accepts either a file path or inline SQL.
/// The argument is treated as a path when it plausibly is one (short,
/// single-line, no semicolon) and the file exists; otherwise it is the
/// script text itself.
pub fn resolve_source(arg: &str) -> std::io::Result<String> {
    let plausible_path =
        arg.len() < 4096 && !arg.contains(';') && !arg.contains('\n') && !arg.trim().is_empty();
    if plausible_path && std::path::Path::new(arg).is_file() {
        return std::fs::read_to_string(arg);
    }
    Ok(arg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(sql: &str) -> ScriptAnalysis {
        analyze_sql(sql, &CatalogSnapshot::empty()).expect("parse")
    }

    fn codes(a: &ScriptAnalysis) -> Vec<(usize, String)> {
        a.diagnostics.iter().map(|d| (d.stmt, d.diag.code.clone())).collect()
    }

    #[test]
    fn clean_script_is_clean() {
        let a = analyze(
            "CREATE TABLE t (x float8); \
             INSERT INTO t VALUES (1.0), (2.0); \
             SELECT * FROM t",
        );
        assert!(!a.has_errors(), "diagnostics: {:?}", codes(&a));
        assert_eq!(a.statements.len(), 3);
        assert_eq!(a.groups, 1);
    }

    #[test]
    fn external_reads_are_silent() {
        // Scripts that run against a prepared session read tables the
        // analyzer has never seen — that must not be an error.
        let a = analyze("SELECT * FROM warehouse_stock; INSERT INTO orders VALUES (1)");
        assert!(a.diagnostics.is_empty(), "diagnostics: {:?}", codes(&a));
        assert_eq!(a.groups, 2);
    }

    #[test]
    fn sd013_use_before_create() {
        let a = analyze("SELECT * FROM t; CREATE TABLE t (x int4)");
        assert_eq!(a.error_count(), 1);
        assert_eq!(codes(&a)[0], (0, "SD013".to_string()));
    }

    #[test]
    fn sd014_read_after_drop() {
        let a = analyze("CREATE TABLE t (x int4); DROP TABLE t; SELECT * FROM t");
        assert_eq!(codes(&a)[0], (2, "SD014".to_string()));
    }

    #[test]
    fn sd014_view_over_dropped_base() {
        let a = analyze(
            "CREATE TABLE t (x int4); \
             CREATE VIEW v AS SELECT * FROM t; \
             DROP TABLE t; \
             SELECT * FROM v",
        );
        assert!(codes(&a).contains(&(3, "SD014".to_string())), "got: {:?}", codes(&a));
    }

    #[test]
    fn sd015_insert_arity_and_unknown_column() {
        let a = analyze("CREATE TABLE t (x int4, y int4); INSERT INTO t VALUES (1)");
        assert_eq!(codes(&a)[0], (1, "SD015".to_string()));
        let b = analyze("CREATE TABLE t (x int4); INSERT INTO t (z) VALUES (1)");
        assert!(codes(&b).iter().any(|(i, c)| *i == 1 && c == "SD015"), "got: {:?}", codes(&b));
    }

    #[test]
    fn sd015_duplicate_create() {
        let a = analyze("CREATE TABLE t (x int4); CREATE TABLE t (y int4)");
        assert_eq!(codes(&a)[0], (1, "SD015".to_string()));
        let ok = analyze("CREATE TABLE t (x int4); CREATE TABLE IF NOT EXISTS t (y int4)");
        assert!(!ok.has_errors());
    }

    #[test]
    fn sd016_view_replaced_unread() {
        let a = analyze(
            "CREATE VIEW v AS SELECT 1 AS x; \
             CREATE OR REPLACE VIEW v AS SELECT 2 AS x; \
             SELECT * FROM v",
        );
        assert!(codes(&a).contains(&(1, "SD016".to_string())), "got: {:?}", codes(&a));
        let read_first = analyze(
            "CREATE VIEW v AS SELECT 1 AS x; \
             SELECT * FROM v; \
             CREATE OR REPLACE VIEW v AS SELECT 2 AS x; \
             SELECT * FROM v",
        );
        assert!(!read_first.diagnostics.iter().any(|d| d.diag.code == "SD016"));
    }

    #[test]
    fn sd017_dead_table_is_a_note() {
        let a = analyze("CREATE TABLE t (x int4); CREATE TABLE u AS SELECT * FROM t");
        let c = codes(&a);
        assert!(c.contains(&(1, "SD017".to_string())), "got: {c:?}");
        assert!(!a.has_errors());
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.diag.code != "SD017" || d.diag.severity == Severity::Note));
    }

    #[test]
    fn sd018_empty_input_and_contradictory_where() {
        let a = analyze(
            "CREATE TABLE t (x float8); \
             SOLVESELECT r(x) AS (SELECT * FROM t) \
             MINIMIZE (SELECT sum(x) FROM r) USING solverlp()",
        );
        assert!(codes(&a).contains(&(1, "SD018".to_string())), "got: {:?}", codes(&a));
        let b = analyze(
            "CREATE TABLE t (x float8); \
             INSERT INTO t VALUES (1.0), (2.0); \
             SOLVESELECT r(x) AS (SELECT * FROM t WHERE x > 5) \
             MINIMIZE (SELECT sum(x) FROM r) USING solverlp()",
        );
        assert!(codes(&b).contains(&(2, "SD018".to_string())), "got: {:?}", codes(&b));
        let ok = analyze(
            "CREATE TABLE t (x float8); \
             INSERT INTO t VALUES (1.0), (2.0); \
             SOLVESELECT r(x) AS (SELECT * FROM t WHERE x > 1) \
             MINIMIZE (SELECT sum(x) FROM r) USING solverlp()",
        );
        assert!(!ok.diagnostics.iter().any(|d| d.diag.code == "SD018"));
    }

    #[test]
    fn dag_is_topological_and_groups_count() {
        let a = analyze(
            "CREATE TABLE a (x int4); \
             CREATE TABLE b (x int4); \
             INSERT INTO a VALUES (1); \
             SELECT * FROM b",
        );
        for e in &a.edges {
            assert!(e.from < e.to);
        }
        assert_eq!(a.groups, 2); // {a-chain} and {b-chain}
    }

    #[test]
    fn snapshot_from_db_sees_session_tables() {
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        db.create_table("pre", Table::new(schema), false).expect("create");
        let snap = CatalogSnapshot::from_db(&db);
        let a = analyze_sql("CREATE TABLE pre (x int4)", &snap).expect("parse");
        assert!(a.has_errors(), "duplicate create against session table should error");
        let b = analyze_sql("SELECT * FROM pre", &snap).expect("parse");
        assert!(b.diagnostics.is_empty());
    }

    #[test]
    fn to_table_shape_and_summary() {
        let a = analyze("CREATE TABLE t (x int4); SELECT * FROM t");
        let t = a.to_table();
        assert_eq!(t.num_columns(), 5);
        assert!(t.num_rows() >= 3); // summary + 2 statement rows
        assert!(a.summary().contains("2 statement(s)"));
    }

    #[test]
    fn resolve_source_inline_passthrough() {
        let sql = "SELECT 1; SELECT 2";
        assert_eq!(resolve_source(sql).expect("ok"), sql);
        assert_eq!(resolve_source("/no/such/file.sql").expect("ok"), "/no/such/file.sql");
    }
}
