//! SQL lexer.
//!
//! Produces a flat token stream. Keywords are *not* distinguished here —
//! the parser matches identifiers case-insensitively, which keeps every
//! keyword usable as a column name where unambiguous (PostgreSQL-ish).

use crate::error::{Error, Result};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier, lower-cased (SQL folds unquoted names).
    Ident(String),
    /// Quoted identifier, case preserved.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Bit string literal body, e.g. `01` for `b'01'`.
    BitStr(String),
    // Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Caret,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl, // <<
    Concat,
    Amp,
    Pipe,
    Hash,
    Tilde,
    DoubleColon,
    Assign, // :=
    Eof,
}

impl Token {
    /// Case-insensitive keyword match against an unquoted identifier.
    pub fn is_kw(&self, kw: &str) -> bool {
        match self {
            Token::Ident(s) => s.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::BitStr(s) => write!(f, "b'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semi => f.write_str(";"),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Caret => f.write_str("^"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Shl => f.write_str("<<"),
            Token::Concat => f.write_str("||"),
            Token::Amp => f.write_str("&"),
            Token::Pipe => f.write_str("|"),
            Token::Hash => f.write_str("#"),
            Token::Tilde => f.write_str("~"),
            Token::DoubleColon => f.write_str("::"),
            Token::Assign => f.write_str(":="),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if i + 1 < n && bytes[i + 1] == b'-' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                let mut depth = 1;
                while i + 1 < n && depth > 0 {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(Error::lex(format!(
                        "unterminated block comment starting at byte {start}"
                    )));
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            'b' | 'B' if i + 1 < n && bytes[i + 1] == b'\'' => {
                let (s, next) = lex_string(input, i + 1)?;
                out.push(Token::BitStr(s));
                i = next;
            }
            'e' | 'E' if i + 1 < n && bytes[i + 1] == b'\'' => {
                // Treat e'...' like a plain string (no backslash escapes needed here).
                let (s, next) = lex_string(input, i + 1)?;
                out.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= n {
                        return Err(Error::lex("unterminated quoted identifier"));
                    }
                    if bytes[j] == b'"' {
                        if j + 1 < n && bytes[j + 1] == b'"' {
                            s.push('"');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                out.push(Token::QuotedIdent(s));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            '.' if i + 1 < n && (bytes[i + 1] as char).is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '^' => {
                out.push(Token::Caret);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < n && bytes[i + 1] == b'=' => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'<' {
                    out.push(Token::Shl);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == b'|' {
                    out.push(Token::Concat);
                    i += 2;
                } else {
                    out.push(Token::Pipe);
                    i += 1;
                }
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '#' => {
                out.push(Token::Hash);
                i += 1;
            }
            '~' => {
                out.push(Token::Tilde);
                i += 1;
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b':' {
                    out.push(Token::DoubleColon);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Token::Assign);
                    i += 2;
                } else {
                    return Err(Error::lex("stray ':'"));
                }
            }
            other => return Err(Error::lex(format!("unexpected character '{other}' at byte {i}"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn lex_string(input: &str, start_quote: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let n = bytes.len();
    debug_assert_eq!(bytes[start_quote], b'\'');
    let mut j = start_quote + 1;
    let mut s = String::new();
    loop {
        if j >= n {
            return Err(Error::lex("unterminated string literal"));
        }
        if bytes[j] == b'\'' {
            if j + 1 < n && bytes[j + 1] == b'\'' {
                s.push('\'');
                j += 2;
            } else {
                j += 1;
                break;
            }
        } else {
            // Strings are ASCII in all our workloads, but pass UTF-8 through.
            let ch_len = utf8_len(bytes[j]);
            s.push_str(&input[j..j + ch_len]);
            j += ch_len;
        }
    }
    Ok((s, j))
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let n = bytes.len();
    let mut i = start;
    let mut is_float = false;
    while i < n && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    if i < n && bytes[i] == b'.' && !(i + 1 < n && bytes[i + 1] == b'.') {
        // Not part of `1..2` (we don't support ranges, but be safe) and
        // only a decimal point if followed by digit or end/non-ident.
        is_float = true;
        i += 1;
        while i < n && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < n && (bytes[j] as char).is_ascii_digit() {
            is_float = true;
            i = j;
            while i < n && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_float {
        let v: f64 =
            text.parse().map_err(|_| Error::lex(format!("bad numeric literal '{text}'")))?;
        Ok((Token::Float(v), i))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((Token::Int(v), i)),
            // Huge integer literals degrade to float, like many engines.
            Err(_) => {
                let v: f64 = text
                    .parse()
                    .map_err(|_| Error::lex(format!("bad numeric literal '{text}'")))?;
                Ok((Token::Float(v), i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        let mut t = tokenize(s).unwrap();
        assert_eq!(t.pop(), Some(Token::Eof));
        t
    }

    #[test]
    fn idents_fold_to_lowercase() {
        assert_eq!(
            toks("SELECT Foo"),
            vec![Token::Ident("select".into()), Token::Ident("foo".into())]
        );
    }

    #[test]
    fn quoted_idents_preserve_case() {
        assert_eq!(toks(r#""MiXeD""#), vec![Token::QuotedIdent("MiXeD".into())]);
        assert_eq!(toks(r#""a""b""#), vec![Token::QuotedIdent("a\"b".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("4.5"), vec![Token::Float(4.5)]);
        assert_eq!(toks(".5"), vec![Token::Float(0.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn bit_literals() {
        assert_eq!(toks("b'01'"), vec![Token::BitStr("01".into())]);
        assert_eq!(toks("B'11'"), vec![Token::BitStr("11".into())]);
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks("<= >= <> != << :: := ||"),
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Shl,
                Token::DoubleColon,
                Token::Assign,
                Token::Concat
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 -- comment\n+ 2 /* block /* nested */ still */ * 3"),
            vec![Token::Int(1), Token::Plus, Token::Int(2), Token::Star, Token::Int(3)]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn paper_query_fragment_lexes() {
        let q = "SOLVESELECT t(pvSupply) AS (SELECT * FROM input) \
                 USING arima_solver(predictions := 5, features := outTemp)";
        let t = tokenize(q).unwrap();
        assert!(t.iter().any(|x| x.is_kw("solveselect")));
        assert!(t.iter().any(|x| *x == Token::Assign));
    }

    #[test]
    fn chained_comparison_lexes_as_separate_ops() {
        assert_eq!(
            toks("0 <= ar <= 5"),
            vec![Token::Int(0), Token::LtEq, Token::Ident("ar".into()), Token::LtEq, Token::Int(5)]
        );
    }

    #[test]
    fn keywords_match_case_insensitively() {
        assert!(Token::Ident("select".into()).is_kw("SELECT"));
        assert!(!Token::QuotedIdent("select".into()).is_kw("select"));
    }
}
