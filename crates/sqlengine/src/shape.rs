//! Statement-shape fingerprinting for the metrics layer.
//!
//! `sdb_stat_statements` aggregates executions of the *same statement
//! shape*: the canonical form of the statement with every literal
//! masked as `?`. Two queries differing only in constants (`SELECT x
//! FROM t WHERE x > 3` vs `... > 7`) share one row; queries differing
//! structurally do not.

use crate::ast::Statement;
use crate::lexer::{tokenize, Token};

/// Canonical shape of a statement: the AST's display form, re-lexed
/// with literal tokens replaced by `?`.
pub fn statement_shape(stmt: &Statement) -> String {
    let canonical = stmt.to_string();
    match tokenize(&canonical) {
        Ok(tokens) => tokens
            .iter()
            .filter(|t| !matches!(t, Token::Eof))
            .map(|t| match t {
                Token::Int(_) | Token::Float(_) | Token::Str(_) | Token::BitStr(_) => {
                    "?".to_string()
                }
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join(" "),
        // The canonical form should always lex; fall back to it verbatim.
        Err(_) => canonical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn shape_of(sql: &str) -> String {
        statement_shape(&parse_statement(sql).unwrap())
    }

    #[test]
    fn literals_are_masked() {
        let a = shape_of("SELECT x FROM t WHERE x > 3");
        let b = shape_of("SELECT x FROM t WHERE x > 17");
        assert_eq!(a, b);
        assert!(a.contains('?'), "shape: {a}");
        assert!(!a.contains('3'), "shape: {a}");
    }

    #[test]
    fn strings_and_floats_are_masked() {
        let a = shape_of("SELECT 'alpha', 1.5");
        let b = shape_of("SELECT 'beta', 99.25");
        assert_eq!(a, b);
    }

    #[test]
    fn different_structure_gets_different_shapes() {
        assert_ne!(shape_of("SELECT x FROM t"), shape_of("SELECT y FROM t"));
        assert_ne!(shape_of("SELECT x FROM t"), shape_of("SELECT x FROM t WHERE x > 1"));
    }

    #[test]
    fn whitespace_and_case_normalize() {
        let a = shape_of("select   X from T where x > 1");
        let b = shape_of("SELECT x FROM t WHERE x > 2");
        assert_eq!(a, b);
    }

    #[test]
    fn solve_statements_have_shapes() {
        let a = shape_of(
            "SOLVESELECT q(x) AS (SELECT * FROM v) MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 4 FROM q) USING solverlp()",
        );
        let b = shape_of(
            "SOLVESELECT q(x) AS (SELECT * FROM v) MAXIMIZE (SELECT x FROM q) \
             SUBJECTTO (SELECT x <= 9 FROM q) USING solverlp()",
        );
        assert_eq!(a, b);
        assert!(a.to_lowercase().contains("solveselect"), "shape: {a}");
    }
}
