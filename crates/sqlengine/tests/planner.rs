//! Differential tests for the planned (columnar) executor.
//!
//! Every query here runs twice — once through the default path, which
//! routes plannable SELECTs through the logical plan + columnar batch
//! executor, and once with `set_force_row_interpreter(true)`, which
//! pins the legacy row-at-a-time interpreter. The two executions must
//! agree on column names and on the multiset of result rows (the
//! optimizer may legally reorder joins, so row order is only compared
//! when the query carries an ORDER BY).
//!
//! A deterministic xorshift generator fuzzes several hundred SELECT
//! shapes — projections, predicates, multi-way joins, grouping,
//! HAVING, DISTINCT, ORDER BY, LIMIT/OFFSET — on top of a bank of
//! hand-written queries covering the planner's edge shapes
//! (ROLLUP/CUBE/GROUPING SETS, outer joins, subqueries, NULL keys).

use sqlengine::{execute_script, execute_sql, set_force_row_interpreter, Database, Table, Value};

fn setup() -> Database {
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE t1 (a INT, b INT, c TEXT, d FLOAT8);
         CREATE TABLE t2 (a INT, e TEXT, f INT);
         CREATE TABLE t3 (k INT, v INT);",
    )
    .unwrap();
    // Deterministic data with duplicates and NULLs in every column.
    let mut rng = Rng::new(0xC0FFEE);
    let mut rows = Vec::new();
    for i in 0..60 {
        let a = if rng.below(10) == 0 { "NULL".into() } else { format!("{}", rng.below(8)) };
        let b = if rng.below(12) == 0 { "NULL".into() } else { format!("{}", rng.below(50)) };
        let c = match rng.below(5) {
            0 => "NULL".into(),
            1 => "'red'".into(),
            2 => "'green'".into(),
            3 => "'blue'".into(),
            _ => format!("'c{}'", i % 4),
        };
        let d = if rng.below(8) == 0 {
            "NULL".into()
        } else {
            format!("{}.{}", rng.below(20), rng.below(10))
        };
        rows.push(format!("({a},{b},{c},{d})"));
    }
    execute_sql(&mut db, &format!("INSERT INTO t1 VALUES {}", rows.join(","))).unwrap();
    let mut rows = Vec::new();
    for _ in 0..25 {
        let a = if rng.below(10) == 0 { "NULL".into() } else { format!("{}", rng.below(8)) };
        let e: String = match rng.below(4) {
            0 => "NULL".into(),
            1 => "'x'".into(),
            2 => "'y'".into(),
            _ => "'z'".into(),
        };
        let f = format!("{}", rng.below(100));
        rows.push(format!("({a},{e},{f})"));
    }
    execute_sql(&mut db, &format!("INSERT INTO t2 VALUES {}", rows.join(","))).unwrap();
    let mut rows = Vec::new();
    for _ in 0..15 {
        rows.push(format!("({},{})", rng.below(8), rng.below(30)));
    }
    execute_sql(&mut db, &format!("INSERT INTO t3 VALUES {}", rows.join(","))).unwrap();
    db
}

/// Minimal xorshift64* PRNG so the fuzz corpus is reproducible without
/// pulling in a dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a>(&mut self, opts: &[&'a str]) -> &'a str {
        opts[self.below(opts.len() as u64) as usize]
    }
}

/// Render a value so that NULL, ints, floats and text all key
/// distinctly, and Float(2.0)/Int(2) stay distinguishable.
fn key(v: &Value) -> String {
    match v {
        Value::Null => "∅".to_string(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{f}"),
        other => format!("v{other}"),
    }
}

fn row_keys(t: &Table) -> Vec<String> {
    t.rows.iter().map(|r| r.iter().map(key).collect::<Vec<_>>().join("\u{1f}")).collect()
}

/// Run `sql` through both executors and compare. `ordered` compares
/// exact row sequence; otherwise the sorted multiset.
fn check(db: &mut Database, sql: &str, ordered: bool) {
    let planned = execute_sql(db, sql).map(|r| r.into_table().unwrap());
    let prev = set_force_row_interpreter(true);
    let row = execute_sql(db, sql).map(|r| r.into_table().unwrap());
    set_force_row_interpreter(prev);
    match (planned, row) {
        (Ok(p), Ok(r)) => {
            assert_eq!(p.schema.names(), r.schema.names(), "column names differ for: {sql}");
            let mut pk = row_keys(&p);
            let mut rk = row_keys(&r);
            if !ordered {
                pk.sort();
                rk.sort();
            }
            assert_eq!(pk, rk, "rows differ for: {sql}");
        }
        (Err(pe), Err(re)) => {
            assert_eq!(pe.to_string(), re.to_string(), "errors differ for: {sql}");
        }
        (Ok(_), Err(re)) => panic!("columnar succeeded, row interpreter failed ({re}): {sql}"),
        (Err(pe), Ok(_)) => panic!("columnar failed ({pe}), row interpreter succeeded: {sql}"),
    }
}

#[test]
fn differential_handwritten_corpus() {
    let mut db = setup();
    // (sql, has total order) — the bank covers planner edge shapes.
    let corpus: &[(&str, bool)] = &[
        ("SELECT * FROM t1", false),
        ("SELECT a, b FROM t1 WHERE a > 3", false),
        ("SELECT c, d FROM t1 WHERE c IS NULL", false),
        ("SELECT a FROM t1 WHERE c IS NOT NULL AND b < 30", false),
        ("SELECT a + b AS s, d * 2 FROM t1 WHERE a IS NOT NULL", false),
        ("SELECT CASE WHEN a > 4 THEN 'hi' ELSE 'lo' END AS lvl, b FROM t1", false),
        ("SELECT * FROM t1 WHERE c LIKE 'c%'", false),
        ("SELECT * FROM t1 WHERE c IN ('red', 'blue')", false),
        ("SELECT * FROM t1 WHERE b BETWEEN 10 AND 30", false),
        ("SELECT DISTINCT c FROM t1", false),
        ("SELECT DISTINCT a, c FROM t1 WHERE b > 5", false),
        ("SELECT a, b FROM t1 ORDER BY a, b, d", true),
        ("SELECT a, b FROM t1 ORDER BY b DESC NULLS FIRST, a, c", true),
        ("SELECT a FROM t1 ORDER BY a LIMIT 7", true),
        ("SELECT a FROM t1 ORDER BY a LIMIT 5 OFFSET 3", true),
        ("SELECT count(*) FROM t1", true),
        ("SELECT count(a), count(*), sum(b), min(d), max(d) FROM t1", true),
        ("SELECT avg(b), avg(d) FROM t1", true),
        ("SELECT c, count(*) FROM t1 GROUP BY c", false),
        ("SELECT c, sum(b), avg(d) FROM t1 GROUP BY c ORDER BY c NULLS LAST", true),
        ("SELECT a, c, count(*) FROM t1 GROUP BY a, c HAVING count(*) > 1", false),
        ("SELECT c, count(DISTINCT a) FROM t1 GROUP BY c", false),
        (
            "SELECT c, string_agg(cast(a AS TEXT), ',') FROM t1 WHERE a IS NOT NULL GROUP BY c",
            false,
        ),
        ("SELECT c, stddev(b), variance(b) FROM t1 GROUP BY c", false),
        ("SELECT count(*) FROM t1 GROUP BY a HAVING sum(b) > 100", false),
        // Joins: comma, inner, outer, non-equi, three-way.
        ("SELECT t1.a, t2.e FROM t1, t2 WHERE t1.a = t2.a", false),
        ("SELECT t1.a, t2.e FROM t1 JOIN t2 ON t1.a = t2.a WHERE t2.f > 50", false),
        ("SELECT t1.a, t2.e FROM t1 LEFT JOIN t2 ON t1.a = t2.a", false),
        ("SELECT t1.a, t2.e FROM t1 RIGHT JOIN t2 ON t1.a = t2.a", false),
        ("SELECT t1.a, t2.e FROM t1 FULL JOIN t2 ON t1.a = t2.a", false),
        ("SELECT x.a, y.a FROM t1 x JOIN t1 y ON x.a = y.b", false),
        ("SELECT t1.a, t3.v FROM t1 JOIN t3 ON t1.a < t3.k", false),
        ("SELECT t1.a, t2.e, t3.v FROM t1, t2, t3 WHERE t1.a = t2.a AND t2.a = t3.k", false),
        ("SELECT t1.c, sum(t3.v) FROM t1 JOIN t3 ON t1.a = t3.k GROUP BY t1.c", false),
        (
            "SELECT t2.e, count(*) FROM t1 LEFT JOIN t2 ON t1.a = t2.a AND t2.f > 30 \
             GROUP BY t2.e ORDER BY t2.e NULLS LAST",
            true,
        ),
        // Subqueries (residual predicates, pruning disabled).
        ("SELECT a FROM t1 WHERE a IN (SELECT k FROM t3)", false),
        ("SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.a = t1.a)", false),
        ("SELECT a, (SELECT max(v) FROM t3) AS mv FROM t1 WHERE b > 20", false),
        (
            "SELECT s.a, s.n FROM (SELECT a, count(*) AS n FROM t1 GROUP BY a) s WHERE s.n > 2",
            false,
        ),
        // CTEs materialize before planning.
        (
            "WITH big AS (SELECT * FROM t1 WHERE b > 25) SELECT c, count(*) FROM big GROUP BY c",
            false,
        ),
        // Grouping sets family.
        ("SELECT c, sum(b) FROM t1 GROUP BY ROLLUP (c)", false),
        ("SELECT a, c, sum(b) FROM t1 GROUP BY ROLLUP (a, c)", false),
        ("SELECT a, c, count(*) FROM t1 GROUP BY CUBE (a, c)", false),
        ("SELECT a, c, sum(b) FROM t1 GROUP BY GROUPING SETS ((a), (c), ())", false),
        ("SELECT c, grouping(c), sum(b) FROM t1 GROUP BY ROLLUP (c)", false),
        // Expressions in GROUP BY and ORDER BY positions.
        ("SELECT a % 3 AS g, count(*) FROM t1 WHERE a IS NOT NULL GROUP BY a % 3", false),
        ("SELECT a, b FROM t1 WHERE a IS NOT NULL ORDER BY 2 DESC, 1", true),
        ("SELECT upper(c) AS u, length(c) FROM t1 WHERE c IS NOT NULL", false),
        ("SELECT coalesce(a, -1), coalesce(c, 'none') FROM t1", false),
        ("SELECT abs(b - 25), round(d) FROM t1", false),
        // Errors must match exactly.
        ("SELECT nope FROM t1", true),
        ("SELECT a FROM t1 GROUP BY c", true),
        ("SELECT sum(b) + a FROM t1", true),
    ];
    for (sql, ordered) in corpus {
        check(&mut db, sql, *ordered);
    }
}

#[test]
fn differential_fuzzed_selects() {
    let mut db = setup();
    let mut rng = Rng::new(0xDEADBEEF);
    for _ in 0..220 {
        let sql = gen_select(&mut rng);
        // Generated queries never carry a total order: compare multisets.
        check(&mut db, &sql, false);
    }
}

fn gen_select(rng: &mut Rng) -> String {
    let agg = rng.below(3) == 0;
    let join = rng.below(3) == 0;
    let from = if join {
        let kind = rng.pick(&["JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"]);
        format!("t1 {kind} t2 ON t1.a = t2.a")
    } else {
        "t1".to_string()
    };
    let qual = |c: &str| {
        if join && c == "a" {
            format!("t1.{c}")
        } else {
            c.to_string()
        }
    };
    let mut sql = String::from("SELECT ");
    if agg {
        let g = qual(rng.pick(&["a", "c"]));
        let call = match rng.below(5) {
            0 => "count(*)".to_string(),
            1 => format!("sum({})", qual("b")),
            2 => format!("avg({})", qual("d")),
            3 => format!("min({})", qual("b")),
            _ => format!("count(DISTINCT {})", qual("b")),
        };
        sql.push_str(&format!("{g}, {call} FROM {from}"));
        add_where(&mut sql, rng, &qual);
        match rng.below(4) {
            0 => sql.push_str(&format!(" GROUP BY ROLLUP ({g})")),
            1 => sql.push_str(&format!(" GROUP BY CUBE ({g})")),
            _ => sql.push_str(&format!(" GROUP BY {g}")),
        }
        if rng.below(3) == 0 {
            sql.push_str(" HAVING count(*) > 1");
        }
    } else {
        if rng.below(4) == 0 {
            sql.push_str("DISTINCT ");
        }
        let cols: Vec<String> = match rng.below(4) {
            0 => vec![qual("a"), qual("b")],
            1 => vec![qual("c"), format!("{} + 1", qual("b"))],
            2 => vec!["*".to_string()],
            _ => vec![qual("a"), qual("c"), qual("d")],
        };
        sql.push_str(&cols.join(", "));
        sql.push_str(&format!(" FROM {from}"));
        add_where(&mut sql, rng, &qual);
        if rng.below(3) == 0 {
            // ORDER BY alone is not a total order over duplicate rows;
            // keep it to exercise Sort, but still compare multisets.
            sql.push_str(&format!(" ORDER BY {}", qual("b")));
            if rng.below(2) == 0 {
                sql.push_str(&format!(" LIMIT {} OFFSET {}", 40 + rng.below(60), rng.below(4)));
            }
        }
    }
    sql
}

fn add_where(sql: &mut String, rng: &mut Rng, qual: &dyn Fn(&str) -> String) {
    if rng.below(4) == 0 {
        return;
    }
    let mut preds = Vec::new();
    for _ in 0..=rng.below(2) {
        let p = match rng.below(6) {
            0 => format!("{} {} {}", qual("a"), rng.pick(&["<", ">", "=", "<>"]), rng.below(8)),
            1 => format!("{} {} {}", qual("b"), rng.pick(&["<=", ">="]), rng.below(50)),
            2 => format!("{} IS NOT NULL", qual("c")),
            3 => format!("{} IS NULL", qual("d")),
            4 => format!("{} IN ('red', 'green')", qual("c")),
            _ => format!("{} BETWEEN 5 AND 40", qual("b")),
        };
        preds.push(p);
    }
    sql.push_str(&format!(" WHERE {}", preds.join(rng.pick(&[" AND ", " OR "]))));
}

// ---------------------------------------------------------------------------
// Grouping sets: exact expected outputs (both executors).

fn grouping_db() -> Database {
    let mut db = Database::new();
    execute_script(
        &mut db,
        "CREATE TABLE sales (region TEXT, product TEXT, amount INT);
         INSERT INTO sales VALUES
           ('east', 'ink', 10), ('east', 'pen', 20), ('east', 'ink', 30),
           ('west', 'pen', 40), ('west', 'ink', 50);",
    )
    .unwrap();
    db
}

fn rows_of(db: &mut Database, sql: &str) -> Vec<Vec<String>> {
    let t = execute_sql(db, sql).unwrap().into_table().unwrap();
    t.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect()
}

fn assert_both_executors(db: &mut Database, sql: &str, expected: &[&[&str]]) {
    for force_row in [false, true] {
        let prev = set_force_row_interpreter(force_row);
        let mut got = rows_of(db, sql);
        set_force_row_interpreter(prev);
        let mut want: Vec<Vec<String>> =
            expected.iter().map(|r| r.iter().map(|s| s.to_string()).collect()).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "force_row={force_row}: {sql}");
    }
}

#[test]
fn rollup_produces_subtotals_and_grand_total() {
    let mut db = grouping_db();
    assert_both_executors(
        &mut db,
        "SELECT region, product, sum(amount) FROM sales GROUP BY ROLLUP (region, product)",
        &[
            &["east", "ink", "40"],
            &["east", "pen", "20"],
            &["west", "pen", "40"],
            &["west", "ink", "50"],
            &["east", "NULL", "60"],
            &["west", "NULL", "90"],
            &["NULL", "NULL", "150"],
        ],
    );
}

#[test]
fn cube_produces_all_marginals() {
    let mut db = grouping_db();
    assert_both_executors(
        &mut db,
        "SELECT region, product, sum(amount) FROM sales GROUP BY CUBE (region, product)",
        &[
            &["east", "ink", "40"],
            &["east", "pen", "20"],
            &["west", "pen", "40"],
            &["west", "ink", "50"],
            &["east", "NULL", "60"],
            &["west", "NULL", "90"],
            &["NULL", "ink", "90"],
            &["NULL", "pen", "60"],
            &["NULL", "NULL", "150"],
        ],
    );
}

#[test]
fn grouping_sets_listed_explicitly() {
    let mut db = grouping_db();
    assert_both_executors(
        &mut db,
        "SELECT region, product, count(*) FROM sales \
         GROUP BY GROUPING SETS ((region), (product), ())",
        &[
            &["east", "NULL", "3"],
            &["west", "NULL", "2"],
            &["NULL", "ink", "3"],
            &["NULL", "pen", "2"],
            &["NULL", "NULL", "5"],
        ],
    );
}

#[test]
fn rollup_keeps_null_source_groups_distinct_from_totals() {
    let mut db = grouping_db();
    execute_sql(&mut db, "INSERT INTO sales VALUES (NULL, 'ink', 7)").unwrap();
    // A NULL region group and the grand-total row both render region as
    // NULL; the multiset must contain both, with distinct sums.
    assert_both_executors(
        &mut db,
        "SELECT region, sum(amount) FROM sales GROUP BY ROLLUP (region)",
        &[&["east", "60"], &["west", "90"], &["NULL", "7"], &["NULL", "157"]],
    );
}

#[test]
fn rollup_respects_having_and_order() {
    let mut db = grouping_db();
    let sql = "SELECT region, sum(amount) AS s FROM sales GROUP BY ROLLUP (region) \
               HAVING sum(amount) > 70 ORDER BY s";
    for force_row in [false, true] {
        let prev = set_force_row_interpreter(force_row);
        let got = rows_of(&mut db, sql);
        set_force_row_interpreter(prev);
        assert_eq!(
            got,
            vec![
                vec!["west".to_string(), "90".to_string()],
                vec!["NULL".to_string(), "150".to_string()]
            ]
        );
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN SELECT snapshots.

fn explain_lines(db: &mut Database, sql: &str) -> Vec<String> {
    let t = execute_sql(db, sql).unwrap().into_table().unwrap();
    t.rows.iter().map(|r| r[0].to_string()).collect()
}

#[test]
fn explain_select_shows_optimized_plan() {
    let mut db = setup();
    let lines = explain_lines(
        &mut db,
        "EXPLAIN SELECT t1.c, sum(t2.f) FROM t1 JOIN t2 ON t1.a = t2.a \
         WHERE t1.b > 10 AND t2.f < 90 GROUP BY t1.c",
    );
    let plan = lines.join("\n");
    assert!(plan.contains("Project"), "missing Project:\n{plan}");
    assert!(plan.contains("Aggregate"), "missing Aggregate:\n{plan}");
    assert!(plan.contains("HashJoin"), "missing HashJoin:\n{plan}");
    // Both single-table predicates must be pushed below the join: the
    // Filter lines appear after (deeper than) the HashJoin line.
    let join_at = lines.iter().position(|l| l.contains("HashJoin")).unwrap();
    let filters: Vec<usize> =
        lines.iter().enumerate().filter(|(_, l)| l.contains("Filter")).map(|(i, _)| i).collect();
    assert_eq!(filters.len(), 2, "expected two pushed filters:\n{plan}");
    assert!(filters.iter().all(|&i| i > join_at), "filters not below join:\n{plan}");
    // Column pruning: t1 has 4 columns but only a, b, c are used.
    assert!(plan.contains("cols=3/4"), "t1 not pruned to 3/4 cols:\n{plan}");
    // Estimates and fingerprint render.
    assert!(plan.contains("rows≈"), "missing row estimates:\n{plan}");
    assert!(lines.last().unwrap().starts_with("plan fingerprint: "), "no fingerprint:\n{plan}");
}

#[test]
fn explain_select_falls_back_gracefully() {
    let mut db = setup();
    // SOLVE shapes stay on the row interpreter; EXPLAIN says so rather
    // than erroring.
    let lines = explain_lines(&mut db, "EXPLAIN SELECT 1 AS one");
    assert!(
        lines[0].contains("row interpreter"),
        "constant SELECT should report fallback: {lines:?}"
    );
}

#[test]
fn explain_fingerprint_is_stable_and_structural() {
    let mut db = setup();
    let fp = |db: &mut Database, sql: &str| {
        explain_lines(db, sql).last().unwrap().trim_start_matches("plan fingerprint: ").to_string()
    };
    let a1 = fp(&mut db, "EXPLAIN SELECT a, b FROM t1 WHERE a > 3");
    let a2 = fp(&mut db, "EXPLAIN SELECT a, b FROM t1 WHERE a > 3");
    assert_eq!(a1, a2, "fingerprint not deterministic");
    let b = fp(&mut db, "EXPLAIN SELECT a, b FROM t1 WHERE a > 4");
    assert_ne!(a1, b, "different predicates should fingerprint differently");
    // Inserting rows changes estimates but not the structural fingerprint.
    execute_sql(&mut db, "INSERT INTO t1 VALUES (1, 2, 'red', 0.5)").unwrap();
    let a3 = fp(&mut db, "EXPLAIN SELECT a, b FROM t1 WHERE a > 3");
    assert_eq!(a1, a3, "fingerprint must ignore cardinality estimates");
}

#[test]
fn explain_analyze_select_traces_operators() {
    let mut db = setup();
    let t = execute_sql(&mut db, "EXPLAIN ANALYZE SELECT c, count(*) FROM t1 GROUP BY c")
        .unwrap()
        .into_table()
        .unwrap();
    let text = t.rows.iter().map(|r| r[0].to_string()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("columnar executor"), "missing executor span:\n{text}");
    assert!(text.contains("Aggregate"), "missing Aggregate span:\n{text}");
    assert!(text.contains("Scan t1"), "missing Scan span:\n{text}");
    assert!(text.contains("rows out:"), "missing row count:\n{text}");
    assert!(text.contains("plan fingerprint:"), "missing fingerprint:\n{text}");
}

#[test]
fn stat_statements_fingerprint_matches_explain() {
    // The plan fingerprint recorded in sdb_stat_statements equals the
    // one EXPLAIN prints for the same statement (session-level test
    // lives in core; here we check the ExecResult plumbing).
    let mut db = setup();
    let r = execute_sql(&mut db, "SELECT a, b FROM t1 WHERE a > 3").unwrap();
    let fp = r.plan_fingerprint.expect("plannable SELECT should carry a fingerprint");
    let lines = explain_lines(&mut db, "EXPLAIN SELECT a, b FROM t1 WHERE a > 3");
    assert_eq!(
        lines.last().unwrap(),
        &format!("plan fingerprint: {fp:016x}"),
        "ExecResult fingerprint disagrees with EXPLAIN"
    );
    // Row-interpreter shapes carry no fingerprint.
    let r = execute_sql(&mut db, "SELECT 1").unwrap();
    assert!(r.plan_fingerprint.is_none());
}
