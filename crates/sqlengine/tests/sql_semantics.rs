//! Focused SQL-semantics tests: three-valued logic, NULL handling in
//! clauses, coercion, and edge cases that production engines get right.

use sqlengine::{execute_script, execute_sql, Database, Table, Value};

fn db_with(setup: &str) -> Database {
    let mut db = Database::new();
    execute_script(&mut db, setup).unwrap();
    db
}

fn q(db: &mut Database, sql: &str) -> Table {
    execute_sql(db, sql).unwrap().into_table().unwrap()
}

fn scalar(db: &mut Database, sql: &str) -> Value {
    q(db, sql).scalar().unwrap()
}

#[test]
fn where_treats_null_as_false() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (NULL), (3)");
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t WHERE x > 0"), Value::Int(2));
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t WHERE NOT (x > 0)"), Value::Int(0));
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t WHERE x > 0 OR x IS NULL"), Value::Int(3));
}

#[test]
fn comparisons_with_null_are_null() {
    let mut db = Database::new();
    assert!(scalar(&mut db, "SELECT NULL = NULL").is_null());
    assert!(scalar(&mut db, "SELECT 1 < NULL").is_null());
    assert_eq!(scalar(&mut db, "SELECT not_distinct(NULL, NULL)"), Value::Bool(true));
}

#[test]
fn aggregates_ignore_nulls_but_count_star_does_not() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (NULL), (NULL)");
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t"), Value::Int(2));
    assert_eq!(scalar(&mut db, "SELECT count(x) FROM t"), Value::Int(0));
    assert!(scalar(&mut db, "SELECT sum(x) FROM t").is_null());
    assert!(scalar(&mut db, "SELECT avg(x) FROM t").is_null());
    assert!(scalar(&mut db, "SELECT min(x) FROM t").is_null());
}

#[test]
fn empty_table_aggregates() {
    let mut db = db_with("CREATE TABLE t (x int)");
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t"), Value::Int(0));
    assert!(scalar(&mut db, "SELECT sum(x) FROM t").is_null());
    // Grouped aggregation over an empty table yields no rows.
    assert_eq!(q(&mut db, "SELECT x, count(*) FROM t GROUP BY x").num_rows(), 0);
}

#[test]
fn division_and_modulo_semantics() {
    let mut db = Database::new();
    assert_eq!(scalar(&mut db, "SELECT 7 / 2"), Value::Int(3)); // int division
    assert_eq!(scalar(&mut db, "SELECT 7.0 / 2"), Value::Float(3.5));
    assert_eq!(scalar(&mut db, "SELECT -7 % 3"), Value::Int(-1)); // truncated, like PG
    assert!(execute_sql(&mut db, "SELECT 1 / 0").is_err());
}

#[test]
fn distinct_on_nulls() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (NULL), (NULL), (1)");
    assert_eq!(q(&mut db, "SELECT DISTINCT x FROM t").num_rows(), 2);
}

#[test]
fn group_by_null_forms_one_group() {
    let mut db =
        db_with("CREATE TABLE t (g int, x int); INSERT INTO t VALUES (NULL, 1), (NULL, 2), (1, 3)");
    let t = q(&mut db, "SELECT g, sum(x) FROM t GROUP BY g ORDER BY g");
    assert_eq!(t.num_rows(), 2);
    // NULL group sorts last and sums to 3.
    assert!(t.value(1, 0).is_null());
    assert_eq!(t.value(1, 1), &Value::Int(3));
}

#[test]
fn insert_column_subset_fills_nulls() {
    let mut db = db_with("CREATE TABLE t (a int, b text, c float8)");
    execute_sql(&mut db, "INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
    let t = q(&mut db, "SELECT a, b, c FROM t");
    assert_eq!(t.value(0, 0), &Value::Int(7));
    assert!(t.value(0, 1).is_null());
    assert_eq!(t.value(0, 2), &Value::Float(1.5));
}

#[test]
fn coercion_on_insert_and_errors() {
    let mut db = db_with("CREATE TABLE t (a int)");
    execute_sql(&mut db, "INSERT INTO t VALUES ('42')").unwrap();
    assert_eq!(scalar(&mut db, "SELECT a FROM t"), Value::Int(42));
    assert!(execute_sql(&mut db, "INSERT INTO t VALUES ('nope')").is_err());
    assert!(execute_sql(&mut db, "INSERT INTO t VALUES (1, 2)").is_err());
}

#[test]
fn case_returns_null_without_else() {
    let mut db = Database::new();
    assert!(scalar(&mut db, "SELECT CASE WHEN 1 = 2 THEN 'x' END").is_null());
}

#[test]
fn limit_offset_edge_cases() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2), (3)");
    assert_eq!(q(&mut db, "SELECT x FROM t LIMIT 0").num_rows(), 0);
    assert_eq!(q(&mut db, "SELECT x FROM t OFFSET 5").num_rows(), 0);
    assert_eq!(q(&mut db, "SELECT x FROM t ORDER BY x LIMIT 10 OFFSET 2").num_rows(), 1);
    assert_eq!(q(&mut db, "SELECT x FROM t LIMIT ALL").num_rows(), 3);
}

#[test]
fn cross_type_numeric_grouping() {
    let mut db = db_with(
        "CREATE TABLE a (x int); INSERT INTO a VALUES (1);
         CREATE TABLE b (x float8); INSERT INTO b VALUES (1.0)",
    );
    // 1 and 1.0 group together after a union.
    let t = q(
        &mut db,
        "SELECT x, count(*) FROM (SELECT x FROM a UNION ALL SELECT x FROM b) u GROUP BY x",
    );
    assert_eq!(t.num_rows(), 1);
    assert_eq!(t.value(0, 1), &Value::Int(2));
}

#[test]
fn self_join_aliases() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2), (3)");
    let t = q(&mut db, "SELECT a.x, b.x FROM t a JOIN t b ON b.x = a.x + 1 ORDER BY a.x");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.value(0, 1), &Value::Int(2));
}

#[test]
fn subquery_in_from_with_aggregates() {
    let mut db = db_with(
        "CREATE TABLE t (g int, x int);
         INSERT INTO t VALUES (1, 10), (1, 20), (2, 30)",
    );
    let v =
        scalar(&mut db, "SELECT max(total) FROM (SELECT g, sum(x) AS total FROM t GROUP BY g) s");
    assert_eq!(v, Value::Int(30));
}

#[test]
fn update_with_subquery_assignment() {
    let mut db = db_with(
        "CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2);
         CREATE TABLE m (v int); INSERT INTO m VALUES (100)",
    );
    execute_sql(&mut db, "UPDATE t SET x = x + (SELECT v FROM m)").unwrap();
    assert_eq!(scalar(&mut db, "SELECT sum(x) FROM t"), Value::Int(203));
}

#[test]
fn delete_everything_and_reinsert() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2)");
    let n = execute_sql(&mut db, "DELETE FROM t").unwrap().row_count();
    assert_eq!(n, Some(2));
    execute_sql(&mut db, "INSERT INTO t VALUES (9)").unwrap();
    assert_eq!(scalar(&mut db, "SELECT sum(x) FROM t"), Value::Int(9));
}

#[test]
fn chained_comparison_in_where() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (5), (9)");
    assert_eq!(scalar(&mut db, "SELECT count(*) FROM t WHERE 2 <= x <= 8"), Value::Int(1));
}

#[test]
fn between_is_inclusive_and_symmetric_in_types() {
    let mut db = Database::new();
    assert_eq!(scalar(&mut db, "SELECT 5 BETWEEN 5 AND 5"), Value::Bool(true));
    assert_eq!(scalar(&mut db, "SELECT 5.0 BETWEEN 4 AND 6"), Value::Bool(true));
    assert_eq!(
        scalar(
            &mut db,
            "SELECT '2020-06-15'::timestamp BETWEEN '2020-01-01'::timestamp \
             AND '2020-12-31'::timestamp"
        ),
        Value::Bool(true)
    );
}

#[test]
fn exists_with_empty_subquery() {
    let mut db = db_with("CREATE TABLE t (x int)");
    assert_eq!(scalar(&mut db, "SELECT EXISTS (SELECT 1 FROM t)"), Value::Bool(false));
    assert_eq!(scalar(&mut db, "SELECT NOT EXISTS (SELECT 1 FROM t)"), Value::Bool(true));
}

#[test]
fn in_subquery_with_all_nulls() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (NULL)");
    assert!(scalar(&mut db, "SELECT 1 IN (SELECT x FROM t)").is_null());
    assert!(scalar(&mut db, "SELECT 1 NOT IN (SELECT x FROM t)").is_null());
}

#[test]
fn recursive_cte_iteration_cap_errors_cleanly() {
    let mut db = Database::new();
    let err = execute_sql(
        &mut db,
        "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM t) \
         SELECT count(*) FROM t",
    )
    .unwrap_err();
    assert!(err.to_string().contains("limit"));
}

#[test]
fn view_over_view() {
    let mut db = db_with(
        "CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2), (3), (4);
         CREATE VIEW evens AS SELECT x FROM t WHERE x % 2 = 0;
         CREATE VIEW big_evens AS SELECT x FROM evens WHERE x > 2",
    );
    assert_eq!(scalar(&mut db, "SELECT sum(x) FROM big_evens"), Value::Int(4));
}

#[test]
fn create_view_or_replace() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1)");
    execute_sql(&mut db, "CREATE VIEW v AS SELECT x FROM t").unwrap();
    assert!(execute_sql(&mut db, "CREATE VIEW v AS SELECT 2 AS x").is_err());
    execute_sql(&mut db, "CREATE OR REPLACE VIEW v AS SELECT 2 AS x").unwrap();
    assert_eq!(scalar(&mut db, "SELECT x FROM v"), Value::Int(2));
}

#[test]
fn text_escaping_round_trips() {
    let mut db = db_with("CREATE TABLE t (s text)");
    execute_sql(&mut db, "INSERT INTO t VALUES ('it''s ''quoted''')").unwrap();
    assert_eq!(scalar(&mut db, "SELECT s FROM t"), Value::text("it's 'quoted'"));
}
