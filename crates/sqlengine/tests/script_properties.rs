//! Property-based tests for the whole-script analyzer
//! (`sqlengine::script`): the dependency graph is acyclic by
//! construction, and statements the read/write analysis declares
//! independent really commute under execution.

use proptest::prelude::*;
use sqlengine::ast::Statement;
use sqlengine::parser;
use sqlengine::script::rwset::statement_rwset;
use sqlengine::script::{analyze_script, CatalogSnapshot};
use sqlengine::{execute_sql, Database, Value};

// ---------------------------------------------------------------------------
// Script generation
// ---------------------------------------------------------------------------

/// One statement over a small fixed pool of table names (`t0`..`t4`).
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    CreateAs(u8, u8),
    Insert(u8, i64),
    Delete(u8),
    Drop(u8),
}

impl Op {
    fn sql(&self) -> String {
        match self {
            Op::Create(i) => format!("CREATE TABLE t{i} (a int, b int)"),
            Op::CreateAs(i, j) => format!("CREATE TABLE t{i} AS SELECT * FROM t{j}"),
            Op::Insert(i, v) => format!("INSERT INTO t{i} VALUES ({v}, {})", v + 1),
            Op::Delete(i) => format!("DELETE FROM t{i} WHERE a > 1"),
            Op::Drop(i) => format!("DROP TABLE t{i}"),
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    let tbl = 0u8..5;
    prop_oneof![
        tbl.clone().prop_map(Op::Create),
        (tbl.clone(), 0u8..5).prop_map(|(i, j)| Op::CreateAs(i, j)),
        (tbl.clone(), -5i64..5).prop_map(|(i, v)| Op::Insert(i, v)),
        tbl.clone().prop_map(Op::Delete),
        tbl.prop_map(Op::Drop),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(arb_op(), 2..9)
}

fn parse_all(ops: &[Op]) -> Vec<Statement> {
    ops.iter()
        .map(|op| parser::parse_statement(&op.sql()).expect("generated statement parses"))
        .collect()
}

/// A comparable image of the full catalog: every table's name, schema
/// and rows. Views are not generated, so tables are the whole state.
fn snapshot(db: &Database) -> Vec<(String, Vec<String>, Vec<Vec<Value>>)> {
    let mut out: Vec<_> = db
        .tables_snapshot()
        .into_iter()
        .map(|(name, t)| {
            let cols = t
                .schema
                .columns
                .iter()
                .map(|c| format!("{} {}", c.name, c.ty.sql_name()))
                .collect();
            (name, cols, t.rows.clone())
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn run_in_order(ops: &[Op], order: &[usize]) -> Vec<(String, Vec<String>, Vec<Vec<Value>>)> {
    let mut db = Database::new();
    for &k in order {
        // Failures (inserting into a dropped table, re-creating an
        // existing one, ...) are legitimate script outcomes: the final
        // catalog, not per-statement success, is what must commute.
        let _ = execute_sql(&mut db, &ops[k].sql());
    }
    snapshot(&db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every dependency edge points forward (`from < to`), so the
    /// statement graph is acyclic by construction, and the component
    /// count stays within [1, n].
    #[test]
    fn dependency_graph_is_acyclic(ops in arb_script()) {
        let stmts = parse_all(&ops);
        let analysis = analyze_script(&stmts, &CatalogSnapshot::empty());
        for e in &analysis.edges {
            prop_assert!(e.from < e.to, "edge {} -> {} not forward", e.from, e.to);
            prop_assert!(e.to < stmts.len());
        }
        prop_assert!(analysis.groups >= 1);
        prop_assert!(analysis.groups <= stmts.len());
    }

    /// Adjacent statements with disjoint read/write footprints commute:
    /// executing the script with the pair swapped yields an identical
    /// catalog (same tables, schemas and rows).
    #[test]
    fn independent_adjacent_statements_commute(ops in arb_script()) {
        let stmts = parse_all(&ops);
        let baseline: Vec<usize> = (0..ops.len()).collect();
        let reference = run_in_order(&ops, &baseline);
        for i in 0..stmts.len() - 1 {
            let a = statement_rwset(&stmts[i]);
            let b = statement_rwset(&stmts[i + 1]);
            if !a.independent(&b) {
                continue;
            }
            let mut swapped = baseline.clone();
            swapped.swap(i, i + 1);
            let alt = run_in_order(&ops, &swapped);
            prop_assert_eq!(
                &reference,
                &alt,
                "swapping independent statements {} and {} changed the catalog",
                i,
                i + 1
            );
        }
    }
}
