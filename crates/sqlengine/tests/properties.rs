//! Property-based tests for the engine: pretty-printer round-trips,
//! evaluator algebra, LIKE matching, and set-operation laws.

use proptest::prelude::*;
use sqlengine::ast::{Expr, Literal};
use sqlengine::exec::eval::like_match;
use sqlengine::parser::{parse_expr, parse_query};
use sqlengine::types::BinOp;
use sqlengine::{execute_script, execute_sql, Database, Value};

// ---------------------------------------------------------------------------
// Expression generation
// ---------------------------------------------------------------------------

/// A strategy for small scalar expressions built from integer literals,
/// arithmetic, comparisons and CASE — the printable/parsable core.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|i| Expr::Literal(Literal::Int(i))),
        Just(Expr::Literal(Literal::Null)),
        Just(Expr::Literal(Literal::Bool(true))),
        Just(Expr::Literal(Literal::Bool(false))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),]
            )
                .prop_map(|(a, b, op)| Expr::BinOp {
                    op,
                    lhs: Box::new(a),
                    rhs: Box::new(b)
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::BinOp {
                op: BinOp::Le,
                lhs: Box::new(a),
                rhs: Box::new(b)
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Case {
                operand: None,
                branches: vec![(
                    Expr::BinOp { op: BinOp::Gt, lhs: Box::new(c), rhs: Box::new(Expr::int(0)) },
                    t
                )],
                else_: Some(Box::new(e)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing an expression and re-parsing it yields the same AST.
    #[test]
    fn expr_display_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    /// Integer arithmetic in SQL matches a checked i128 oracle (when no
    /// NULL or overflow is involved).
    #[test]
    fn integer_arithmetic_matches_oracle(a in -1000i64..1000, b in -1000i64..1000) {
        let mut db = Database::new();
        let sum = execute_sql(&mut db, &format!("SELECT {a} + {b}"))
            .unwrap().into_table().unwrap().scalar().unwrap();
        prop_assert_eq!(sum, Value::Int(a + b));
        let prod = execute_sql(&mut db, &format!("SELECT {a} * {b}"))
            .unwrap().into_table().unwrap().scalar().unwrap();
        prop_assert_eq!(prod, Value::Int(a * b));
    }

    /// Chain semantics equal pairwise AND.
    #[test]
    fn chain_equals_pairwise(a in -10i64..10, b in -10i64..10, c in -10i64..10) {
        let mut db = Database::new();
        let chained = execute_sql(&mut db, &format!("SELECT {a} <= {b} <= {c}"))
            .unwrap().into_table().unwrap().scalar().unwrap();
        let pairwise = execute_sql(&mut db, &format!("SELECT {a} <= {b} AND {b} <= {c}"))
            .unwrap().into_table().unwrap().scalar().unwrap();
        prop_assert_eq!(chained, pairwise);
    }

    /// LIKE agrees with a straightforward recursive reference matcher.
    #[test]
    fn like_matches_reference(
        s in "[ab]{0,8}",
        p in "[ab%_]{0,6}",
    ) {
        fn reference(s: &[u8], p: &[u8]) -> bool {
            match (p.first(), s.first()) {
                (None, None) => true,
                (None, Some(_)) => false,
                (Some(b'%'), _) => {
                    reference(s, &p[1..]) || (!s.is_empty() && reference(&s[1..], p))
                }
                (Some(b'_'), Some(_)) => reference(&s[1..], &p[1..]),
                (Some(pc), Some(sc)) if pc == sc => reference(&s[1..], &p[1..]),
                _ => false,
            }
        }
        prop_assert_eq!(
            like_match(&s, &p),
            reference(s.as_bytes(), p.as_bytes()),
            "s={:?} p={:?}", s, p
        );
    }

    /// ORDER BY is a permutation: sorting never gains or loses rows, and
    /// the result is ordered.
    #[test]
    fn order_by_is_sorted_permutation(mut xs in prop::collection::vec(-50i64..50, 1..20)) {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE t (x int)").unwrap();
        for x in &xs {
            execute_sql(&mut db, &format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let t = execute_sql(&mut db, "SELECT x FROM t ORDER BY x")
            .unwrap().into_table().unwrap();
        let got: Vec<i64> = t.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        xs.sort_unstable();
        prop_assert_eq!(got, xs);
    }

    /// UNION is idempotent and UNION ALL counts duplicates.
    #[test]
    fn union_laws(xs in prop::collection::vec(0i64..10, 1..12)) {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE t (x int)").unwrap();
        for x in &xs {
            execute_sql(&mut db, &format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let distinct = execute_sql(&mut db,
            "SELECT count(*) FROM (SELECT x FROM t UNION SELECT x FROM t) u")
            .unwrap().into_table().unwrap().scalar().unwrap().as_i64().unwrap();
        let mut uniq = xs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(distinct as usize, uniq.len());
        let all = execute_sql(&mut db,
            "SELECT count(*) FROM (SELECT x FROM t UNION ALL SELECT x FROM t) u")
            .unwrap().into_table().unwrap().scalar().unwrap().as_i64().unwrap();
        prop_assert_eq!(all as usize, xs.len() * 2);
    }

    /// sum() over a group equals the oracle sum of its members.
    #[test]
    fn group_by_sums(pairs in prop::collection::vec((0i64..4, -20i64..20), 1..24)) {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE t (g int, x int)").unwrap();
        for (g, x) in &pairs {
            execute_sql(&mut db, &format!("INSERT INTO t VALUES ({g}, {x})")).unwrap();
        }
        let t = execute_sql(&mut db, "SELECT g, sum(x) FROM t GROUP BY g ORDER BY g")
            .unwrap().into_table().unwrap();
        use std::collections::BTreeMap;
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for (g, x) in &pairs {
            *oracle.entry(*g).or_insert(0) += x;
        }
        prop_assert_eq!(t.num_rows(), oracle.len());
        for (row, (g, total)) in t.rows.iter().zip(oracle) {
            prop_assert_eq!(row[0].as_i64().unwrap(), g);
            prop_assert_eq!(row[1].as_i64().unwrap(), total);
        }
    }

    /// Queries printed by the pretty-printer re-parse to the same AST.
    #[test]
    fn query_display_roundtrip(
        cols in prop::collection::vec("[a-d]", 1..3),
        n in 1i64..5,
        desc in any::<bool>(),
    ) {
        let proj = cols.join(", ");
        let sql = format!(
            "SELECT {proj} FROM t WHERE a < {n} ORDER BY a {} LIMIT {n}",
            if desc { "DESC" } else { "ASC" }
        );
        let q1 = parse_query(&sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }
}
