//! End-to-end SQL execution tests for the engine.

use sqlengine::{execute_script, execute_sql, Database, Table, Value};

fn db_with(setup: &str) -> Database {
    let mut db = Database::new();
    execute_script(&mut db, setup).unwrap();
    db
}

fn q(db: &mut Database, sql: &str) -> Table {
    execute_sql(db, sql).unwrap().into_table().unwrap()
}

fn cell(t: &Table, r: usize, c: usize) -> &Value {
    t.value(r, c)
}

fn ints(t: &Table, col: usize) -> Vec<i64> {
    t.rows.iter().map(|r| r[col].as_i64().unwrap()).collect()
}

#[test]
fn select_constant() {
    let mut db = Database::new();
    let t = q(&mut db, "SELECT 1 + 1 AS two, 'x' AS s");
    assert_eq!(cell(&t, 0, 0), &Value::Int(2));
    assert_eq!(cell(&t, 0, 1), &Value::text("x"));
    assert_eq!(t.schema.names(), vec!["two", "s"]);
}

#[test]
fn create_insert_select() {
    let mut db = db_with(
        "CREATE TABLE t (a int, b float8, c text);
         INSERT INTO t VALUES (1, 1.5, 'one'), (2, 2.5, 'two'), (3, NULL, 'three');",
    );
    let t = q(&mut db, "SELECT a, b FROM t WHERE a >= 2 ORDER BY a DESC");
    assert_eq!(ints(&t, 0), vec![3, 2]);
    assert!(cell(&t, 0, 1).is_null());
}

#[test]
fn insert_coerces_types() {
    let mut db = db_with("CREATE TABLE t (a float8, ts timestamp)");
    execute_sql(&mut db, "INSERT INTO t VALUES (1, '2017-07-02 07:00')").unwrap();
    let t = q(&mut db, "SELECT a, hour(ts) FROM t");
    assert_eq!(cell(&t, 0, 0), &Value::Float(1.0));
    assert_eq!(cell(&t, 0, 1), &Value::Int(7));
}

#[test]
fn update_and_delete() {
    let mut db =
        db_with("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1,10),(2,20),(3,30)");
    let r = execute_sql(&mut db, "UPDATE t SET b = b + a WHERE a > 1").unwrap();
    assert_eq!(r.row_count(), Some(2));
    let t = q(&mut db, "SELECT b FROM t ORDER BY a");
    assert_eq!(ints(&t, 0), vec![10, 22, 33]);
    let r = execute_sql(&mut db, "DELETE FROM t WHERE b = 22").unwrap();
    assert_eq!(r.row_count(), Some(1));
    assert_eq!(q(&mut db, "SELECT count(*) FROM t").scalar().unwrap(), Value::Int(2));
}

#[test]
fn update_swap_uses_old_row() {
    let mut db = db_with("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 2)");
    execute_sql(&mut db, "UPDATE t SET a = b, b = a").unwrap();
    let t = q(&mut db, "SELECT a, b FROM t");
    assert_eq!((ints(&t, 0)[0], ints(&t, 1)[0]), (2, 1));
}

#[test]
fn aggregates_global_and_grouped() {
    let mut db = db_with(
        "CREATE TABLE s (g text, x float8);
         INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 3), ('b', NULL), ('b', 5)",
    );
    let t = q(&mut db, "SELECT count(*), count(x), sum(x), avg(x), min(x), max(x) FROM s");
    assert_eq!(cell(&t, 0, 0), &Value::Int(5));
    assert_eq!(cell(&t, 0, 1), &Value::Int(4));
    assert_eq!(cell(&t, 0, 2), &Value::Float(11.0));
    assert_eq!(cell(&t, 0, 3), &Value::Float(2.75));
    assert_eq!(cell(&t, 0, 4), &Value::Float(1.0));
    assert_eq!(cell(&t, 0, 5), &Value::Float(5.0));

    let t =
        q(&mut db, "SELECT g, sum(x) AS total FROM s GROUP BY g HAVING count(x) >= 2 ORDER BY g");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(cell(&t, 0, 1), &Value::Float(3.0));
    assert_eq!(cell(&t, 1, 1), &Value::Float(8.0));
}

#[test]
fn aggregate_arithmetic_and_aliases() {
    let mut db = db_with("CREATE TABLE s (x int); INSERT INTO s VALUES (1),(2),(3)");
    let t = q(&mut db, "SELECT sum(x) * 2 + count(*) AS y FROM s");
    assert_eq!(cell(&t, 0, 0), &Value::Int(15));
    // ORDER BY an aggregate.
    let mut db = db_with(
        "CREATE TABLE s (g int, x int); INSERT INTO s VALUES (1,5),(1,5),(2,1),(2,1),(2,1)",
    );
    let t = q(&mut db, "SELECT g FROM s GROUP BY g ORDER BY count(*) DESC");
    assert_eq!(ints(&t, 0), vec![2, 1]);
}

#[test]
fn distinct_and_count_distinct() {
    let mut db = db_with("CREATE TABLE s (x int); INSERT INTO s VALUES (1),(1),(2),(2),(3)");
    let t = q(&mut db, "SELECT DISTINCT x FROM s ORDER BY x");
    assert_eq!(ints(&t, 0), vec![1, 2, 3]);
    let t = q(&mut db, "SELECT count(DISTINCT x) FROM s");
    assert_eq!(cell(&t, 0, 0), &Value::Int(3));
}

#[test]
fn stddev_and_variance() {
    let mut db =
        db_with("CREATE TABLE s (x float8); INSERT INTO s VALUES (2),(4),(4),(4),(5),(5),(7),(9)");
    let t = q(&mut db, "SELECT var_pop(x), stddev_pop(x), variance(x) FROM s");
    assert_eq!(cell(&t, 0, 0), &Value::Float(4.0));
    assert_eq!(cell(&t, 0, 1), &Value::Float(2.0));
    let sample_var = cell(&t, 0, 2).as_f64().unwrap();
    assert!((sample_var - 32.0 / 7.0).abs() < 1e-12);
}

#[test]
fn joins_inner_left_right_full() {
    let mut db = db_with(
        "CREATE TABLE a (id int, x text); INSERT INTO a VALUES (1,'a1'),(2,'a2'),(3,'a3');
         CREATE TABLE b (id int, y text); INSERT INTO b VALUES (2,'b2'),(3,'b3'),(4,'b4')",
    );
    let t = q(&mut db, "SELECT a.id, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.id");
    assert_eq!(ints(&t, 0), vec![2, 3]);
    let t = q(&mut db, "SELECT a.id, b.y FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id");
    assert_eq!(t.num_rows(), 3);
    assert!(cell(&t, 0, 1).is_null());
    let t = q(&mut db, "SELECT b.id FROM a RIGHT JOIN b ON a.id = b.id ORDER BY b.id");
    assert_eq!(ints(&t, 0), vec![2, 3, 4]);
    let t = q(&mut db, "SELECT count(*) FROM a FULL JOIN b ON a.id = b.id");
    assert_eq!(cell(&t, 0, 0), &Value::Int(4));
    let t = q(&mut db, "SELECT count(*) FROM a CROSS JOIN b");
    assert_eq!(cell(&t, 0, 0), &Value::Int(9));
    let t = q(&mut db, "SELECT count(*) FROM a, b WHERE a.id = b.id");
    assert_eq!(cell(&t, 0, 0), &Value::Int(2));
}

#[test]
fn join_using() {
    let mut db = db_with(
        "CREATE TABLE a (id int, x int); INSERT INTO a VALUES (1, 10);
         CREATE TABLE b (id int, y int); INSERT INTO b VALUES (1, 20)",
    );
    let t = q(&mut db, "SELECT a.x + b.y FROM a JOIN b USING (id)");
    assert_eq!(cell(&t, 0, 0), &Value::Int(30));
}

#[test]
fn join_on_non_equi_falls_back_to_nested_loop() {
    let mut db = db_with(
        "CREATE TABLE a (x int); INSERT INTO a VALUES (1),(2),(3);
         CREATE TABLE b (y int); INSERT INTO b VALUES (2),(3)",
    );
    let t = q(&mut db, "SELECT count(*) FROM a JOIN b ON a.x < b.y");
    assert_eq!(cell(&t, 0, 0), &Value::Int(3)); // (1,2),(1,3),(2,3)
}

#[test]
fn null_keys_never_join() {
    let mut db = db_with(
        "CREATE TABLE a (id int); INSERT INTO a VALUES (1), (NULL);
         CREATE TABLE b (id int); INSERT INTO b VALUES (1), (NULL)",
    );
    let t = q(&mut db, "SELECT count(*) FROM a JOIN b ON a.id = b.id");
    assert_eq!(cell(&t, 0, 0), &Value::Int(1));
}

#[test]
fn subqueries_scalar_in_exists() {
    let mut db = db_with(
        "CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2),(3);
         CREATE TABLE u (x int); INSERT INTO u VALUES (2),(3),(4)",
    );
    let t = q(&mut db, "SELECT (SELECT max(x) FROM t) + 1");
    assert_eq!(cell(&t, 0, 0), &Value::Int(4));
    let t = q(&mut db, "SELECT x FROM t WHERE x IN (SELECT x FROM u) ORDER BY x");
    assert_eq!(ints(&t, 0), vec![2, 3]);
    let t = q(&mut db, "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.x)");
    assert_eq!(t.num_rows(), 2);
    // Correlated scalar subquery.
    let t =
        q(&mut db, "SELECT x, (SELECT count(*) FROM u WHERE u.x <= t.x) AS c FROM t ORDER BY x");
    assert_eq!(ints(&t, 1), vec![0, 1, 2]);
}

#[test]
fn lateral_subquery() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2)");
    let t = q(&mut db, "SELECT t.x, d.y FROM t, LATERAL (SELECT t.x * 10 AS y) AS d ORDER BY t.x");
    assert_eq!(ints(&t, 1), vec![10, 20]);
}

#[test]
fn left_join_lateral_paper_shape() {
    // The shape used by the paper's LTI simulation listing.
    let mut db =
        db_with("CREATE TABLE data (ts int, v int); INSERT INTO data VALUES (1, 100), (2, 200)");
    let t = q(
        &mut db,
        "SELECT d.ts, n.v FROM data d LEFT JOIN LATERAL \
         (SELECT v FROM data WHERE data.ts = d.ts + 1) AS n ON true ORDER BY d.ts",
    );
    assert_eq!(cell(&t, 0, 1), &Value::Int(200));
    assert!(cell(&t, 1, 1).is_null());
}

#[test]
fn set_operations() {
    let mut db = Database::new();
    let t = q(&mut db, "SELECT 1 UNION SELECT 2 UNION SELECT 1 ORDER BY 1");
    assert_eq!(ints(&t, 0), vec![1, 2]);
    let t = q(&mut db, "SELECT 1 UNION ALL SELECT 1");
    assert_eq!(t.num_rows(), 2);
    let t = q(&mut db, "(VALUES (1),(2),(3)) INTERSECT (VALUES (2),(3),(4)) ORDER BY 1");
    assert_eq!(ints(&t, 0), vec![2, 3]);
    let t = q(&mut db, "(VALUES (1),(2),(2)) EXCEPT (VALUES (2)) ORDER BY 1");
    assert_eq!(ints(&t, 0), vec![1]);
    let t = q(&mut db, "(VALUES (2),(2),(1)) EXCEPT ALL (VALUES (2)) ORDER BY 1");
    assert_eq!(ints(&t, 0), vec![1, 2]);
}

#[test]
fn ctes_and_nesting() {
    let mut db = Database::new();
    let t =
        q(&mut db, "WITH a AS (SELECT 1 AS x), b AS (SELECT x + 1 AS y FROM a) SELECT y FROM b");
    assert_eq!(cell(&t, 0, 0), &Value::Int(2));
}

#[test]
fn recursive_cte_counts() {
    let mut db = Database::new();
    let t = q(
        &mut db,
        "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM t WHERE n < 10) \
         SELECT sum(n) FROM t",
    );
    assert_eq!(cell(&t, 0, 0), &Value::Int(55));
}

#[test]
fn recursive_cte_union_distinct_terminates_on_cycle() {
    let mut db = db_with(
        "CREATE TABLE edges (src int, dst int);
         INSERT INTO edges VALUES (1,2),(2,3),(3,1)",
    );
    let t = q(
        &mut db,
        "WITH RECURSIVE reach(n) AS (SELECT 1 UNION SELECT e.dst FROM edges e \
         JOIN reach r ON e.src = r.n) SELECT count(*) FROM reach",
    );
    assert_eq!(cell(&t, 0, 0), &Value::Int(3));
}

#[test]
fn recursive_cte_simulation_like_paper() {
    // x[n+1] = 0.5*x[n] + u[n] over a data table — the §4.4 pattern.
    let mut db = db_with(
        "CREATE TABLE u (step int, v float8);
         INSERT INTO u VALUES (0, 1.0), (1, 1.0), (2, 1.0)",
    );
    let t = q(
        &mut db,
        "WITH RECURSIVE sim(step, x) AS (
            SELECT 0, 10.0
            UNION ALL
            SELECT s.step + 1, 0.5 * s.x + n.v
            FROM sim s JOIN u n ON n.step = s.step
            WHERE s.step < 3)
         SELECT x FROM sim ORDER BY step",
    );
    let xs: Vec<f64> = t.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
    assert_eq!(xs, vec![10.0, 6.0, 4.0, 3.0]);
}

#[test]
fn views() {
    let mut db = db_with(
        "CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2),(3);
         CREATE VIEW big AS SELECT x FROM t WHERE x > 1",
    );
    let t = q(&mut db, "SELECT count(*) FROM big");
    assert_eq!(cell(&t, 0, 0), &Value::Int(2));
    // Views see current table contents.
    execute_sql(&mut db, "INSERT INTO t VALUES (5)").unwrap();
    let t = q(&mut db, "SELECT count(*) FROM big");
    assert_eq!(cell(&t, 0, 0), &Value::Int(3));
}

#[test]
fn order_by_variants() {
    let mut db =
        db_with("CREATE TABLE t (x int, y int); INSERT INTO t VALUES (1, 3),(2, NULL),(3, 1)");
    let t = q(&mut db, "SELECT x, y FROM t ORDER BY y");
    assert_eq!(ints(&t, 0), vec![3, 1, 2]); // NULL last by default
    let t = q(&mut db, "SELECT x, y FROM t ORDER BY y DESC");
    assert_eq!(ints(&t, 0), vec![2, 1, 3]); // NULL first on DESC
    let t = q(&mut db, "SELECT x, y FROM t ORDER BY y NULLS FIRST");
    assert_eq!(ints(&t, 0)[0], 2);
    let t = q(&mut db, "SELECT x, y AS z FROM t ORDER BY z DESC NULLS LAST");
    assert_eq!(ints(&t, 0), vec![1, 3, 2]);
    let t = q(&mut db, "SELECT x FROM t ORDER BY 1 DESC LIMIT 2 OFFSET 1");
    assert_eq!(ints(&t, 0), vec![2, 1]);
}

#[test]
fn order_by_input_column_not_in_projection() {
    let mut db =
        db_with("CREATE TABLE t (x int, y int); INSERT INTO t VALUES (1, 3),(2, 2),(3, 1)");
    let t = q(&mut db, "SELECT x FROM t ORDER BY y");
    assert_eq!(ints(&t, 0), vec![3, 2, 1]);
}

#[test]
fn wildcard_expansion() {
    let mut db = db_with(
        "CREATE TABLE a (x int); INSERT INTO a VALUES (1);
         CREATE TABLE b (y int); INSERT INTO b VALUES (2)",
    );
    let t = q(&mut db, "SELECT * FROM a, b");
    assert_eq!(t.schema.names(), vec!["x", "y"]);
    let t = q(&mut db, "SELECT b.* FROM a, b");
    assert_eq!(t.schema.names(), vec!["y"]);
    let t = q(&mut db, "SELECT *, x + 1 AS nxt FROM a");
    assert_eq!(t.schema.names(), vec!["x", "nxt"]);
}

#[test]
fn table_alias_column_rename() {
    let mut db = db_with("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 2)");
    let t = q(&mut db, "SELECT p.u + p.v FROM t AS p(u, v)");
    assert_eq!(cell(&t, 0, 0), &Value::Int(3));
}

#[test]
fn case_and_functions_in_queries() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2),(3)");
    let t = q(
        &mut db,
        "SELECT CASE WHEN x % 2 = 0 THEN 'even' ELSE 'odd' END AS parity FROM t ORDER BY x",
    );
    assert_eq!(cell(&t, 0, 0), &Value::text("odd"));
    assert_eq!(cell(&t, 1, 0), &Value::text("even"));
}

#[test]
fn timestamp_arithmetic_in_sql() {
    let mut db = db_with(
        "CREATE TABLE t (ts timestamp);
         INSERT INTO t VALUES ('2017-07-02 07:00'), ('2017-07-02 08:00')",
    );
    let t = q(&mut db, "SELECT ts + interval '1 hour' AS nxt FROM t ORDER BY ts LIMIT 1");
    assert_eq!(cell(&t, 0, 0).to_string(), "2017-07-02 08:00:00");
    let t = q(&mut db, "SELECT max(ts) - min(ts) FROM t");
    assert_eq!(cell(&t, 0, 0).to_string(), "1 hours");
}

#[test]
fn bit_strings_and_c_mask_filtering() {
    // The CDTE rewrite pattern from paper §4.3.
    let mut db = db_with(
        "CREATE TABLE l (v int, c_mask bit);
         INSERT INTO l VALUES (1, b'11'), (2, b'01'), (3, b'01')",
    );
    let t = q(&mut db, "SELECT v FROM l WHERE (c_mask & b'10') <> b'00' ORDER BY v");
    assert_eq!(ints(&t, 0), vec![1]);
    let t = q(&mut db, "SELECT v FROM l WHERE (c_mask & b'01') <> b'00' ORDER BY v");
    assert_eq!(ints(&t, 0), vec![1, 2, 3]);
}

#[test]
fn values_and_table_statements() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2)");
    let t = q(&mut db, "VALUES (1, 'a'), (2, 'b')");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.schema.names(), vec!["column1", "column2"]);
    let t = q(&mut db, "TABLE t");
    assert_eq!(t.num_rows(), 2);
}

#[test]
fn create_table_as() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2),(3)");
    execute_sql(&mut db, "CREATE TABLE t2 AS SELECT x * 2 AS y FROM t WHERE x > 1").unwrap();
    let t = q(&mut db, "SELECT sum(y) FROM t2");
    assert_eq!(cell(&t, 0, 0), &Value::Int(10));
}

#[test]
fn error_messages_are_helpful() {
    let mut db = db_with("CREATE TABLE t (x int)");
    let err = execute_sql(&mut db, "SELECT nope FROM t").unwrap_err();
    assert!(err.to_string().contains("nope"));
    let err = execute_sql(&mut db, "SELECT * FROM missing").unwrap_err();
    assert!(err.to_string().contains("missing"));
    let err = execute_sql(&mut db, "SELECT x, sum(x) FROM t GROUP BY ()").unwrap_err();
    let _ = err;
    let err = execute_sql(&mut db, "SOLVESELECT t(x) AS (SELECT 1 AS x) USING lp()").unwrap_err();
    assert!(err.to_string().contains("SolveDB+"));
}

#[test]
fn group_by_validation() {
    let mut db = db_with("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 2)");
    let err = execute_sql(&mut db, "SELECT a, b FROM t GROUP BY a").unwrap_err();
    assert!(err.to_string().contains("GROUP BY"));
    // Grouping by expression works when projected identically.
    let t = q(&mut db, "SELECT a + 1 FROM t GROUP BY a + 1");
    assert_eq!(t.num_rows(), 1);
}

#[test]
fn group_by_position_and_alias() {
    let mut db = db_with("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1,1),(1,2),(2,3)");
    let t = q(&mut db, "SELECT a AS k, sum(b) FROM t GROUP BY 1 ORDER BY 1");
    assert_eq!(t.num_rows(), 2);
    let t = q(&mut db, "SELECT a * 10 AS k, count(*) FROM t GROUP BY k ORDER BY k");
    assert_eq!(ints(&t, 0), vec![10, 20]);
}

#[test]
fn having_without_group_by() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2)");
    let t = q(&mut db, "SELECT sum(x) FROM t HAVING sum(x) > 10");
    assert_eq!(t.num_rows(), 0);
    let t = q(&mut db, "SELECT sum(x) FROM t HAVING sum(x) > 1");
    assert_eq!(t.num_rows(), 1);
}

#[test]
fn string_agg_and_bool_aggs() {
    let mut db =
        db_with("CREATE TABLE t (s text, b bool); INSERT INTO t VALUES ('a', true), ('b', false)");
    let t = q(&mut db, "SELECT string_agg(s, ','), bool_and(b), bool_or(b) FROM t");
    assert_eq!(cell(&t, 0, 0), &Value::text("a,b"));
    assert_eq!(cell(&t, 0, 1), &Value::Bool(false));
    assert_eq!(cell(&t, 0, 2), &Value::Bool(true));
}

#[test]
fn nested_cte_shadowing() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (100)");
    // The CTE shadows the base table.
    let t = q(&mut db, "WITH t AS (SELECT 1 AS x) SELECT x FROM t");
    assert_eq!(cell(&t, 0, 0), &Value::Int(1));
}

#[test]
fn union_type_unification() {
    let mut db = Database::new();
    let t = q(&mut db, "SELECT 1 AS v UNION ALL SELECT 2.5");
    assert_eq!(t.schema.columns[0].ty, sqlengine::DataType::Float);
}

#[test]
fn deep_expression_nesting() {
    let mut db = Database::new();
    let expr = "1".to_string() + &" + 1".repeat(100);
    let t = q(&mut db, &format!("SELECT {expr}"));
    assert_eq!(cell(&t, 0, 0), &Value::Int(101));
}

#[test]
fn scalar_subquery_multiple_rows_errors() {
    let mut db = db_with("CREATE TABLE t (x int); INSERT INTO t VALUES (1),(2)");
    assert!(execute_sql(&mut db, "SELECT (SELECT x FROM t)").is_err());
}
