//! Shared slow-query log formatting.
//!
//! Both binaries log statements slower than a configured threshold
//! (`solvedbd --slow-query-ms`, `solvedb --slow-query-ms`). The
//! threshold check and the line format live here so the log reads the
//! same from a local shell and the daemon, and so the literal
//! `slow query` marker CI greps for has exactly one definition.

use crate::trace::QueryTrace;
use std::time::Duration;

/// Everything known about a statement when deciding whether to log it.
#[derive(Debug, Clone, Copy)]
pub struct SlowQuery<'a> {
    /// Log source tag, e.g. `"solvedbd"` or `"solvedb"`.
    pub source: &'a str,
    /// Server session id, when the statement ran on a server session.
    pub session: Option<u64>,
    /// The statement text as submitted.
    pub sql: &'a str,
    /// The canonical statement shape (literals masked as `?`) — the
    /// same fingerprint `sdb_stat_statements` aggregates by.
    pub shape: Option<&'a str>,
    /// The statement's stage tree, when one was recorded.
    pub trace: Option<&'a QueryTrace>,
}

/// Format the slow-query log line for a statement that took `elapsed`,
/// or `None` when it beat the threshold. Callers print the returned
/// line to stderr.
pub fn slow_query_line(threshold_ms: u64, elapsed: Duration, q: &SlowQuery<'_>) -> Option<String> {
    let ms = elapsed.as_millis() as u64;
    if ms < threshold_ms {
        return None;
    }
    let mut line = format!("[{}] slow query", q.source);
    if let Some(id) = q.session {
        line.push_str(&format!(" on session {id}"));
    }
    line.push_str(&format!(": {ms} ms >= {threshold_ms} ms: {}", q.sql.trim()));
    if let Some(shape) = q.shape {
        line.push_str(&format!(" [shape: {shape}]"));
    }
    if let Some(t) = q.trace {
        let stages = t.render().join("; ");
        if !stages.is_empty() {
            line.push_str(&format!(" [{stages}]"));
        }
    }
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_statements_are_not_logged() {
        let q = SlowQuery {
            source: "solvedb",
            session: None,
            sql: "SELECT 1",
            shape: None,
            trace: None,
        };
        assert_eq!(slow_query_line(100, Duration::from_millis(5), &q), None);
    }

    #[test]
    fn line_carries_session_shape_and_marker() {
        let q = SlowQuery {
            source: "solvedbd",
            session: Some(3),
            sql: "  SELECT 42  ",
            shape: Some("SELECT ?"),
            trace: None,
        };
        let line = slow_query_line(0, Duration::from_millis(7), &q).unwrap();
        assert!(line.contains("slow query"), "{line}");
        assert!(line.contains("on session 3"));
        assert!(line.contains("7 ms >= 0 ms: SELECT 42"));
        assert!(line.contains("[shape: SELECT ?]"));
    }

    #[test]
    fn threshold_is_inclusive() {
        let q = SlowQuery {
            source: "solvedb",
            session: None,
            sql: "SELECT 1",
            shape: None,
            trace: None,
        };
        assert!(slow_query_line(10, Duration::from_millis(10), &q).is_some());
    }
}
