//! # obs — observability substrate for the SolveDB+ reproduction
//!
//! A dependency-free tracing and metrics layer shared by the SQL
//! engine, the solver framework, the network server and the bench
//! harness. Three pieces:
//!
//! * **Stage tracing** — [`Trace`] records a per-query tree of timed
//!   stages (parse → plan → rewrite → instantiate → solve →
//!   post-process) plus per-solver telemetry, and freezes into a
//!   plain-data [`QueryTrace`] that can be rendered, shipped over the
//!   wire, or aggregated.
//! * **Solver telemetry** — [`SolverStats`]: simplex iterations, MIP
//!   branch-and-bound nodes explored/pruned with the incumbent
//!   trajectory, and evaluation/restart counts for the derivative-free
//!   solvers.
//! * **Registries** — [`MetricsRegistry`] accumulates per-statement-
//!   shape and per-solver cumulative counters (backing the
//!   `sdb_stat_statements` / `sdb_solver_stats` virtual tables);
//!   [`SessionRegistry`] tracks live server sessions for
//!   `sdb_sessions`.
//!
//! Everything here is `std`-only, mirroring the repo's vendored-deps
//! policy.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hist;
pub mod metrics;
pub mod progress;
pub mod slowlog;
pub mod trace;

pub use hist::Histogram;
pub use metrics::{
    MetricsRegistry, SessionCounters, SessionRegistry, SessionSnapshot, SolverAgg, StatementStats,
};
pub use progress::ProgressEvent;
pub use slowlog::{slow_query_line, SlowQuery};
pub use trace::{timed, QueryTrace, SolverStats, Span, Stage, Trace};
