//! Log-bucketed latency histogram.
//!
//! [`Histogram`] records `u64` samples (nanoseconds, by convention)
//! into fixed-size logarithmic buckets: values below 8 are exact, and
//! every power-of-two range above that is split into 8 linear
//! sub-buckets, bounding the relative quantile error at 12.5%. The
//! whole structure is a flat `[u64; 496]` plus three scalars — no
//! allocation, O(1) record, mergeable — so it can sit inside every
//! statement-shape and pipeline-stage entry of the metrics registry
//! without a memory knob.
//!
//! Quantiles are read back as the *upper bound* of the bucket holding
//! the requested rank (capped at the exact observed maximum), which is
//! the same contract Prometheus histograms expose.

/// log2 of the number of linear sub-buckets per power-of-two range.
const SUBBITS: u32 = 3;
/// Sub-buckets per power-of-two range.
const SUBCOUNT: u64 = 1 << SUBBITS;
/// Total buckets: 8 exact low buckets + 8 per group for msb 3..=63.
pub const NBUCKETS: usize = (SUBCOUNT as usize) * (64 - SUBBITS as usize + 1);

/// Fixed-memory mergeable histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NBUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; NBUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket index for a sample value.
fn bucket_index(v: u64) -> usize {
    if v < SUBCOUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUBBITS)) & (SUBCOUNT - 1);
    (((msb - SUBBITS) as u64 * SUBCOUNT) + SUBCOUNT + sub) as usize
}

/// Inclusive `[lower, upper]` value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUBCOUNT {
        return (i, i);
    }
    let group = (i - SUBCOUNT) / SUBCOUNT; // == msb - SUBBITS
    let sub = (i - SUBCOUNT) % SUBCOUNT;
    let lower = (SUBCOUNT + sub) << group;
    let width = 1u64 << group;
    (lower, lower.saturating_add(width - 1))
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of rank `ceil(q * count)`, capped at the
    /// exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Occupied buckets as `(upper_bound, count)` pairs in ascending
    /// bound order — the raw material for a Prometheus exposition
    /// (`_bucket{le=...}` series are the cumulative sums of these).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Oracle: exact quantile over a sorted copy, using the same
    /// rank convention as `Histogram::quantile`.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for i in 0..8 {
            assert_eq!(h.counts[i], 1, "bucket {i}");
        }
        assert_eq!(h.sum(), 28);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_bounds_cover_the_u64_line_without_gaps() {
        // Consecutive buckets tile the line: each lower bound is the
        // previous upper bound + 1.
        let mut prev_upper: Option<u64> = None;
        for i in 0..NBUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            if let Some(p) = prev_upper {
                if p < u64::MAX {
                    assert_eq!(lo, p + 1, "gap before bucket {i}");
                }
            } else {
                assert_eq!(lo, 0);
            }
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX));
    }

    #[test]
    fn relative_error_is_bounded() {
        // For any v >= 8 the bucket upper bound overestimates v by at
        // most 12.5%.
        for v in [8u64, 100, 1_000, 65_537, 1_000_000_007, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            assert!((hi - lo) as f64 / lo as f64 <= 0.125 + 1e-12, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1ms .. 1000ms in "microseconds"
        }
        let p50 = h.p50();
        let p99 = h.p99();
        // Within the 12.5% bucket error of the true values.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 <= 0.125, "p50={p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 <= 0.125, "p99={p99}");
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 9, 1000, 77, 123_456] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 9, 999_999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn nonzero_buckets_sum_to_count() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 50, 1_000_000] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), h.count());
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    proptest! {
        #[test]
        fn prop_bucket_bounds_contain_the_value(v in any::<u64>()) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            prop_assert!(lo <= v && v <= hi, "v={} lo={} hi={}", v, lo, hi);
        }

        #[test]
        fn prop_quantile_lands_in_the_oracle_bucket(
            mut vs in proptest::collection::vec(0u64..2_000_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new();
            for &v in &vs {
                h.record(v);
            }
            vs.sort_unstable();
            let want = oracle_quantile(&vs, q);
            let got = h.quantile(q);
            // The histogram answers with the upper bound of the bucket
            // holding the oracle sample (possibly capped at max).
            let (lo, hi) = bucket_bounds(bucket_index(want));
            prop_assert!(
                got >= lo && got <= hi,
                "q={} want={} got={} bucket=[{},{}]", q, want, got, lo, hi
            );
        }

        #[test]
        fn prop_quantiles_are_monotone(
            vs in proptest::collection::vec(0u64..1_000_000_000, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let mut h = Histogram::new();
            for &v in &vs {
                h.record(v);
            }
            let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(h.quantile(lo_q) <= h.quantile(hi_q));
        }

        #[test]
        fn prop_merge_is_associative_and_matches_pooled(
            xs in proptest::collection::vec(0u64..1_000_000_000, 0..60),
            ys in proptest::collection::vec(0u64..1_000_000_000, 0..60),
            zs in proptest::collection::vec(0u64..1_000_000_000, 0..60),
        ) {
            let mk = |vals: &[u64]| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (x, y, z) = (mk(&xs), mk(&ys), mk(&zs));
            // (x + y) + z
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            // x + (y + z)
            let mut yz = y.clone();
            yz.merge(&z);
            let mut right = x.clone();
            right.merge(&yz);
            prop_assert_eq!(&left, &right);
            // and both equal pooling the raw samples
            let mut pooled: Vec<u64> = Vec::new();
            pooled.extend(&xs);
            pooled.extend(&ys);
            pooled.extend(&zs);
            prop_assert_eq!(&left, &mk(&pooled));
        }
    }
}
