//! Cumulative metrics registries.
//!
//! [`MetricsRegistry`] aggregates per-statement-shape execution
//! counters and per-solver telemetry across the lifetime of a session
//! (or, on the server, across all sessions — the registry is shared
//! through an `Arc`). [`SessionRegistry`] tracks live server sessions.
//! Both are read back through the `sdb_*` virtual tables.

use crate::hist::Histogram;
use crate::trace::SolverStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Cap on distinct statement shapes kept, to bound memory on adversarial
/// workloads. Once full, new shapes are dropped (existing keep updating).
const MAX_STATEMENT_SHAPES: usize = 10_000;

/// Cap on distinct pipeline-stage names kept. Stage names come from the
/// engine, not users, so this is a backstop rather than a likely limit.
const MAX_STAGE_NAMES: usize = 1_000;

/// Cumulative counters for one statement shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementStats {
    /// Number of completed executions (successful or not).
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    pub total_nanos: u64,
    pub min_nanos: u64,
    pub max_nanos: u64,
    /// Total rows returned across calls.
    pub rows: u64,
    /// Fingerprint of the optimized logical plan from the most recent
    /// execution that ran on the planned (columnar) executor; `None`
    /// when every recorded call used the row interpreter.
    pub last_plan: Option<u64>,
    /// Executions served by the plan cache.
    pub cache_hits: u64,
    /// Cache-eligible executions that had to plan fresh.
    pub cache_misses: u64,
    /// Latency distribution across calls (p50/p95/p99 in
    /// `sdb_stat_statements` read from here).
    pub latency: Histogram,
}

/// Cumulative telemetry for one (solver, method) pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverAgg {
    pub runs: u64,
    pub total_nanos: u64,
    pub iterations: u64,
    pub nodes_explored: u64,
    pub nodes_pruned: u64,
    pub evaluations: u64,
    pub restarts: u64,
    pub presolve_cols: u64,
    pub presolve_rows: u64,
    pub presolve_bounds: u64,
    pub last_objective: Option<f64>,
    /// Incumbent trajectory `(node index, objective)` of the most
    /// recent run that produced one (MIP solves). Empty otherwise.
    pub last_incumbents: Vec<(u64, f64)>,
    /// Independent matrix blocks of the most recent run (SD019's count
    /// at the solver level). Zero when unknown.
    pub blocks: u64,
    /// Row-class census of the most recent run that reported one.
    pub last_matrix_class: String,
    /// Integrality proof of the most recent run that reported one.
    pub last_integrality_proof: String,
}

#[derive(Debug, Default)]
struct MetricsInner {
    statements: HashMap<String, StatementStats>,
    solvers: HashMap<(String, String), SolverAgg>,
    /// Latency distribution per pipeline stage (`parse`, `plan`,
    /// `solve/compile`, `wal.append`, ... — slash-joined stage paths
    /// from the per-query trace trees).
    stages: HashMap<String, Histogram>,
}

/// Thread-safe cumulative metrics store.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsInner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        // Metrics must never take the engine down: recover from poison.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one statement execution under its canonical shape.
    pub fn record_statement(&self, shape: &str, nanos: u64, rows: u64, errored: bool) {
        self.record_statement_plan(shape, nanos, rows, errored, None);
    }

    /// Record one statement execution, noting the optimized-plan
    /// fingerprint when the planned executor ran it.
    pub fn record_statement_plan(
        &self,
        shape: &str,
        nanos: u64,
        rows: u64,
        errored: bool,
        plan: Option<u64>,
    ) {
        self.record_statement_exec(shape, nanos, rows, errored, plan, None);
    }

    /// Record one statement execution including its plan-cache outcome
    /// (`Some(true)` = hit, `Some(false)` = planned fresh, `None` = not
    /// cache-eligible).
    pub fn record_statement_exec(
        &self,
        shape: &str,
        nanos: u64,
        rows: u64,
        errored: bool,
        plan: Option<u64>,
        cache: Option<bool>,
    ) {
        let mut inner = self.lock();
        if !inner.statements.contains_key(shape) && inner.statements.len() >= MAX_STATEMENT_SHAPES {
            return;
        }
        let st = inner.statements.entry(shape.to_string()).or_default();
        st.calls += 1;
        if errored {
            st.errors += 1;
        }
        st.total_nanos += nanos;
        st.min_nanos = if st.calls == 1 { nanos } else { st.min_nanos.min(nanos) };
        st.max_nanos = st.max_nanos.max(nanos);
        st.rows += rows;
        if plan.is_some() {
            st.last_plan = plan;
        }
        match cache {
            Some(true) => st.cache_hits += 1,
            Some(false) => st.cache_misses += 1,
            None => {}
        }
        st.latency.record(nanos);
    }

    /// Record one timed pipeline-stage execution (`name` is the
    /// slash-joined stage path, e.g. `solve/compile`).
    pub fn record_stage(&self, name: &str, nanos: u64) {
        let mut inner = self.lock();
        if !inner.stages.contains_key(name) && inner.stages.len() >= MAX_STAGE_NAMES {
            return;
        }
        inner.stages.entry(name.to_string()).or_default().record(nanos);
    }

    /// Record a whole trace tree: every stage (recursively, with
    /// slash-joined paths) lands in its own histogram.
    pub fn record_trace_stages(&self, trace: &crate::trace::QueryTrace) {
        fn walk(reg: &MetricsRegistry, prefix: &str, stages: &[crate::trace::Stage]) {
            for s in stages {
                let path =
                    if prefix.is_empty() { s.name.clone() } else { format!("{prefix}/{}", s.name) };
                reg.record_stage(&path, s.nanos);
                walk(reg, &path, &s.children);
            }
        }
        walk(self, "", &trace.stages);
    }

    /// Fold one solver invocation's telemetry into the aggregate.
    pub fn record_solver(&self, stats: &SolverStats, nanos: u64) {
        let mut inner = self.lock();
        let agg = inner.solvers.entry((stats.solver.clone(), stats.method.clone())).or_default();
        agg.runs += 1;
        agg.total_nanos += nanos;
        agg.iterations += stats.iterations;
        agg.nodes_explored += stats.nodes_explored;
        agg.nodes_pruned += stats.nodes_pruned;
        agg.evaluations += stats.evaluations;
        agg.restarts += stats.restarts;
        agg.presolve_cols += stats.presolve_cols;
        agg.presolve_rows += stats.presolve_rows;
        agg.presolve_bounds += stats.presolve_bounds;
        if stats.objective.is_some() {
            agg.last_objective = stats.objective;
        }
        if !stats.incumbents.is_empty() {
            agg.last_incumbents = stats.incumbents.clone();
        }
        if stats.blocks > 0 {
            agg.blocks = stats.blocks;
        }
        if !stats.matrix_class.is_empty() {
            agg.last_matrix_class = stats.matrix_class.clone();
        }
        if !stats.integrality_proof.is_empty() {
            agg.last_integrality_proof = stats.integrality_proof.clone();
        }
    }

    /// Snapshot of statement stats, sorted by total time descending.
    pub fn statements(&self) -> Vec<(String, StatementStats)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.statements.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| b.1.total_nanos.cmp(&a.1.total_nanos).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Snapshot of solver aggregates, sorted by (solver, method).
    pub fn solvers(&self) -> Vec<((String, String), SolverAgg)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.solvers.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Snapshot of per-stage latency histograms, sorted by stage path.
    pub fn stages(&self) -> Vec<(String, Histogram)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.stages.iter().map(|(k, h)| (k.clone(), h.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All statement latencies pooled into one distribution (the
    /// `/metrics` statement histogram).
    pub fn statement_latency(&self) -> Histogram {
        let inner = self.lock();
        let mut pooled = Histogram::new();
        for st in inner.statements.values() {
            pooled.merge(&st.latency);
        }
        pooled
    }

    /// Drop all accumulated data (used by tests).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.statements.clear();
        inner.solvers.clear();
        inner.stages.clear();
    }
}

/// Live counters for one server session. Atomics so the I/O path can
/// bump bytes without locking.
#[derive(Debug)]
pub struct SessionCounters {
    pub id: u64,
    started: Instant,
    pub queries: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Kill switch: set by `CANCEL <session>` (from any session), read
    /// cooperatively by the owning session's running solve at progress
    /// points.
    kill: AtomicBool,
}

impl SessionCounters {
    fn new(id: u64) -> SessionCounters {
        SessionCounters {
            id,
            started: Instant::now(),
            queries: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            kill: AtomicBool::new(false),
        }
    }

    /// Ask the session's running solve to stop at its next progress
    /// point.
    pub fn request_kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
    }

    pub fn kill_requested(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }

    /// Re-arm after a kill has been delivered, so the session stays
    /// usable for the next statement.
    pub fn clear_kill(&self) {
        self.kill.store(false, Ordering::SeqCst);
    }

    pub fn add_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub fn uptime_nanos(&self) -> u64 {
        (self.started.elapsed().as_nanos() as u64).max(1)
    }
}

/// Point-in-time view of one live session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub uptime_nanos: u64,
    pub queries: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// True when a kill has been requested but not yet delivered.
    pub kill: bool,
}

/// Registry of live server sessions, keyed by session id.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<HashMap<u64, Arc<SessionCounters>>>,
}

impl SessionRegistry {
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Arc<SessionCounters>>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a session and get its live counters.
    pub fn open(&self, id: u64) -> Arc<SessionCounters> {
        let counters = Arc::new(SessionCounters::new(id));
        self.lock().insert(id, Arc::clone(&counters));
        counters
    }

    /// Remove a closed session.
    pub fn close(&self, id: u64) {
        self.lock().remove(&id);
    }

    /// Look up a live session's counters (the `CANCEL` path).
    pub fn get(&self, id: u64) -> Option<Arc<SessionCounters>> {
        self.lock().get(&id).cloned()
    }

    /// Snapshot of all live sessions, ordered by id.
    pub fn snapshot(&self) -> Vec<SessionSnapshot> {
        let mut v: Vec<SessionSnapshot> = self
            .lock()
            .values()
            .map(|c| SessionSnapshot {
                id: c.id,
                uptime_nanos: c.uptime_nanos(),
                queries: c.queries.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
                kill: c.kill_requested(),
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_aggregates_into_one_entry() {
        let m = MetricsRegistry::new();
        m.record_statement("SELECT ?", 100, 1, false);
        m.record_statement("SELECT ?", 300, 2, false);
        let stmts = m.statements();
        assert_eq!(stmts.len(), 1);
        let (shape, s) = &stmts[0];
        assert_eq!(shape, "SELECT ?");
        assert_eq!(s.calls, 2);
        assert_eq!(s.errors, 0);
        assert_eq!(s.total_nanos, 400);
        assert_eq!(s.min_nanos, 100);
        assert_eq!(s.max_nanos, 300);
        assert_eq!(s.rows, 3);
    }

    #[test]
    fn errors_are_counted_separately() {
        let m = MetricsRegistry::new();
        m.record_statement("SELECT ?", 50, 0, true);
        let (_, s) = &m.statements()[0];
        assert_eq!((s.calls, s.errors), (1, 1));
    }

    #[test]
    fn statements_sorted_by_total_time() {
        let m = MetricsRegistry::new();
        m.record_statement("fast", 10, 0, false);
        m.record_statement("slow", 1000, 0, false);
        let stmts = m.statements();
        assert_eq!(stmts[0].0, "slow");
        assert_eq!(stmts[1].0, "fast");
    }

    #[test]
    fn solver_aggregation_sums_counters() {
        let m = MetricsRegistry::new();
        let st = SolverStats {
            solver: "solverlp".into(),
            method: "mip".into(),
            iterations: 7,
            nodes_explored: 3,
            nodes_pruned: 1,
            objective: Some(2.0),
            ..SolverStats::default()
        };
        m.record_solver(&st, 500);
        m.record_solver(&st, 700);
        let solvers = m.solvers();
        assert_eq!(solvers.len(), 1);
        let ((name, method), agg) = &solvers[0];
        assert_eq!((name.as_str(), method.as_str()), ("solverlp", "mip"));
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.total_nanos, 1200);
        assert_eq!(agg.iterations, 14);
        assert_eq!(agg.nodes_explored, 6);
        assert_eq!(agg.last_objective, Some(2.0));
    }

    #[test]
    fn statement_latency_histogram_tracks_calls() {
        let m = MetricsRegistry::new();
        m.record_statement("SELECT ?", 1_000, 1, false);
        m.record_statement("SELECT ?", 3_000, 1, false);
        let (_, s) = &m.statements()[0];
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.max(), 3_000);
        let pooled = m.statement_latency();
        assert_eq!(pooled.count(), 2);
    }

    #[test]
    fn stage_histograms_accumulate_by_path() {
        let m = MetricsRegistry::new();
        m.record_stage("solve", 500);
        m.record_stage("solve", 700);
        m.record_stage("parse", 10);
        let stages = m.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "parse");
        assert_eq!(stages[1].0, "solve");
        assert_eq!(stages[1].1.count(), 2);
        m.reset();
        assert!(m.stages().is_empty());
    }

    #[test]
    fn trace_stages_record_recursively_with_paths() {
        let t = crate::Trace::new();
        {
            let _outer = t.span("solve");
            t.record("compile", 42);
        }
        let qt = t.finish();
        let m = MetricsRegistry::new();
        m.record_trace_stages(&qt);
        let stages = m.stages();
        let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["solve", "solve/compile"]);
    }

    #[test]
    fn incumbent_trajectory_survives_aggregation() {
        let m = MetricsRegistry::new();
        let st = SolverStats {
            solver: "solverlp".into(),
            method: "bb".into(),
            incumbents: vec![(3, 4.0), (9, 2.5)],
            ..SolverStats::default()
        };
        m.record_solver(&st, 100);
        // A later run without incumbents must not erase the trajectory.
        let bare = SolverStats {
            solver: "solverlp".into(),
            method: "bb".into(),
            ..SolverStats::default()
        };
        m.record_solver(&bare, 100);
        let (_, agg) = &m.solvers()[0];
        assert_eq!(agg.last_incumbents, vec![(3, 4.0), (9, 2.5)]);
    }

    #[test]
    fn kill_flag_round_trips_through_registry() {
        let r = SessionRegistry::new();
        let _c = r.open(5);
        assert!(!r.snapshot()[0].kill);
        r.get(5).unwrap().request_kill();
        assert!(r.snapshot()[0].kill);
        assert!(r.get(5).unwrap().kill_requested());
        r.get(5).unwrap().clear_kill();
        assert!(!r.get(5).unwrap().kill_requested());
        assert!(r.get(99).is_none());
    }

    #[test]
    fn session_registry_tracks_open_and_close() {
        let r = SessionRegistry::new();
        let c = r.open(7);
        c.add_query();
        c.add_bytes_in(10);
        c.add_bytes_out(20);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, 7);
        assert_eq!(snap[0].queries, 1);
        assert_eq!(snap[0].bytes_in, 10);
        assert_eq!(snap[0].bytes_out, 20);
        assert!(snap[0].uptime_nanos >= 1);
        r.close(7);
        assert!(r.is_empty());
    }
}
