//! Cumulative metrics registries.
//!
//! [`MetricsRegistry`] aggregates per-statement-shape execution
//! counters and per-solver telemetry across the lifetime of a session
//! (or, on the server, across all sessions — the registry is shared
//! through an `Arc`). [`SessionRegistry`] tracks live server sessions.
//! Both are read back through the `sdb_*` virtual tables.

use crate::trace::SolverStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Cap on distinct statement shapes kept, to bound memory on adversarial
/// workloads. Once full, new shapes are dropped (existing keep updating).
const MAX_STATEMENT_SHAPES: usize = 10_000;

/// Cumulative counters for one statement shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementStats {
    /// Number of completed executions (successful or not).
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    pub total_nanos: u64,
    pub min_nanos: u64,
    pub max_nanos: u64,
    /// Total rows returned across calls.
    pub rows: u64,
    /// Fingerprint of the optimized logical plan from the most recent
    /// execution that ran on the planned (columnar) executor; `None`
    /// when every recorded call used the row interpreter.
    pub last_plan: Option<u64>,
    /// Executions served by the plan cache.
    pub cache_hits: u64,
    /// Cache-eligible executions that had to plan fresh.
    pub cache_misses: u64,
}

/// Cumulative telemetry for one (solver, method) pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverAgg {
    pub runs: u64,
    pub total_nanos: u64,
    pub iterations: u64,
    pub nodes_explored: u64,
    pub nodes_pruned: u64,
    pub evaluations: u64,
    pub restarts: u64,
    pub presolve_cols: u64,
    pub presolve_rows: u64,
    pub presolve_bounds: u64,
    pub last_objective: Option<f64>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    statements: HashMap<String, StatementStats>,
    solvers: HashMap<(String, String), SolverAgg>,
}

/// Thread-safe cumulative metrics store.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsInner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        // Metrics must never take the engine down: recover from poison.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one statement execution under its canonical shape.
    pub fn record_statement(&self, shape: &str, nanos: u64, rows: u64, errored: bool) {
        self.record_statement_plan(shape, nanos, rows, errored, None);
    }

    /// Record one statement execution, noting the optimized-plan
    /// fingerprint when the planned executor ran it.
    pub fn record_statement_plan(
        &self,
        shape: &str,
        nanos: u64,
        rows: u64,
        errored: bool,
        plan: Option<u64>,
    ) {
        self.record_statement_exec(shape, nanos, rows, errored, plan, None);
    }

    /// Record one statement execution including its plan-cache outcome
    /// (`Some(true)` = hit, `Some(false)` = planned fresh, `None` = not
    /// cache-eligible).
    pub fn record_statement_exec(
        &self,
        shape: &str,
        nanos: u64,
        rows: u64,
        errored: bool,
        plan: Option<u64>,
        cache: Option<bool>,
    ) {
        let mut inner = self.lock();
        if !inner.statements.contains_key(shape) && inner.statements.len() >= MAX_STATEMENT_SHAPES {
            return;
        }
        let st = inner.statements.entry(shape.to_string()).or_default();
        st.calls += 1;
        if errored {
            st.errors += 1;
        }
        st.total_nanos += nanos;
        st.min_nanos = if st.calls == 1 { nanos } else { st.min_nanos.min(nanos) };
        st.max_nanos = st.max_nanos.max(nanos);
        st.rows += rows;
        if plan.is_some() {
            st.last_plan = plan;
        }
        match cache {
            Some(true) => st.cache_hits += 1,
            Some(false) => st.cache_misses += 1,
            None => {}
        }
    }

    /// Fold one solver invocation's telemetry into the aggregate.
    pub fn record_solver(&self, stats: &SolverStats, nanos: u64) {
        let mut inner = self.lock();
        let agg = inner.solvers.entry((stats.solver.clone(), stats.method.clone())).or_default();
        agg.runs += 1;
        agg.total_nanos += nanos;
        agg.iterations += stats.iterations;
        agg.nodes_explored += stats.nodes_explored;
        agg.nodes_pruned += stats.nodes_pruned;
        agg.evaluations += stats.evaluations;
        agg.restarts += stats.restarts;
        agg.presolve_cols += stats.presolve_cols;
        agg.presolve_rows += stats.presolve_rows;
        agg.presolve_bounds += stats.presolve_bounds;
        if stats.objective.is_some() {
            agg.last_objective = stats.objective;
        }
    }

    /// Snapshot of statement stats, sorted by total time descending.
    pub fn statements(&self) -> Vec<(String, StatementStats)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.statements.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| b.1.total_nanos.cmp(&a.1.total_nanos).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Snapshot of solver aggregates, sorted by (solver, method).
    pub fn solvers(&self) -> Vec<((String, String), SolverAgg)> {
        let inner = self.lock();
        let mut v: Vec<_> = inner.solvers.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Drop all accumulated data (used by tests).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.statements.clear();
        inner.solvers.clear();
    }
}

/// Live counters for one server session. Atomics so the I/O path can
/// bump bytes without locking.
#[derive(Debug)]
pub struct SessionCounters {
    pub id: u64,
    started: Instant,
    pub queries: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

impl SessionCounters {
    fn new(id: u64) -> SessionCounters {
        SessionCounters {
            id,
            started: Instant::now(),
            queries: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        }
    }

    pub fn add_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub fn uptime_nanos(&self) -> u64 {
        (self.started.elapsed().as_nanos() as u64).max(1)
    }
}

/// Point-in-time view of one live session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub uptime_nanos: u64,
    pub queries: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

/// Registry of live server sessions, keyed by session id.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<HashMap<u64, Arc<SessionCounters>>>,
}

impl SessionRegistry {
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Arc<SessionCounters>>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a session and get its live counters.
    pub fn open(&self, id: u64) -> Arc<SessionCounters> {
        let counters = Arc::new(SessionCounters::new(id));
        self.lock().insert(id, Arc::clone(&counters));
        counters
    }

    /// Remove a closed session.
    pub fn close(&self, id: u64) {
        self.lock().remove(&id);
    }

    /// Snapshot of all live sessions, ordered by id.
    pub fn snapshot(&self) -> Vec<SessionSnapshot> {
        let mut v: Vec<SessionSnapshot> = self
            .lock()
            .values()
            .map(|c| SessionSnapshot {
                id: c.id,
                uptime_nanos: c.uptime_nanos(),
                queries: c.queries.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_aggregates_into_one_entry() {
        let m = MetricsRegistry::new();
        m.record_statement("SELECT ?", 100, 1, false);
        m.record_statement("SELECT ?", 300, 2, false);
        let stmts = m.statements();
        assert_eq!(stmts.len(), 1);
        let (shape, s) = &stmts[0];
        assert_eq!(shape, "SELECT ?");
        assert_eq!(s.calls, 2);
        assert_eq!(s.errors, 0);
        assert_eq!(s.total_nanos, 400);
        assert_eq!(s.min_nanos, 100);
        assert_eq!(s.max_nanos, 300);
        assert_eq!(s.rows, 3);
    }

    #[test]
    fn errors_are_counted_separately() {
        let m = MetricsRegistry::new();
        m.record_statement("SELECT ?", 50, 0, true);
        let (_, s) = &m.statements()[0];
        assert_eq!((s.calls, s.errors), (1, 1));
    }

    #[test]
    fn statements_sorted_by_total_time() {
        let m = MetricsRegistry::new();
        m.record_statement("fast", 10, 0, false);
        m.record_statement("slow", 1000, 0, false);
        let stmts = m.statements();
        assert_eq!(stmts[0].0, "slow");
        assert_eq!(stmts[1].0, "fast");
    }

    #[test]
    fn solver_aggregation_sums_counters() {
        let m = MetricsRegistry::new();
        let st = SolverStats {
            solver: "solverlp".into(),
            method: "mip".into(),
            iterations: 7,
            nodes_explored: 3,
            nodes_pruned: 1,
            objective: Some(2.0),
            ..SolverStats::default()
        };
        m.record_solver(&st, 500);
        m.record_solver(&st, 700);
        let solvers = m.solvers();
        assert_eq!(solvers.len(), 1);
        let ((name, method), agg) = &solvers[0];
        assert_eq!((name.as_str(), method.as_str()), ("solverlp", "mip"));
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.total_nanos, 1200);
        assert_eq!(agg.iterations, 14);
        assert_eq!(agg.nodes_explored, 6);
        assert_eq!(agg.last_objective, Some(2.0));
    }

    #[test]
    fn session_registry_tracks_open_and_close() {
        let r = SessionRegistry::new();
        let c = r.open(7);
        c.add_query();
        c.add_bytes_in(10);
        c.add_bytes_out(20);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, 7);
        assert_eq!(snap[0].queries, 1);
        assert_eq!(snap[0].bytes_in, 10);
        assert_eq!(snap[0].bytes_out, 20);
        assert!(snap[0].uptime_nanos >= 1);
        r.close(7);
        assert!(r.is_empty());
    }
}
