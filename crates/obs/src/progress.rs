//! Live solve-progress events.
//!
//! A running solver emits [`ProgressEvent`]s at bounded intervals
//! through its `SolveContext` (the core crate throttles emission and
//! checks the watchdog at the same points). Consumers are the server —
//! which streams them to v4 clients as `PROGRESS` frames — and the CLI
//! status line. The struct is plain data so it can cross the wire.

/// A point-in-time snapshot of a running solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgressEvent {
    /// Solver name (e.g. `solverlp`, `swarmops`).
    pub solver: String,
    /// Method within the solver (e.g. `bb`, `simplex`, `pso`).
    pub method: String,
    /// Wall-clock nanoseconds since the solve stage started.
    pub elapsed_nanos: u64,
    /// MIP branch-and-bound nodes explored so far (0 for non-MIP).
    pub nodes: u64,
    /// Innermost-method iterations so far (simplex pivots, PSO/SA/DE
    /// outer iterations).
    pub iterations: u64,
    /// Fitness/model evaluations so far (derivative-free solvers).
    pub evaluations: u64,
    /// Best feasible objective found so far, in the problem's own
    /// optimization sense.
    pub incumbent: Option<f64>,
    /// Best proven bound (MIP), when the solver tracks one.
    pub best_bound: Option<f64>,
}

impl ProgressEvent {
    /// One-line human rendering, used by the CLI status line.
    pub fn render(&self) -> String {
        let secs = self.elapsed_nanos as f64 / 1e9;
        let mut s = format!("[{} {}] {:.1}s", self.solver, self.method, secs);
        if self.nodes > 0 {
            s.push_str(&format!("  nodes={}", self.nodes));
        }
        if self.iterations > 0 {
            s.push_str(&format!("  iters={}", self.iterations));
        }
        if self.evaluations > 0 {
            s.push_str(&format!("  evals={}", self.evaluations));
        }
        if let Some(inc) = self.incumbent {
            s.push_str(&format!("  incumbent={inc}"));
        }
        if let Some(b) = self.best_bound {
            s.push_str(&format!("  bound={b}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_only_populated_counters() {
        let ev = ProgressEvent {
            solver: "solverlp".into(),
            method: "bb".into(),
            elapsed_nanos: 2_500_000_000,
            nodes: 42,
            iterations: 900,
            incumbent: Some(7.5),
            ..ProgressEvent::default()
        };
        let line = ev.render();
        assert!(line.starts_with("[solverlp bb] 2.5s"), "{line}");
        assert!(line.contains("nodes=42"));
        assert!(line.contains("iters=900"));
        assert!(line.contains("incumbent=7.5"));
        assert!(!line.contains("evals="));
        assert!(!line.contains("bound="));
    }
}
