//! Per-query stage tracing.
//!
//! A [`Trace`] is a cheap, single-threaded span recorder: code opens
//! nested [`Span`] guards (closed on drop), annotates them with row
//! counts or notes, and reports [`SolverStats`] from inside a solve.
//! [`Trace::finish`] freezes the recording into a [`QueryTrace`] — a
//! plain tree of [`Stage`]s plus the solver telemetry — which is what
//! travels to clients, renders in `EXPLAIN ANALYZE`, and feeds the
//! metrics registry.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One timed stage in the query lifecycle, possibly with children.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stage {
    /// Stage name, e.g. `parse`, `plan`, `rewrite`, `instantiate`,
    /// `solve`, `post-process`.
    pub name: String,
    /// Wall-clock time spent in this stage (including children),
    /// clamped to at least 1 ns so a recorded stage is never "free".
    pub nanos: u64,
    /// Rows produced/materialized by this stage, when meaningful.
    pub rows: Option<u64>,
    /// Free-form key/value annotations (solver name, model counts, ...).
    pub meta: Vec<(String, String)>,
    /// Nested sub-stages, in execution order.
    pub children: Vec<Stage>,
}

impl Stage {
    /// A leaf stage with a pre-measured duration.
    pub fn leaf(name: &str, nanos: u64) -> Stage {
        Stage { name: name.to_string(), nanos: nanos.max(1), ..Stage::default() }
    }

    /// Total number of stages in this subtree (self included).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Stage::count).sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Stage::depth).max().unwrap_or(0)
    }
}

/// Telemetry reported by one solver invocation.
///
/// Fields are additive counters; a solver fills in whichever apply and
/// leaves the rest at zero. `iterations` always means *algorithm
/// iterations of the innermost numeric method* (simplex pivots,
/// swarm/annealing outer iterations), never branch-and-bound nodes —
/// those get their own fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolverStats {
    /// Solver name as registered (e.g. `solverlp`, `swarmops`).
    pub solver: String,
    /// Method within the solver (e.g. `mip`, `simplex`, `pso`).
    pub method: String,
    /// Innermost-method iterations (simplex pivots, PSO iterations...).
    pub iterations: u64,
    /// Branch-and-bound nodes explored (MIP only).
    pub nodes_explored: u64,
    /// Branch-and-bound nodes pruned by bound/infeasibility (MIP only).
    pub nodes_pruned: u64,
    /// Objective-function evaluations (derivative-free solvers).
    pub evaluations: u64,
    /// Restarts performed (multi-start heuristics).
    pub restarts: u64,
    /// Decision variables removed (fixed) by the presolve pass.
    pub presolve_cols: u64,
    /// Constraint rows removed by the presolve pass.
    pub presolve_rows: u64,
    /// Variable bounds tightened by the presolve pass.
    pub presolve_bounds: u64,
    /// Final objective value, if the solve produced one.
    pub objective: Option<f64>,
    /// Incumbent trajectory: (nodes explored when found, objective).
    pub incumbents: Vec<(u64, f64)>,
    /// Row-class census from the matrix classification pass, e.g.
    /// `"setpart:8 varbound:4"`. Empty when the pass is off or finds
    /// no special structure.
    pub matrix_class: String,
    /// Strongest integrality proof acted on: `"interval-tu"` /
    /// `"network-tu"` (branch-and-bound skipped), `"implied"` (some
    /// integer declarations relaxed), or empty.
    pub integrality_proof: String,
    /// Independent variable blocks of the constraint matrix (SD019's
    /// count at the solver level). Zero when unknown/no coupling.
    pub blocks: u64,
}

/// A frozen, plain-data trace of one executed statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// Short label for the traced statement (statement kind or shape).
    pub label: String,
    /// Total wall-clock for the statement, ≥ the sum of root stages.
    pub total_nanos: u64,
    /// Root stages in execution order.
    pub stages: Vec<Stage>,
    /// Telemetry from every solver invoked while executing.
    pub solvers: Vec<SolverStats>,
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1_000_000.0
}

impl QueryTrace {
    /// Total number of stages across the tree.
    pub fn stage_count(&self) -> usize {
        self.stages.iter().map(Stage::count).sum()
    }

    /// Render the stage tree as indented text lines, one per stage,
    /// followed by one line per solver's telemetry. This is the body of
    /// `EXPLAIN ANALYZE` and of the CLI `\timing` output.
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!("query: {}  (total {:.3} ms)", self.label, ms(self.total_nanos)));
        for s in &self.stages {
            render_stage(s, 1, &mut lines);
        }
        for st in &self.solvers {
            lines.push(render_solver(st));
        }
        lines
    }
}

fn render_stage(s: &Stage, depth: usize, out: &mut Vec<String>) {
    let mut line = format!("{}-> {}: {:.3} ms", "  ".repeat(depth), s.name, ms(s.nanos));
    if let Some(rows) = s.rows {
        let _ = write!(line, "  rows={rows}");
    }
    for (k, v) in &s.meta {
        let _ = write!(line, "  {k}={v}");
    }
    out.push(line);
    for c in &s.children {
        render_stage(c, depth + 1, out);
    }
}

fn render_solver(st: &SolverStats) -> String {
    let mut line = format!("  solver {}", st.solver);
    if !st.method.is_empty() {
        let _ = write!(line, " [{}]", st.method);
    }
    let _ = write!(line, ": iterations={}", st.iterations);
    if st.nodes_explored > 0 || st.nodes_pruned > 0 {
        let _ =
            write!(line, " nodes_explored={} nodes_pruned={}", st.nodes_explored, st.nodes_pruned);
    }
    if st.evaluations > 0 {
        let _ = write!(line, " evaluations={}", st.evaluations);
    }
    if st.restarts > 0 {
        let _ = write!(line, " restarts={}", st.restarts);
    }
    if st.presolve_cols > 0 || st.presolve_rows > 0 || st.presolve_bounds > 0 {
        let _ = write!(
            line,
            " presolve(cols={} rows={} bounds={})",
            st.presolve_cols, st.presolve_rows, st.presolve_bounds
        );
    }
    if !st.matrix_class.is_empty() {
        let _ = write!(line, " matrix[{}]", st.matrix_class);
    }
    if !st.integrality_proof.is_empty() {
        let _ = write!(line, " proof={}", st.integrality_proof);
    }
    if st.blocks > 1 {
        let _ = write!(line, " blocks={}", st.blocks);
    }
    if let Some(obj) = st.objective {
        let _ = write!(line, " objective={obj}");
    }
    if !st.incumbents.is_empty() {
        let traj: Vec<String> = st.incumbents.iter().map(|(n, v)| format!("{v}@{n}")).collect();
        let _ = write!(line, " incumbents=[{}]", traj.join(", "));
    }
    line
}

/// An in-flight stage: completed children plus its own start time.
#[derive(Debug)]
struct OpenStage {
    stage: Stage,
    started: Instant,
}

#[derive(Debug)]
struct TraceInner {
    /// Completed root-level stages.
    done: Vec<Stage>,
    /// Stack of currently open (nested) stages.
    open: Vec<OpenStage>,
    solvers: Vec<SolverStats>,
}

/// A live span recorder for one statement execution.
///
/// Single-threaded by design (interior mutability via `RefCell`): a
/// statement executes on one thread, and the trace is frozen into a
/// [`QueryTrace`] before crossing any thread or wire boundary.
#[derive(Debug)]
pub struct Trace {
    started: Instant,
    label: RefCell<String>,
    inner: Rc<RefCell<TraceInner>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    pub fn new() -> Trace {
        Trace {
            started: Instant::now(),
            label: RefCell::new(String::new()),
            inner: Rc::new(RefCell::new(TraceInner {
                done: Vec::new(),
                open: Vec::new(),
                solvers: Vec::new(),
            })),
        }
    }

    /// Set the human label for the traced statement.
    pub fn set_label(&self, label: &str) {
        *self.label.borrow_mut() = label.to_string();
    }

    /// Open a named span; it closes (and records its duration) when the
    /// returned guard drops. Spans opened while another is open become
    /// its children.
    pub fn span(&self, name: &str) -> Span {
        self.inner.borrow_mut().open.push(OpenStage {
            stage: Stage { name: name.to_string(), ..Stage::default() },
            started: Instant::now(),
        });
        Span { inner: Rc::clone(&self.inner), closed: false }
    }

    /// Time a closure under a named span.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _span = self.span(name);
        f()
    }

    /// Record a pre-measured leaf stage (e.g. parse time captured
    /// before the trace existed).
    pub fn record(&self, name: &str, nanos: u64) {
        let mut inner = self.inner.borrow_mut();
        let stage = Stage::leaf(name, nanos);
        match inner.open.last_mut() {
            Some(open) => open.stage.children.push(stage),
            None => inner.done.push(stage),
        }
    }

    /// Report telemetry from a solver invocation.
    pub fn solver(&self, stats: SolverStats) {
        self.inner.borrow_mut().solvers.push(stats);
    }

    /// Freeze the trace. Any still-open spans are closed as of now.
    /// The total is clamped to at least the sum of root stages, so
    /// pre-measured stages recorded before the trace's clock started
    /// (e.g. parse time) never exceed it.
    pub fn finish(self) -> QueryTrace {
        let total = self.started.elapsed();
        let mut inner = self.inner.borrow_mut();
        while !inner.open.is_empty() {
            close_top(&mut inner);
        }
        let stages = std::mem::take(&mut inner.done);
        let root_sum: u64 = stages.iter().map(|s| s.nanos).sum();
        QueryTrace {
            label: self.label.borrow().clone(),
            total_nanos: (total.as_nanos() as u64).max(root_sum).max(1),
            stages,
            solvers: std::mem::take(&mut inner.solvers),
        }
    }
}

fn close_top(inner: &mut TraceInner) {
    if let Some(mut top) = inner.open.pop() {
        top.stage.nanos = (top.started.elapsed().as_nanos() as u64).max(1);
        match inner.open.last_mut() {
            Some(parent) => parent.stage.children.push(top.stage),
            None => inner.done.push(top.stage),
        }
    }
}

/// Guard for an open stage; closing happens on drop.
#[derive(Debug)]
pub struct Span {
    inner: Rc<RefCell<TraceInner>>,
    closed: bool,
}

impl Span {
    /// Annotate the innermost open stage with a row count.
    pub fn rows(&self, rows: u64) {
        if let Some(open) = self.inner.borrow_mut().open.last_mut() {
            open.stage.rows = Some(rows);
        }
    }

    /// Attach a key/value note to the innermost open stage.
    pub fn note(&self, key: &str, value: impl ToString) {
        if let Some(open) = self.inner.borrow_mut().open.last_mut() {
            open.stage.meta.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            close_top(&mut self.inner.borrow_mut());
        }
    }
}

/// Time a closure, returning its result and the elapsed wall-clock.
/// The bench harness reports phase timings through this so the harness
/// and `EXPLAIN ANALYZE` share one stopwatch implementation.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` under a span when a trace is present, plainly otherwise.
pub fn span_time<T>(trace: Option<&Trace>, name: &str, f: impl FnOnce() -> T) -> T {
    match trace {
        Some(t) => t.time(name, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let t = Trace::new();
        t.set_label("demo");
        {
            let outer = t.span("solve");
            outer.note("solver", "solverlp");
            {
                let inner = t.span("compile");
                inner.rows(10);
            }
            t.record("post-process", 500);
        }
        let qt = t.finish();
        assert_eq!(qt.label, "demo");
        assert_eq!(qt.stages.len(), 1);
        let solve = &qt.stages[0];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.meta, vec![("solver".to_string(), "solverlp".to_string())]);
        assert_eq!(solve.children.len(), 2);
        assert_eq!(solve.children[0].name, "compile");
        assert_eq!(solve.children[0].rows, Some(10));
        assert_eq!(solve.children[1].name, "post-process");
        assert_eq!(solve.children[1].nanos, 500);
        assert!(solve.nanos >= 1);
        assert!(qt.total_nanos >= solve.nanos);
    }

    #[test]
    fn durations_are_never_zero() {
        let t = Trace::new();
        t.time("parse", || {});
        t.record("plan", 0);
        let qt = t.finish();
        assert!(qt.stages.iter().all(|s| s.nanos >= 1));
        assert!(qt.total_nanos >= 1);
    }

    #[test]
    fn unclosed_spans_are_closed_by_finish() {
        let t = Trace::new();
        let s = t.span("outer");
        std::mem::forget(s); // simulate a path that never drops the guard
        let qt = t.finish();
        assert_eq!(qt.stages.len(), 1);
        assert_eq!(qt.stages[0].name, "outer");
    }

    #[test]
    fn children_sum_within_parent() {
        let t = Trace::new();
        {
            let _p = t.span("parent");
            t.time("a", || std::thread::sleep(Duration::from_millis(1)));
            t.time("b", || {});
        }
        let qt = t.finish();
        let p = &qt.stages[0];
        let child_sum: u64 = p.children.iter().map(|c| c.nanos).sum();
        assert!(p.nanos >= child_sum, "parent {} < children {}", p.nanos, child_sum);
        assert!(qt.total_nanos >= p.nanos);
    }

    #[test]
    fn render_includes_stages_and_solver_stats() {
        let t = Trace::new();
        t.set_label("SOLVESELECT");
        t.record("parse", 1_000_000);
        t.solver(SolverStats {
            solver: "solverlp".into(),
            method: "mip".into(),
            iterations: 12,
            nodes_explored: 5,
            nodes_pruned: 2,
            objective: Some(6.5),
            incumbents: vec![(1, 4.0), (3, 6.5)],
            ..SolverStats::default()
        });
        let lines = t.finish().render();
        let text = lines.join("\n");
        assert!(text.contains("parse: 1.000 ms"), "got:\n{text}");
        assert!(text.contains("solver solverlp [mip]"), "got:\n{text}");
        assert!(text.contains("nodes_explored=5"), "got:\n{text}");
        assert!(text.contains("incumbents=[4@1, 6.5@3]"), "got:\n{text}");
    }

    #[test]
    fn timed_measures_and_passes_through() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.is_zero()); // just type sanity
    }

    #[test]
    fn span_time_without_trace_still_runs() {
        assert_eq!(span_time(None, "x", || 7), 7);
        let t = Trace::new();
        assert_eq!(span_time(Some(&t), "x", || 7), 7);
        assert_eq!(t.finish().stages.len(), 1);
    }
}
