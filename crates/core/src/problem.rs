//! From `SOLVESELECT` AST to a solvable problem instance.
//!
//! Implements the semantics of paper §4.1–§4.4: INLINE expansion
//! (Algorithm 2), ordered materialization of the decision relations with
//! the scoping rules of §4.1, decision-variable creation with
//! unused-variable pruning (§4.3), symbolic compilation of
//! `MINIMIZE`/`SUBJECTTO` rules into a linear program, and the
//! re-materializing fitness function used by black-box solvers.

use crate::model::expect_model;
use crate::symbolic::{as_linexpr, sym_value, ConstraintVal, ConstraintValue, LinExpr, Rel, VarId};
use sqlengine::ast::{
    Cte, DecCols, DecRel, Expr, NamedRule, Query, Select, SelectItem, SolveStmt, TableRef,
};
use sqlengine::catalog::{Ctes, Database};
use sqlengine::error::{Error, Result};
use sqlengine::exec::run_query;
use sqlengine::table::Table;
use sqlengine::types::{downcast, DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One decision variable's placement and metadata.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Index into [`ProblemInstance::relations`].
    pub rel: usize,
    pub row: usize,
    /// Column index within the relation's table.
    pub col: usize,
    /// Initial value from the materialized cell (None when NULL).
    pub initial: Option<f64>,
    /// Integer-typed decision column.
    pub integer: bool,
}

/// A materialized decision relation D_i.
#[derive(Debug, Clone)]
pub struct DecRelInst {
    pub alias: Option<String>,
    pub query: Query,
    /// Decision column indexes within the table schema.
    pub dec_cols: Vec<usize>,
    /// Materialized table with initial values.
    pub table: Table,
    /// Variable ids, `vars[row][k]` for the k-th decision column.
    pub vars: Vec<Vec<VarId>>,
}

/// A fully built problem instance: materialized relations, rules,
/// variables and solver parameters.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    pub relations: Vec<DecRelInst>,
    pub minimize: Option<Query>,
    pub maximize: Option<Query>,
    pub subjectto: Vec<NamedRule>,
    pub vars: Vec<VarInfo>,
    pub params: HashMap<String, Value>,
    /// Solver named in the `USING` clause.
    pub solver: Option<String>,
    pub method: Option<String>,
}

impl ProblemInstance {
    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Fetch a solver parameter as f64.
    pub fn param_f64(&self, name: &str) -> Option<Result<f64>> {
        self.params.get(name).map(|v| v.as_f64())
    }

    pub fn param_usize(&self, name: &str) -> Option<Result<usize>> {
        self.params.get(name).map(|v| Ok(v.as_i64()?.max(0) as usize))
    }

    pub fn param_text(&self, name: &str) -> Option<String> {
        self.params.get(name).map(|v| v.to_string())
    }
}

// ---------------------------------------------------------------------------
// INLINE expansion — Algorithm 2
// ---------------------------------------------------------------------------

/// Wrap a query with prologue CTEs `alias AS (SELECT * FROM prefixed)` so
/// imported inner-model expressions keep working unmodified (the scope
/// rewiring of Algorithm 2, lines 5 and 9).
fn add_prologue(query: &Query, mapping: &[(String, String)]) -> Query {
    let mut q = query.clone();
    let mut prologue: Vec<Cte> = mapping
        .iter()
        .map(|(orig, prefixed)| Cte {
            name: orig.clone(),
            columns: vec![],
            query: Query::simple(Select {
                distinct: false,
                projection: vec![SelectItem::Wildcard { qualifier: None }],
                from: vec![TableRef::Named { name: prefixed.clone(), alias: None }],
                where_: None,
                group_by: vec![],
                grouping_sets: None,
                having: None,
            }),
        })
        .collect();
    prologue.extend(q.with.drain(..));
    q.with = prologue;
    q
}

/// Expand all `INLINE` clauses of a statement (Algorithm 2), producing a
/// statement with the inner model's relations and rules imported under
/// `alias_`-prefixed names.
pub fn inline_models(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<SolveStmt> {
    let mut out = stmt.clone();
    let mut imported_ctes: Vec<DecRel> = Vec::new();
    for (k, inl) in stmt.inlines.iter().enumerate() {
        let t = run_query(db, ctes, &inl.query, None)?;
        let mv = expect_model(&t.scalar()?)?;
        let malias = inl.alias.clone().unwrap_or_else(|| format!("m{k}"));
        let prefix = format!("{malias}_");

        // Relations of the inner model, input relation first.
        let mut inner: Vec<DecRel> = vec![mv.stmt.input.clone()];
        inner.extend(mv.stmt.ctes.iter().cloned());
        let mut mapping: Vec<(String, String)> = Vec::new();
        for (i, rel) in inner.iter().enumerate() {
            let Some(a) = rel.alias.clone() else {
                return Err(Error::solver(format!(
                    "cannot inline model '{malias}': relation {i} has no alias"
                )));
            };
            let prefixed = format!("{prefix}{a}");
            if out.ctes.iter().any(|c| c.alias.as_deref() == Some(prefixed.as_str()))
                || out.input.alias.as_deref() == Some(prefixed.as_str())
            {
                return Err(Error::solver(format!(
                    "inlined relation name '{prefixed}' collides with an existing relation"
                )));
            }
            let visible = mapping.clone(); // aliases a_j for j < i
            imported_ctes.push(DecRel {
                alias: Some(prefixed.clone()),
                dec_cols: rel.dec_cols.clone(),
                query: add_prologue(&rel.query, &visible),
            });
            mapping.push((a, prefixed));
        }

        // Rules: every inner alias is visible (scope rule of §4.1).
        for rule in &mv.stmt.subjectto {
            out.subjectto.push(NamedRule {
                alias: rule.alias.as_ref().map(|a| format!("{prefix}{a}")),
                query: add_prologue(&rule.query, &mapping),
            });
        }
        if let Some(m) = &mv.stmt.minimize {
            if out.minimize.is_some() {
                return Err(Error::solver(
                    "both the outer problem and an inlined model define MINIMIZE",
                ));
            }
            out.minimize = Some(add_prologue(m, &mapping));
        }
        if let Some(m) = &mv.stmt.maximize {
            if out.maximize.is_some() {
                return Err(Error::solver(
                    "both the outer problem and an inlined model define MAXIMIZE",
                ));
            }
            out.maximize = Some(add_prologue(m, &mapping));
        }
    }
    // Imported relations precede the outer CDTEs (they may be referenced
    // by them) and follow the input relation.
    imported_ctes.extend(out.ctes.drain(..));
    out.ctes = imported_ctes;
    out.inlines.clear();
    Ok(out)
}

// ---------------------------------------------------------------------------
// Problem construction
// ---------------------------------------------------------------------------

fn resolve_dec_cols(table: &Table, spec: &DecCols, alias: Option<&str>) -> Result<Vec<usize>> {
    match spec {
        DecCols::None => Ok(vec![]),
        DecCols::Star => Ok((0..table.schema.len()).collect()),
        DecCols::List(names) => names
            .iter()
            .map(|n| {
                table.schema.index_of(n).ok_or_else(|| {
                    Error::solver(format!(
                        "decision column '{n}' not found in relation {}",
                        alias.unwrap_or("<input>")
                    ))
                })
            })
            .collect(),
    }
}

/// Build a problem instance from an (already inline-expanded or raw)
/// `SOLVESELECT` statement. Evaluates solver parameters, materializes
/// every decision relation in order, and assigns variable ids.
pub fn build_problem(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<ProblemInstance> {
    build_problem_traced(db, ctes, stmt, None)
}

/// [`build_problem`], recording `rewrite` (model inlining) and
/// `instantiate` (relation materialization) stages into the trace.
pub fn build_problem_traced(
    db: &Database,
    ctes: &Ctes,
    stmt: &SolveStmt,
    trace: Option<&obs::Trace>,
) -> Result<ProblemInstance> {
    let stmt = if stmt.inlines.is_empty() {
        stmt.clone()
    } else {
        obs::trace::span_time(trace, "rewrite", || inline_models(db, ctes, stmt))?
    };

    // Solver parameters: bare column names act as identifiers
    // (`features := outTemp`), everything else is evaluated as a
    // constant expression.
    let mut params = HashMap::new();
    let mut solver = None;
    let mut method = None;
    if let Some(u) = &stmt.using {
        solver = Some(u.solver.clone());
        method = u.method.clone();
        for (i, (name, expr)) in u.params.iter().enumerate() {
            let key = name.clone().unwrap_or_else(|| format!("${i}"));
            let value = match expr {
                Expr::Column { qualifier: None, name } => Value::text(name.as_str()),
                e => {
                    let q = Query::simple(Select {
                        distinct: false,
                        projection: vec![SelectItem::Expr { expr: e.clone(), alias: None }],
                        from: vec![],
                        where_: None,
                        group_by: vec![],
                        grouping_sets: None,
                        having: None,
                    });
                    run_query(db, ctes, &q, None)?.scalar()?
                }
            };
            params.insert(key, value);
        }
    }

    // Materialize D₁..D_N in order; each sees the previously materialized
    // relations (scope rule of §4.1).
    let inst_span = trace.map(|t| t.span("instantiate"));
    let mut env = ctes.clone();
    let mut relations: Vec<DecRelInst> = Vec::new();
    let mut vars: Vec<VarInfo> = Vec::new();
    let specs: Vec<DecRel> =
        std::iter::once(stmt.input.clone()).chain(stmt.ctes.iter().cloned()).collect();
    for (ri, spec) in specs.iter().enumerate() {
        let table = run_query(db, &env, &spec.query, None)?;
        let dec_cols = resolve_dec_cols(&table, &spec.dec_cols, spec.alias.as_deref())?;
        let mut rel_vars: Vec<Vec<VarId>> = Vec::with_capacity(table.num_rows());
        for (row_idx, row) in table.rows.iter().enumerate() {
            let mut ids = Vec::with_capacity(dec_cols.len());
            for &c in &dec_cols {
                let id = vars.len() as VarId;
                let cell = &row[c];
                let initial = match cell {
                    Value::Null => None,
                    v => v.as_f64().ok(),
                };
                let integer = table.schema.columns[c].ty == DataType::Int;
                vars.push(VarInfo { rel: ri, row: row_idx, col: c, initial, integer });
                ids.push(id);
            }
            rel_vars.push(ids);
        }
        if let Some(a) = &spec.alias {
            env.insert(a, Arc::new(table.clone()));
        }
        relations.push(DecRelInst {
            alias: spec.alias.clone(),
            query: spec.query.clone(),
            dec_cols,
            table,
            vars: rel_vars,
        });
    }

    if let Some(s) = inst_span {
        s.rows(relations.iter().map(|r| r.table.num_rows() as u64).sum());
        s.note("relations", relations.len());
        s.note("vars", vars.len());
    }

    Ok(ProblemInstance {
        relations,
        minimize: stmt.minimize.clone(),
        maximize: stmt.maximize.clone(),
        subjectto: stmt.subjectto.clone(),
        vars,
        params,
        solver,
        method,
    })
}

// ---------------------------------------------------------------------------
// Environment materialization under a cell patch
// ---------------------------------------------------------------------------

/// How decision cells are filled during (re-)materialization.
pub enum CellPatch<'a> {
    /// Keep materialized (initial) values.
    Initial,
    /// Replace with symbolic variables.
    Symbolic,
    /// Replace with concrete candidate values.
    Values(&'a [f64]),
}

/// Re-materialize all decision relations in order, applying the patch to
/// decision cells, and return the CTE environment exposing them under
/// their aliases. Relations are *re-executed*, so derived relations (e.g.
/// a recursive simulation CDTE) see patched upstream values — this is
/// the black-box fitness evaluation path of §5.3 and the symbolic
/// compilation path of §4.1.
pub fn materialize_env(
    db: &Database,
    base: &Ctes,
    prob: &ProblemInstance,
    patch: &CellPatch<'_>,
) -> Result<Ctes> {
    let mut env = base.clone();
    for (ri, rel) in prob.relations.iter().enumerate() {
        let mut table = match patch {
            // The initial tables were already materialized at build time;
            // avoid re-running their queries.
            CellPatch::Initial => rel.table.clone(),
            _ => {
                if rel.dec_cols.is_empty() && rel.alias.is_none() {
                    rel.table.clone()
                } else {
                    match run_query(db, &env, &rel.query, None) {
                        Ok(t) => t,
                        // Symbolic materialization is lenient: a derived
                        // relation that is nonlinear in the decision
                        // variables (e.g. a simulation CDTE under a
                        // black-box formulation) simply stays unavailable;
                        // rules that reference it will error, rules that
                        // don't are unaffected.
                        Err(_) if matches!(patch, CellPatch::Symbolic) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        if table.num_rows() != rel.table.num_rows() {
            return Err(Error::solver(format!(
                "relation {} changed cardinality during solving ({} vs {} rows); \
                 decision relations must be stable",
                rel.alias.as_deref().unwrap_or("<input>"),
                table.num_rows(),
                rel.table.num_rows()
            )));
        }
        for (row_idx, ids) in rel.vars.iter().enumerate() {
            for (k, &id) in ids.iter().enumerate() {
                let col = rel.dec_cols[k];
                let info = &prob.vars[id as usize];
                debug_assert_eq!((info.rel, info.row, info.col), (ri, row_idx, col));
                let v = match patch {
                    CellPatch::Initial => continue,
                    CellPatch::Symbolic => sym_value(LinExpr::var(id)),
                    CellPatch::Values(x) => {
                        let raw = x[id as usize];
                        if info.integer {
                            Value::Int(raw.round() as i64)
                        } else {
                            Value::Float(raw)
                        }
                    }
                };
                table.rows[row_idx][col] = v;
            }
        }
        if let Some(a) = &rel.alias {
            env.insert(a, Arc::new(table));
        }
    }
    Ok(env)
}

// ---------------------------------------------------------------------------
// Linear compilation
// ---------------------------------------------------------------------------

/// Rules compiled to linear form.
#[derive(Debug, Clone)]
pub struct LinearRules {
    pub objective: LinExpr,
    pub minimize: bool,
    pub constraints: Vec<ConstraintValue>,
}

/// Describe a rule for error messages and diagnostics: its alias when
/// named, else its (truncated) SQL text — so a nonlinearity error names
/// the offending rule instead of floating free of context.
pub fn rule_label(alias: Option<&str>, query: &Query) -> String {
    match alias {
        Some(a) => format!("'{a}'"),
        None => {
            let sql = query.to_string();
            let mut s: String = sql.chars().take(60).collect();
            if s.chars().count() < sql.chars().count() {
                s.push_str("...");
            }
            format!("({s})")
        }
    }
}

/// Wrap a rule-evaluation error with which clause and rule produced it.
fn rule_error(clause: &str, alias: Option<&str>, query: &Query, e: Error) -> Error {
    Error::solver(format!("in {clause} rule {}: {e}", rule_label(alias, query)))
}

/// Evaluate MINIMIZE/MAXIMIZE and SUBJECTTO symbolically.
pub fn compile_linear(db: &Database, base: &Ctes, prob: &ProblemInstance) -> Result<LinearRules> {
    let env = materialize_env(db, base, prob, &CellPatch::Symbolic)?;
    let (obj_query, minimize) = match (&prob.minimize, &prob.maximize) {
        (Some(q), None) => (Some(q), true),
        (None, Some(q)) => (Some(q), false),
        (None, None) => (None, true),
        (Some(_), Some(_)) => {
            return Err(Error::solver(
                "linear solvers support a single objective (MINIMIZE or MAXIMIZE)",
            ))
        }
    };
    let clause = if minimize { "MINIMIZE" } else { "MAXIMIZE" };
    let objective = match obj_query {
        None => LinExpr::constant(0.0),
        Some(q) => run_query(db, &env, q, None)
            .and_then(|t| t.scalar())
            .and_then(|v| as_linexpr(&v))
            .map_err(|e| rule_error(clause, None, q, e))?,
    };
    let mut constraints = Vec::new();
    collect_constraints(db, &env, &prob.subjectto, &mut constraints)?;
    Ok(LinearRules { objective, minimize, constraints })
}

/// Evaluate SUBJECTTO queries in an environment, collecting constraint
/// cells. `TRUE`/`NULL` cells are ignored; a constant `FALSE` cell makes
/// the problem infeasible at compile time.
pub fn collect_constraints(
    db: &Database,
    env: &Ctes,
    rules: &[NamedRule],
    out: &mut Vec<ConstraintValue>,
) -> Result<()> {
    for rule in rules {
        let t = run_query(db, env, &rule.query, None)
            .map_err(|e| rule_error("SUBJECTTO", rule.alias.as_deref(), &rule.query, e))?;
        for row in &t.rows {
            for cell in row {
                if let Some(c) = downcast::<ConstraintVal>(cell) {
                    out.push(c.0.clone());
                    continue;
                }
                match cell {
                    Value::Bool(true) | Value::Null => {}
                    Value::Bool(false) => {
                        return Err(Error::solver(format!(
                            "constraint{} is trivially false — the problem is infeasible",
                            rule.alias.as_deref().map(|a| format!(" '{a}'")).unwrap_or_default()
                        )))
                    }
                    other => {
                        return Err(Error::solver(format!(
                            "SUBJECTTO cell evaluated to {} ({}), expected a constraint or boolean",
                            other.data_type().sql_name(),
                            other
                        )))
                    }
                }
            }
        }
    }
    Ok(())
}

/// Convert compiled rules into an [`lp::Problem`]. Only variables that
/// appear in the objective or constraints become LP variables (the
/// unbound-variable pruning of §4.3); single-variable comparisons with
/// constant sides become bounds rather than rows.
pub fn to_lp(prob: &ProblemInstance, rules: &LinearRules) -> (lp::Problem, Vec<VarId>) {
    let mut used: Vec<VarId> = Vec::new();
    let mut seen = vec![false; prob.num_vars()];
    let mark = |e: &LinExpr, used: &mut Vec<VarId>, seen: &mut Vec<bool>| {
        for v in e.vars() {
            if !seen[v as usize] {
                seen[v as usize] = true;
                used.push(v);
            }
        }
    };
    mark(&rules.objective, &mut used, &mut seen);
    for c in &rules.constraints {
        for (l, _, r) in c.atoms() {
            mark(l, &mut used, &mut seen);
            mark(r, &mut used, &mut seen);
        }
    }
    used.sort_unstable();
    let index: HashMap<VarId, usize> = used.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let mut p = if rules.minimize {
        lp::Problem::minimize(used.len())
    } else {
        lp::Problem::maximize(used.len())
    };
    for (i, &v) in used.iter().enumerate() {
        p.integer[i] = prob.vars[v as usize].integer;
    }
    p.objective_constant = rules.objective.constant;
    p.set_objective(rules.objective.terms.iter().map(|&(v, c)| (index[&v], c)).collect());
    for c in &rules.constraints {
        for (l, rel, r) in c.atoms() {
            let diff = l.sub(r); // diff ⋈ 0  ⇔  terms ⋈ -const
            let rhs = -diff.constant;
            let lprel = match rel {
                Rel::Le => lp::Rel::Le,
                Rel::Ge => lp::Rel::Ge,
                Rel::Eq => lp::Rel::Eq,
            };
            if diff.terms.len() == 1 && rel != Rel::Eq {
                // Box bound: c·x ⋈ rhs.
                let (v, coef) = diff.terms[0];
                let bound = rhs / coef;
                let j = index[&v];
                let le = (rel == Rel::Le) == (coef > 0.0);
                if le {
                    p.tighten(j, f64::NEG_INFINITY, bound);
                } else {
                    p.tighten(j, bound, f64::INFINITY);
                }
            } else {
                p.add_constraint(
                    diff.terms.iter().map(|&(v, c)| (index[&v], c)).collect(),
                    lprel,
                    rhs,
                );
            }
        }
    }
    (p, used)
}

// ---------------------------------------------------------------------------
// Output assembly
// ---------------------------------------------------------------------------

/// Build the output relation: the input relation with solved decision
/// cells filled in. Variables without an assigned value keep their
/// original cell (NULL or the initial value) — pruned variables stay
/// untouched, as §4.3 specifies.
pub fn apply_solution(prob: &ProblemInstance, assignment: &dyn Fn(VarId) -> Option<f64>) -> Table {
    let rel = &prob.relations[0];
    let mut out = rel.table.clone();
    for (row_idx, ids) in rel.vars.iter().enumerate() {
        for (k, &id) in ids.iter().enumerate() {
            if let Some(v) = assignment(id) {
                let col = rel.dec_cols[k];
                let info = &prob.vars[id as usize];
                out.rows[row_idx][col] =
                    if info.integer { Value::Int(v.round() as i64) } else { Value::Float(v) };
                // Column type may have been Unknown (all NULL); fix it up.
                if out.schema.columns[col].ty == DataType::Unknown {
                    out.schema.columns[col].ty =
                        if info.integer { DataType::Int } else { DataType::Float };
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Black-box support
// ---------------------------------------------------------------------------

/// A black-box view of the problem: box bounds per variable (extracted
/// from single-variable linear constraints), remaining constraints as
/// penalties, and the objective query.
pub struct BlackboxProblem {
    pub space: globalopt::SearchSpace,
    /// Linear constraints not representable as bounds (penalized).
    pub penalties: Vec<ConstraintValue>,
    pub objective: Query,
    pub minimize: bool,
    /// Starting point from initial values (midpoint of bounds when NULL).
    pub start: Vec<f64>,
}

/// Build the black-box formulation: SUBJECTTO is evaluated symbolically
/// to harvest bounds; the objective stays a query re-evaluated per
/// candidate.
pub fn build_blackbox(
    db: &Database,
    base: &Ctes,
    prob: &ProblemInstance,
) -> Result<BlackboxProblem> {
    let n = prob.num_vars();
    if n == 0 {
        return Err(Error::solver("problem has no decision variables"));
    }
    let env = materialize_env(db, base, prob, &CellPatch::Symbolic)?;
    let mut constraints = Vec::new();
    collect_constraints(db, &env, &prob.subjectto, &mut constraints)?;

    let mut lower = vec![f64::NEG_INFINITY; n];
    let mut upper = vec![f64::INFINITY; n];
    let mut penalties = Vec::new();
    for c in constraints {
        let mut as_bounds = Vec::new();
        let mut boundable = true;
        for (l, rel, r) in c.atoms() {
            let diff = l.sub(r);
            if diff.terms.len() == 1 && rel != Rel::Eq {
                as_bounds.push((diff.terms[0], rel, -diff.constant));
            } else {
                boundable = false;
            }
        }
        if boundable {
            for ((v, coef), rel, rhs) in as_bounds {
                let bound = rhs / coef;
                let le = (rel == Rel::Le) == (coef > 0.0);
                let j = v as usize;
                if le {
                    upper[j] = upper[j].min(bound);
                } else {
                    lower[j] = lower[j].max(bound);
                }
            }
        } else {
            penalties.push(c);
        }
    }
    let integer: Vec<bool> = prob.vars.iter().map(|v| v.integer).collect();
    let space = globalopt::SearchSpace { lower: lower.clone(), upper: upper.clone(), integer };

    let start: Vec<f64> = prob
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.initial.unwrap_or_else(|| {
                let (l, u) = (lower[i], upper[i]);
                if l.is_finite() && u.is_finite() {
                    (l + u) / 2.0
                } else if l.is_finite() {
                    l
                } else if u.is_finite() {
                    u
                } else {
                    0.0
                }
            })
        })
        .collect();

    let (objective, minimize) = match (&prob.minimize, &prob.maximize) {
        (Some(q), None) => (q.clone(), true),
        (None, Some(q)) => (q.clone(), false),
        _ => {
            return Err(Error::solver(
                "black-box solvers need exactly one objective (MINIMIZE or MAXIMIZE)",
            ))
        }
    };
    Ok(BlackboxProblem { space, penalties, objective, minimize, start })
}

/// Penalty weight applied per unit of constraint violation in black-box
/// fitness.
pub const PENALTY_WEIGHT: f64 = 1e9;

/// Evaluate the black-box fitness (minimization sense) for a candidate.
pub fn blackbox_fitness(
    db: &Database,
    base: &Ctes,
    prob: &ProblemInstance,
    bb: &BlackboxProblem,
    x: &[f64],
) -> f64 {
    let env = match materialize_env(db, base, prob, &CellPatch::Values(x)) {
        Ok(e) => e,
        Err(_) => return f64::INFINITY,
    };
    let raw = match run_query(db, &env, &bb.objective, None) {
        Ok(t) => match t.scalar().and_then(|v| v.as_f64()) {
            Ok(v) => v,
            Err(_) => return f64::INFINITY,
        },
        Err(_) => return f64::INFINITY,
    };
    let mut fitness = if bb.minimize { raw } else { -raw };
    let getter = |v: VarId| x[v as usize];
    for p in &bb.penalties {
        fitness += PENALTY_WEIGHT * p.violation(&getter);
    }
    fitness
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::ast::Statement;
    use sqlengine::{execute_script, parser};

    fn solve_stmt(sql: &str) -> SolveStmt {
        match parser::parse_statement(sql).unwrap() {
            Statement::Solve(s) => s,
            _ => panic!("not a solve statement"),
        }
    }

    fn test_db() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE pars (potemp float8, pmonth float8, peps float8);
             INSERT INTO pars VALUES (NULL, NULL, NULL);
             CREATE TABLE input (x float8, y float8);
             INSERT INTO input VALUES (1, 10), (2, 19), (3, 31);",
        )
        .unwrap();
        db
    }

    #[test]
    fn build_assigns_variables_in_order() {
        let db = test_db();
        let stmt = solve_stmt(
            "SOLVESELECT p(*) AS (SELECT * FROM pars) \
             WITH e(err) AS (SELECT x, NULL::float8 AS err FROM input) \
             MINIMIZE (SELECT sum(err) FROM e) USING solverlp()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        assert_eq!(prob.relations.len(), 2);
        assert_eq!(prob.num_vars(), 3 + 3); // 3 params + 3 errors
        assert_eq!(prob.relations[0].dec_cols.len(), 3); // asterisk notation
        assert_eq!(prob.relations[1].dec_cols.len(), 1);
        assert!(prob.vars.iter().all(|v| v.initial.is_none()));
    }

    #[test]
    fn initial_values_and_integrality() {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE t (a int, b float8); INSERT INTO t VALUES (3, 2.5)")
            .unwrap();
        let stmt = solve_stmt("SOLVESELECT q(a, b) AS (SELECT * FROM t) USING s()");
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        assert_eq!(prob.vars[0].initial, Some(3.0));
        assert!(prob.vars[0].integer);
        assert_eq!(prob.vars[1].initial, Some(2.5));
        assert!(!prob.vars[1].integer);
    }

    #[test]
    fn scoping_later_relations_see_earlier() {
        let db = test_db();
        let stmt = solve_stmt(
            "SOLVESELECT a(x) AS (SELECT 1.0 AS x) \
             WITH b(y) AS (SELECT x + 1.0 AS y FROM a) USING s()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        assert_eq!(prob.relations[1].table.value(0, 0), &Value::Float(2.0));
    }

    #[test]
    fn param_evaluation_modes() {
        let db = test_db();
        let stmt = solve_stmt(
            "SOLVESELECT t(x) AS (SELECT * FROM input) \
             USING arima.auto(predictions := 2 + 3, features := outtemp, \
                              win := (SELECT count(*) FROM input))",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        assert_eq!(prob.method.as_deref(), Some("auto"));
        assert_eq!(prob.params["predictions"], Value::Int(5));
        assert_eq!(prob.params["features"], Value::text("outtemp"));
        assert_eq!(prob.params["win"], Value::Int(3));
    }

    #[test]
    fn symbolic_compile_of_paper_lr_problem() {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE pars (p1 float8); INSERT INTO pars VALUES (NULL);
             CREATE TABLE input (x float8, y float8);
             INSERT INTO input VALUES (1, 10), (2, 20);",
        )
        .unwrap();
        // min sum(err) s.t. -err <= p1*x - y <= err (an L1 regression).
        let stmt = solve_stmt(
            "SOLVESELECT p(p1) AS (SELECT * FROM pars) \
             WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM input) \
             MINIMIZE (SELECT sum(err) FROM e) \
             SUBJECTTO (SELECT -1*err <= (p1 * x - y) <= err FROM e, p) \
             USING solverlp()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let rules = compile_linear(&db, &Ctes::new(), &prob).unwrap();
        assert!(rules.minimize);
        // Objective = err0 + err1.
        assert_eq!(rules.objective.terms.len(), 2);
        // Two rows × one chain (two atoms each).
        let atoms: usize = rules.constraints.iter().map(|c| c.atoms().len()).sum();
        assert_eq!(atoms, 4);
        let (lp_prob, used) = to_lp(&prob, &rules);
        assert_eq!(used.len(), 3); // p1 + two errs (all referenced)
        let sol = lp::solve(&lp_prob);
        assert!(sol.is_optimal());
        // Perfect fit: p1 = 10, errors 0.
        let p1_idx = used.iter().position(|&v| prob.vars[v as usize].rel == 0).unwrap();
        assert!((sol.x[p1_idx] - 10.0).abs() < 1e-6);
        assert!(sol.objective.abs() < 1e-6);
    }

    #[test]
    fn pruning_excludes_unreferenced_variables() {
        let db = test_db();
        let stmt = solve_stmt(
            "SOLVESELECT p(potemp, pmonth, peps) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT sum(potemp) FROM p) \
             SUBJECTTO (SELECT potemp >= 1 FROM p) USING solverlp()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let rules = compile_linear(&db, &Ctes::new(), &prob).unwrap();
        let (_, used) = to_lp(&prob, &rules);
        assert_eq!(used.len(), 1); // pmonth and peps pruned
    }

    #[test]
    fn trivially_false_constraint_is_infeasible() {
        let db = test_db();
        let stmt = solve_stmt(
            "SOLVESELECT p(potemp) AS (SELECT * FROM pars) \
             SUBJECTTO (SELECT 1 = 2) USING solverlp()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let err = compile_linear(&db, &Ctes::new(), &prob).unwrap_err();
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn inline_imports_with_prefixes() {
        let mut db = test_db();
        // Store a model in a table.
        execute_script(&mut db, "CREATE TABLE model (m text)").unwrap();
        let mtext = "SOLVEMODEL pars AS (SELECT 2.0 AS k) \
                     WITH simul AS (SELECT k * 10.0 AS v FROM pars)";
        // Escape embedded quotes not needed (no quotes in text).
        execute_script(&mut db, &format!("INSERT INTO model VALUES ('{mtext}')")).unwrap();
        let stmt = solve_stmt(
            "SOLVESELECT t(x) AS (SELECT NULL::float8 AS x) \
             INLINE m AS (SELECT m FROM model) \
             MINIMIZE (SELECT sum(x) FROM t) \
             SUBJECTTO (SELECT x >= v FROM m_simul, t) \
             USING solverlp()",
        );
        let expanded = inline_models(&db, &Ctes::new(), &stmt).unwrap();
        let aliases: Vec<_> = expanded.ctes.iter().map(|c| c.alias.clone()).collect();
        assert_eq!(aliases, vec![Some("m_pars".into()), Some("m_simul".into())]);
        // The imported simul query is rewired to read m_pars via a prologue CTE.
        assert!(expanded.ctes[1].query.to_string().contains("m_pars"));

        // And the whole thing solves: x >= 20 minimized → 20.
        let prob = build_problem(&db, &Ctes::new(), &expanded).unwrap();
        let rules = compile_linear(&db, &Ctes::new(), &prob).unwrap();
        let (lp_prob, _) = to_lp(&prob, &rules);
        let sol = lp::solve(&lp_prob);
        assert!(sol.is_optimal());
        assert!((sol.objective - 20.0).abs() < 1e-6);
    }

    #[test]
    fn blackbox_bounds_and_fitness() {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE pars (a float8); INSERT INTO pars VALUES (NULL)")
            .unwrap();
        let stmt = solve_stmt(
            "SOLVESELECT p(a) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT (a - 3.0) * (a - 3.0) FROM p) \
             SUBJECTTO (SELECT 0 <= a <= 10 FROM p) USING swarmops.pso()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let bb = build_blackbox(&db, &Ctes::new(), &prob).unwrap();
        assert_eq!(bb.space.lower, vec![0.0]);
        assert_eq!(bb.space.upper, vec![10.0]);
        assert!(bb.penalties.is_empty());
        // Quadratic objective evaluated concretely per candidate.
        let f3 = blackbox_fitness(&db, &Ctes::new(), &prob, &bb, &[3.0]);
        let f5 = blackbox_fitness(&db, &Ctes::new(), &prob, &bb, &[5.0]);
        assert!(f3 < 1e-12);
        assert!((f5 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn blackbox_penalizes_multivar_constraints() {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE pars (a float8, b float8); INSERT INTO pars VALUES (NULL, NULL)",
        )
        .unwrap();
        let stmt = solve_stmt(
            "SOLVESELECT p(a, b) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT a + b FROM p) \
             SUBJECTTO (SELECT a + b >= 4 FROM p), (SELECT 0 <= a <= 10, 0 <= b <= 10 FROM p) \
             USING swarmops.de()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let bb = build_blackbox(&db, &Ctes::new(), &prob).unwrap();
        assert_eq!(bb.penalties.len(), 1);
        let bad = blackbox_fitness(&db, &Ctes::new(), &prob, &bb, &[1.0, 1.0]);
        assert!(bad > PENALTY_WEIGHT); // violated by 2
        let good = blackbox_fitness(&db, &Ctes::new(), &prob, &bb, &[2.0, 2.0]);
        assert!((good - 4.0).abs() < 1e-9);
    }

    #[test]
    fn apply_solution_fills_only_assigned() {
        let db = test_db();
        let stmt = solve_stmt("SOLVESELECT p(potemp, pmonth) AS (SELECT * FROM pars) USING s()");
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        let out = apply_solution(&prob, &|v| if v == 0 { Some(7.5) } else { None });
        assert_eq!(out.value(0, 0), &Value::Float(7.5));
        assert!(out.value(0, 1).is_null()); // unassigned stays NULL
    }

    #[test]
    fn cardinality_instability_is_detected() {
        let mut db = Database::new();
        execute_script(&mut db, "CREATE TABLE t (x float8); INSERT INTO t VALUES (1)").unwrap();
        // A relation whose row count depends on its own decision value.
        let stmt = solve_stmt(
            "SOLVESELECT a(x) AS (SELECT * FROM t) \
             WITH b AS (SELECT x FROM a WHERE x > 0) USING s()",
        );
        let prob = build_problem(&db, &Ctes::new(), &stmt).unwrap();
        // With x = -1 the dependent relation b loses its row.
        let err =
            materialize_env(&db, &Ctes::new(), &prob, &CellPatch::Values(&[-1.0])).unwrap_err();
        assert!(err.to_string().contains("cardinality"));
    }
}
