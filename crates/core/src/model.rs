//! Shared problem models (paper §4.4): the model UDT, the `<<`
//! instantiation operator (Algorithm 1), and textual round-tripping so
//! models can be stored in tables like any other value.

use sqlengine::ast::{DecRel, SolveKind, SolveStmt};
use sqlengine::error::{Error, Result};
use sqlengine::parser;
use sqlengine::types::{custom, downcast, BinOp, CustomValue, Value};
use std::any::Any;
use std::sync::Arc;

/// A shared problem model: the 4-tuple (D, R, s, m) of §4.1, stored as
/// the unevaluated `SOLVEMODEL` AST. First-class value — storable in
/// tables, instantiable with `<<`, inlinable with `INLINE`, evaluable
/// with `MODELEVAL`.
#[derive(Debug, Clone)]
pub struct ModelValue {
    pub stmt: Arc<SolveStmt>,
}

impl ModelValue {
    pub fn new(stmt: SolveStmt) -> ModelValue {
        ModelValue { stmt: Arc::new(stmt) }
    }

    /// Parse a model back from its textual form (storage round-trip).
    pub fn parse(text: &str) -> Result<ModelValue> {
        let stmt = parser::parse_statement(text)?;
        match stmt {
            sqlengine::ast::Statement::Solve(s) => Ok(ModelValue::new(s)),
            _ => Err(Error::eval("text is not a SOLVEMODEL specification")),
        }
    }

    /// All relation aliases of D, input first.
    pub fn aliases(&self) -> Vec<Option<&str>> {
        let mut v = vec![self.stmt.input.alias.as_deref()];
        v.extend(self.stmt.ctes.iter().map(|c| c.alias.as_deref()));
        v
    }

    /// Algorithm 1: instantiate this (generic) model with another model's
    /// relations and rules. Relations of `delta` replace same-alias
    /// relations here; unmatched ones are appended. Same for rules;
    /// `delta`'s MINIMIZE/MAXIMIZE replace this model's when present.
    pub fn instantiate(&self, delta: &ModelValue) -> ModelValue {
        let mut out: SolveStmt = (*self.stmt).clone();

        // D := (m.D \ aliases(Δm.D)) ∪ Δm.D, preserving m's ordering for
        // replaced members and appending new members.
        let mut delta_rels: Vec<DecRel> = Vec::new();
        delta_rels.push(delta.stmt.input.clone());
        delta_rels.extend(delta.stmt.ctes.iter().cloned());

        let mut unmatched: Vec<DecRel> = Vec::new();
        for drel in delta_rels {
            let Some(alias) = drel.alias.clone() else {
                unmatched.push(drel);
                continue;
            };
            if out.input.alias.as_deref() == Some(alias.as_str()) {
                out.input = drel;
            } else if let Some(slot) =
                out.ctes.iter_mut().find(|c| c.alias.as_deref() == Some(alias.as_str()))
            {
                *slot = drel;
            } else {
                unmatched.push(drel);
            }
        }
        out.ctes.extend(unmatched);

        // R: named SUBJECTTO rules replace by alias, others append.
        for rule in &delta.stmt.subjectto {
            match &rule.alias {
                Some(a) => {
                    if let Some(slot) =
                        out.subjectto.iter_mut().find(|r| r.alias.as_deref() == Some(a.as_str()))
                    {
                        *slot = rule.clone();
                    } else {
                        out.subjectto.push(rule.clone());
                    }
                }
                None => out.subjectto.push(rule.clone()),
            }
        }
        if delta.stmt.minimize.is_some() {
            out.minimize = delta.stmt.minimize.clone();
        }
        if delta.stmt.maximize.is_some() {
            out.maximize = delta.stmt.maximize.clone();
        }
        if delta.stmt.using.is_some() {
            out.using = delta.stmt.using.clone();
        }
        out.kind = SolveKind::Model;
        ModelValue::new(out)
    }
}

impl PartialEq for ModelValue {
    fn eq(&self, other: &Self) -> bool {
        self.stmt == other.stmt
    }
}

impl CustomValue for ModelValue {
    fn type_name(&self) -> &str {
        "model"
    }

    fn to_text(&self) -> String {
        self.stmt.to_string()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn eq_custom(&self, other: &dyn CustomValue) -> bool {
        other.as_any().downcast_ref::<ModelValue>() == Some(self)
    }

    fn binop(&self, op: BinOp, other: &Value, self_is_lhs: bool) -> Option<Result<Value>> {
        if op == BinOp::Instantiate {
            if !self_is_lhs {
                // `x << model` with a non-model lhs: not ours to handle.
                return Some(Err(Error::eval(
                    "left operand of << must be a model when the right operand is a model",
                )));
            }
            let Some(delta) = downcast::<ModelValue>(other) else {
                return Some(Err(Error::eval("right operand of << must be a model")));
            };
            return Some(Ok(custom(self.instantiate(delta))));
        }
        None
    }

    fn cast(&self, type_name: &str) -> Option<Result<Value>> {
        match type_name {
            "model" => Some(Ok(custom(self.clone()))),
            "text" => Some(Ok(Value::text(self.to_text()))),
            _ => None,
        }
    }
}

/// Extract a model from a value, accepting text (re-parsed) for storage
/// round-trips.
pub fn expect_model(v: &Value) -> Result<ModelValue> {
    if let Some(m) = downcast::<ModelValue>(v) {
        return Ok(m.clone());
    }
    if let Value::Text(t) = v {
        return ModelValue::parse(t);
    }
    Err(Error::eval(format!("expected a model value, got {}", v.data_type().sql_name())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(sql: &str) -> ModelValue {
        ModelValue::parse(sql).unwrap()
    }

    const LTI: &str = "SOLVEMODEL pars AS (SELECT 0.0 AS a1, 0.0 AS b1, 0.0 AS b2) \
        WITH data0 AS (SELECT 21.0 AS intemp), \
             data AS (SELECT time, outtemp, intemp, hload FROM input)";

    #[test]
    fn parse_and_roundtrip() {
        let m = model(LTI);
        assert_eq!(m.aliases(), vec![Some("pars"), Some("data0"), Some("data")]);
        let reparsed = ModelValue::parse(&m.to_text()).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn instantiate_replaces_matching_alias() {
        // Paper §4.4: m << (SOLVEMODEL pars(b2) AS (...)).
        let m = model(LTI);
        let delta =
            model("SOLVEMODEL pars(b2) AS (SELECT 0.995 AS a1, 0.001 AS b1, 0.2::float8 AS b2)");
        let inst = m.instantiate(&delta);
        // pars is replaced (with decision column b2), other relations kept.
        assert_eq!(inst.stmt.input.alias.as_deref(), Some("pars"));
        assert_eq!(inst.stmt.input.dec_cols, sqlengine::ast::DecCols::List(vec!["b2".into()]));
        assert!(inst.to_text().contains("0.995"));
        assert_eq!(inst.stmt.ctes.len(), 2);
    }

    #[test]
    fn instantiate_appends_unknown_alias() {
        let m = model(LTI);
        let delta = model("SOLVEMODEL extra AS (SELECT 1 AS z)");
        let inst = m.instantiate(&delta);
        assert_eq!(inst.stmt.ctes.len(), 3);
        assert_eq!(inst.stmt.ctes[2].alias.as_deref(), Some("extra"));
    }

    #[test]
    fn instantiate_overrides_objective_and_rules() {
        let m = model(
            "SOLVEMODEL t(x) AS (SELECT 1 AS x) MINIMIZE (SELECT sum(x) FROM t) \
             SUBJECTTO bounds AS (SELECT x >= 0 FROM t) USING solverlp()",
        );
        let delta = model(
            "SOLVEMODEL t(x) AS (SELECT 2 AS x) MAXIMIZE (SELECT sum(x) FROM t) \
             SUBJECTTO bounds AS (SELECT x <= 9 FROM t), (SELECT x >= 1 FROM t)",
        );
        let inst = m.instantiate(&delta);
        assert!(inst.stmt.minimize.is_some()); // kept from m
        assert!(inst.stmt.maximize.is_some()); // added by delta
        assert_eq!(inst.stmt.subjectto.len(), 2); // bounds replaced + 1 anonymous
        assert!(inst.stmt.subjectto[0].query.to_string().contains("<= 9"));
    }

    #[test]
    fn shift_operator_dispatches_instantiation() {
        let m = custom(model(LTI));
        let delta = custom(model("SOLVEMODEL pars AS (SELECT 9.0 AS a1)"));
        let inst = Value::binop(BinOp::Instantiate, &m, &delta).unwrap();
        let mv = downcast::<ModelValue>(&inst).unwrap();
        assert!(mv.to_text().contains("9.0"));
        // Model on the right with a non-model left errors.
        assert!(Value::binop(BinOp::Instantiate, &Value::Int(1), &delta).is_err());
    }

    #[test]
    fn expect_model_accepts_text() {
        let v = Value::text(LTI);
        let m = expect_model(&v).unwrap();
        assert_eq!(m.aliases().len(), 3);
        assert!(expect_model(&Value::Int(1)).is_err());
    }

    #[test]
    fn model_casts() {
        let m = custom(model(LTI));
        let t = m.cast(&sqlengine::DataType::Text).unwrap();
        assert!(t.as_str().unwrap().starts_with("SOLVEMODEL"));
    }
}
