//! Problem explainability (paper §2's explainability discussion):
//! inspect what a `SOLVESELECT` compiles to — decision variables,
//! objective, constraints — without running a solver. This is the
//! PA-pipeline analogue of `EXPLAIN`.

use crate::problem::{build_problem, compile_linear, to_lp, ProblemInstance};
use crate::symbolic::{LinExpr, Rel};
use sqlengine::ast::{SolveStmt, Statement};
use sqlengine::catalog::{Ctes, Database};
use sqlengine::error::{Error, Result};
use sqlengine::parser;
use std::fmt::Write as _;

/// A human-readable account of a compiled problem.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// One line per decision relation: alias, rows, decision columns.
    pub relations: Vec<String>,
    /// Total decision variables (before pruning).
    pub variables: usize,
    /// Variables actually referenced by rules (after §4.3 pruning).
    pub used_variables: usize,
    /// Rendered objective, when linear.
    pub objective: Option<String>,
    pub minimize: bool,
    /// All rendered constraints when linear. [`Explanation::render`]
    /// caps how many it prints; the full list stays available here.
    pub constraints: Vec<String>,
    pub constraint_count: usize,
    /// Whether the rules compile to a linear program.
    pub linear: bool,
    /// The named solver and method.
    pub solver: Option<String>,
    /// Matrix-classification summary (row-class census, TU verdict,
    /// implied integrality), when the rules compile linear and the
    /// matrix has at least one row.
    pub matrix: Option<String>,
}

/// How many constraints [`Explanation::render`] prints before eliding
/// the rest with a `... and N more` line.
const MAX_RENDERED: usize = 20;

impl Explanation {
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "decision relations:");
        for r in &self.relations {
            let _ = writeln!(s, "  {r}");
        }
        let _ = writeln!(
            s,
            "variables: {} ({} referenced by rules)",
            self.variables, self.used_variables
        );
        if let Some(obj) = &self.objective {
            let _ = writeln!(
                s,
                "objective: {} {}",
                if self.minimize { "minimize" } else { "maximize" },
                obj
            );
        }
        let _ = writeln!(
            s,
            "constraints: {} ({})",
            self.constraint_count,
            if self.linear { "linear" } else { "not linear — black-box evaluation" }
        );
        for c in self.constraints.iter().take(MAX_RENDERED) {
            let _ = writeln!(s, "  {c}");
        }
        if self.constraints.len() > MAX_RENDERED {
            let _ = writeln!(s, "  ... and {} more", self.constraints.len() - MAX_RENDERED);
        }
        if let Some(mx) = &self.matrix {
            let _ = writeln!(s, "matrix: {mx}");
        }
        if let Some(sv) = &self.solver {
            let _ = writeln!(s, "solver: {sv}");
        }
        s
    }
}

/// One-line matrix summary for [`Explanation::matrix`]: census, TU
/// verdict and implied-integrality tally, comma-joined.
fn matrix_summary(p: &lp::Problem) -> Option<String> {
    if p.constraints.is_empty() {
        return None;
    }
    let a = lp::matrix::analyze(p);
    let mut parts = Vec::new();
    let census = a.census_label();
    if !census.is_empty() {
        parts.push(census);
    }
    if let Some(tu) = a.tu {
        parts.push(format!("totally unimodular ({})", tu.label()));
    }
    let declared = p.integer.iter().filter(|&&b| b).count();
    if declared > 0 && !a.relaxable.is_empty() {
        parts.push(format!("implied integrality {}/{declared}", a.relaxable.len()));
    }
    if parts.is_empty() {
        parts.push("no special structure".to_string());
    }
    Some(parts.join(", "))
}

pub(crate) fn var_name(prob: &ProblemInstance, v: u32) -> String {
    let info = &prob.vars[v as usize];
    let rel = &prob.relations[info.rel];
    format!(
        "{}[{}].{}",
        rel.alias.as_deref().unwrap_or("input"),
        info.row,
        rel.table.schema.columns[info.col].name
    )
}

pub(crate) fn render_linexpr(prob: &ProblemInstance, e: &LinExpr) -> String {
    let mut parts = Vec::new();
    for &(v, c) in &e.terms {
        if c == 1.0 {
            parts.push(var_name(prob, v));
        } else if c == -1.0 {
            parts.push(format!("-{}", var_name(prob, v)));
        } else {
            parts.push(format!("{c}*{}", var_name(prob, v)));
        }
    }
    if e.constant != 0.0 || parts.is_empty() {
        parts.push(format!("{}", e.constant));
    }
    parts.join(" + ")
}

/// Compile (but do not solve) a `SOLVESELECT`, reporting its structure.
pub fn explain_stmt(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<Explanation> {
    let prob = build_problem(db, ctes, stmt)?;
    let relations = prob
        .relations
        .iter()
        .map(|r| {
            let dec: Vec<&str> =
                r.dec_cols.iter().map(|&c| r.table.schema.columns[c].name.as_str()).collect();
            format!(
                "{} — {} rows, decision columns: [{}]",
                r.alias.as_deref().unwrap_or("<input>"),
                r.table.num_rows(),
                dec.join(", ")
            )
        })
        .collect();
    let solver = stmt.using.as_ref().map(|u| {
        let mut s = u.solver.clone();
        if let Some(m) = &u.method {
            s.push('.');
            s.push_str(m);
        }
        s
    });

    match compile_linear(db, ctes, &prob) {
        Ok(rules) => {
            let (lp_prob, used) = to_lp(&prob, &rules);
            let mut constraints = Vec::new();
            let mut count = 0usize;
            for c in &rules.constraints {
                for (l, rel, r) in c.atoms() {
                    count += 1;
                    let op = match rel {
                        Rel::Le => "<=",
                        Rel::Eq => "=",
                        Rel::Ge => ">=",
                    };
                    constraints.push(format!(
                        "{} {} {}",
                        render_linexpr(&prob, l),
                        op,
                        render_linexpr(&prob, r)
                    ));
                }
            }
            Ok(Explanation {
                relations,
                variables: prob.num_vars(),
                used_variables: used.len(),
                objective: Some(render_linexpr(&prob, &rules.objective)),
                minimize: rules.minimize,
                constraints,
                constraint_count: count,
                linear: true,
                solver,
                matrix: matrix_summary(&lp_prob),
            })
        }
        Err(_) => Ok(Explanation {
            relations,
            variables: prob.num_vars(),
            used_variables: prob.num_vars(),
            objective: None,
            minimize: prob.minimize.is_some() || prob.maximize.is_none(),
            constraints: vec![],
            constraint_count: prob.subjectto.len(),
            linear: false,
            solver,
            matrix: None,
        }),
    }
}

/// Parse and explain a `SOLVESELECT` statement.
pub fn explain_sql(db: &Database, sql: &str) -> Result<Explanation> {
    match parser::parse_statement(sql)? {
        Statement::Solve(stmt) => explain_stmt(db, &Ctes::new(), &stmt),
        _ => Err(Error::solver("EXPLAIN is only defined for SOLVESELECT statements")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::execute_script;

    fn db() -> Database {
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE pars (a float8, b float8); INSERT INTO pars VALUES (NULL, NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn explains_linear_problem() {
        let db = db();
        let e = explain_sql(
            &db,
            "SOLVESELECT p(a, b) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT 2*a + b FROM p) \
             SUBJECTTO (SELECT a + b >= 4, a >= 0, b >= 0 FROM p) \
             USING solverlp.cbc()",
        )
        .unwrap();
        assert!(e.linear);
        assert_eq!(e.variables, 2);
        assert_eq!(e.used_variables, 2);
        assert_eq!(e.constraint_count, 3);
        assert!(e.objective.as_deref().unwrap().contains("2*p[0].a"));
        assert_eq!(e.solver.as_deref(), Some("solverlp.cbc"));
        let text = e.render();
        assert!(text.contains("minimize"));
        assert!(text.contains("p — 1 rows"));
    }

    #[test]
    fn reports_pruning() {
        let db = db();
        let e = explain_sql(
            &db,
            "SOLVESELECT p(a, b) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT a FROM p) SUBJECTTO (SELECT a >= 1 FROM p) USING solverlp()",
        )
        .unwrap();
        assert_eq!(e.variables, 2);
        assert_eq!(e.used_variables, 1); // b pruned
    }

    #[test]
    fn nonlinear_problems_fall_back_to_blackbox_report() {
        let db = db();
        let e = explain_sql(
            &db,
            "SOLVESELECT p(a) AS (SELECT * FROM pars) \
             MINIMIZE (SELECT a * a FROM p) \
             SUBJECTTO (SELECT 0 <= a <= 1 FROM p) USING swarmops.pso()",
        )
        .unwrap();
        assert!(!e.linear);
        assert!(e.render().contains("black-box"));
    }

    #[test]
    fn rejects_plain_select() {
        let db = db();
        assert!(explain_sql(&db, "SELECT 1").is_err());
    }
}
