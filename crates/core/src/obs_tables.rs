//! Queryable observability tables.
//!
//! The metrics the engine records (see the `obs` crate) surface as
//! virtual tables readable with plain `SELECT`, in the spirit of
//! PostgreSQL's `pg_stat_statements`:
//!
//! - `sdb_stat_statements` — per statement-shape execution statistics
//!   (including plan-cache hit/miss counters);
//! - `sdb_solver_stats` — per (solver, method) telemetry aggregates;
//! - `sdb_sessions` — live connections (non-empty only under `solvedbd`);
//! - `sdb_storage` — WAL/checkpoint/recovery state (rows only when a
//!   storage engine is attached, i.e. the session runs with a data
//!   directory).
//!
//! Ordinary tables, views and CTEs shadow these names; the provider is
//! consulted only on a catalog miss.

use obs::{MetricsRegistry, SessionRegistry};
use sqlengine::catalog::VirtualTableProvider;
use sqlengine::table::{Column, Schema, Table};
use sqlengine::types::{DataType, Value};
use std::sync::Arc;
use storage::StorageEngine;

/// Names of the observability tables, sorted.
pub const OBS_TABLE_NAMES: [&str; 4] =
    ["sdb_sessions", "sdb_solver_stats", "sdb_stat_statements", "sdb_storage"];

/// The [`VirtualTableProvider`] exposing the metrics registry (and,
/// when attached by a server, the session registry; and, when running
/// with a data directory, the storage engine).
pub struct ObsTables {
    metrics: Arc<MetricsRegistry>,
    sessions: Option<Arc<SessionRegistry>>,
    storage: Option<Arc<StorageEngine>>,
}

impl ObsTables {
    pub fn new(
        metrics: Arc<MetricsRegistry>,
        sessions: Option<Arc<SessionRegistry>>,
        storage: Option<Arc<StorageEngine>>,
    ) -> ObsTables {
        ObsTables { metrics, sessions, storage }
    }
}

/// `sdb_storage` with no engine attached: same schema, zero rows, so
/// `SELECT * FROM sdb_storage` is valid in ephemeral sessions too.
fn empty_storage_table() -> Table {
    let mut t = StorageEngine::status_schema_table();
    t.rows.clear();
    t
}

fn ms(nanos: u64) -> Value {
    Value::Float(nanos as f64 / 1_000_000.0)
}

fn int(n: u64) -> Value {
    Value::Int(n as i64)
}

fn stat_statements(metrics: &MetricsRegistry) -> Table {
    let schema = Schema::new(vec![
        Column::new("query", DataType::Text),
        Column::new("calls", DataType::Int),
        Column::new("errors", DataType::Int),
        Column::new("total_ms", DataType::Float),
        Column::new("mean_ms", DataType::Float),
        Column::new("min_ms", DataType::Float),
        Column::new("max_ms", DataType::Float),
        Column::new("rows", DataType::Int),
        Column::new("plan", DataType::Text),
        Column::new("cache_hits", DataType::Int),
        Column::new("cache_misses", DataType::Int),
    ]);
    let rows = metrics
        .statements()
        .into_iter()
        .map(|(shape, s)| {
            vec![
                Value::text(&shape),
                int(s.calls),
                int(s.errors),
                ms(s.total_nanos),
                ms(s.total_nanos.checked_div(s.calls).unwrap_or(0)),
                ms(s.min_nanos),
                ms(s.max_nanos),
                int(s.rows),
                s.last_plan.map(|p| Value::text(format!("{p:016x}"))).unwrap_or(Value::Null),
                int(s.cache_hits),
                int(s.cache_misses),
            ]
        })
        .collect();
    Table::with_rows(schema, rows)
}

fn solver_stats(metrics: &MetricsRegistry) -> Table {
    let schema = Schema::new(vec![
        Column::new("solver", DataType::Text),
        Column::new("method", DataType::Text),
        Column::new("runs", DataType::Int),
        Column::new("total_ms", DataType::Float),
        Column::new("iterations", DataType::Int),
        Column::new("nodes_explored", DataType::Int),
        Column::new("nodes_pruned", DataType::Int),
        Column::new("evaluations", DataType::Int),
        Column::new("restarts", DataType::Int),
        Column::new("presolve_cols", DataType::Int),
        Column::new("presolve_rows", DataType::Int),
        Column::new("presolve_bounds", DataType::Int),
        Column::new("last_objective", DataType::Float),
    ]);
    let rows = metrics
        .solvers()
        .into_iter()
        .map(|((solver, method), a)| {
            vec![
                Value::text(&solver),
                Value::text(&method),
                int(a.runs),
                ms(a.total_nanos),
                int(a.iterations),
                int(a.nodes_explored),
                int(a.nodes_pruned),
                int(a.evaluations),
                int(a.restarts),
                int(a.presolve_cols),
                int(a.presolve_rows),
                int(a.presolve_bounds),
                a.last_objective.map(Value::Float).unwrap_or(Value::Null),
            ]
        })
        .collect();
    Table::with_rows(schema, rows)
}

fn sessions_table(sessions: Option<&SessionRegistry>) -> Table {
    let schema = Schema::new(vec![
        Column::new("session_id", DataType::Int),
        Column::new("uptime_ms", DataType::Float),
        Column::new("queries", DataType::Int),
        Column::new("bytes_in", DataType::Int),
        Column::new("bytes_out", DataType::Int),
    ]);
    let rows = sessions
        .map(|reg| {
            reg.snapshot()
                .into_iter()
                .map(|s| {
                    vec![
                        int(s.id),
                        ms(s.uptime_nanos),
                        int(s.queries),
                        int(s.bytes_in),
                        int(s.bytes_out),
                    ]
                })
                .collect()
        })
        .unwrap_or_default();
    Table::with_rows(schema, rows)
}

impl VirtualTableProvider for ObsTables {
    fn names(&self) -> Vec<String> {
        OBS_TABLE_NAMES.iter().map(|s| s.to_string()).collect()
    }

    fn table(&self, name: &str) -> Option<Table> {
        match name {
            "sdb_stat_statements" => Some(stat_statements(&self.metrics)),
            "sdb_solver_stats" => Some(solver_stats(&self.metrics)),
            "sdb_sessions" => Some(sessions_table(self.sessions.as_deref())),
            "sdb_storage" => Some(
                self.storage.as_ref().map(|e| e.status_table()).unwrap_or_else(empty_storage_table),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registries_yield_empty_tables() {
        let p = ObsTables::new(Arc::new(MetricsRegistry::default()), None, None);
        for name in OBS_TABLE_NAMES {
            let t = p.table(name).unwrap();
            assert_eq!(t.num_rows(), 0, "{name}");
            assert!(t.schema.len() >= 5, "{name}");
        }
        assert!(p.table("sdb_nothing").is_none());
    }

    #[test]
    fn solver_rows_carry_aggregates() {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.record_solver(
            &obs::SolverStats {
                solver: "solverlp".into(),
                method: "bb".into(),
                iterations: 7,
                nodes_explored: 3,
                presolve_cols: 2,
                presolve_bounds: 4,
                objective: Some(1.5),
                ..obs::SolverStats::default()
            },
            2_000_000,
        );
        let t = ObsTables::new(metrics, None, None).table("sdb_solver_stats").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.rows[0][0], Value::text("solverlp"));
        assert_eq!(t.rows[0][2], Value::Int(1));
        assert_eq!(t.rows[0][4], Value::Int(7));
        assert_eq!(t.rows[0][9], Value::Int(2));
        assert_eq!(t.rows[0][11], Value::Int(4));
        assert_eq!(t.rows[0][12], Value::Float(1.5));
    }
}
