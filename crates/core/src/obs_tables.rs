//! Queryable observability tables.
//!
//! The metrics the engine records (see the `obs` crate) surface as
//! virtual tables readable with plain `SELECT`, in the spirit of
//! PostgreSQL's `pg_stat_statements`:
//!
//! - `sdb_stat_statements` — per statement-shape execution statistics
//!   (including plan-cache hit/miss counters and latency quantiles);
//! - `sdb_solver_stats` — per (solver, method) telemetry aggregates,
//!   including the last run's incumbent trajectory;
//! - `sdb_metrics` — latency histograms (pipeline stages, WAL append /
//!   fsync, pooled statement latency) with p50/p90/p99/max;
//! - `sdb_sessions` — live connections (non-empty only under
//!   `solvedbd`), including the watchdog `kill` flag;
//! - `sdb_storage` — WAL/checkpoint/recovery state (rows only when a
//!   storage engine is attached, i.e. the session runs with a data
//!   directory).
//!
//! Ordinary tables, views and CTEs shadow these names; the provider is
//! consulted only on a catalog miss.

use obs::{MetricsRegistry, SessionRegistry};
use sqlengine::catalog::VirtualTableProvider;
use sqlengine::table::{Column, Schema, Table};
use sqlengine::types::{DataType, Value};
use std::sync::Arc;
use storage::StorageEngine;

/// Names of the observability tables, sorted.
pub const OBS_TABLE_NAMES: [&str; 5] =
    ["sdb_metrics", "sdb_sessions", "sdb_solver_stats", "sdb_stat_statements", "sdb_storage"];

/// The [`VirtualTableProvider`] exposing the metrics registry (and,
/// when attached by a server, the session registry; and, when running
/// with a data directory, the storage engine).
pub struct ObsTables {
    metrics: Arc<MetricsRegistry>,
    sessions: Option<Arc<SessionRegistry>>,
    storage: Option<Arc<StorageEngine>>,
}

impl ObsTables {
    pub fn new(
        metrics: Arc<MetricsRegistry>,
        sessions: Option<Arc<SessionRegistry>>,
        storage: Option<Arc<StorageEngine>>,
    ) -> ObsTables {
        ObsTables { metrics, sessions, storage }
    }
}

/// `sdb_storage` with no engine attached: same schema, zero rows, so
/// `SELECT * FROM sdb_storage` is valid in ephemeral sessions too.
fn empty_storage_table() -> Table {
    let mut t = StorageEngine::status_schema_table();
    t.rows.clear();
    t
}

fn ms(nanos: u64) -> Value {
    Value::Float(nanos as f64 / 1_000_000.0)
}

fn int(n: u64) -> Value {
    Value::Int(n as i64)
}

fn stat_statements(metrics: &MetricsRegistry) -> Table {
    let schema = Schema::new(vec![
        Column::new("query", DataType::Text),
        Column::new("calls", DataType::Int),
        Column::new("errors", DataType::Int),
        Column::new("total_ms", DataType::Float),
        Column::new("mean_ms", DataType::Float),
        Column::new("min_ms", DataType::Float),
        Column::new("max_ms", DataType::Float),
        Column::new("p50_ms", DataType::Float),
        Column::new("p95_ms", DataType::Float),
        Column::new("p99_ms", DataType::Float),
        Column::new("rows", DataType::Int),
        Column::new("plan", DataType::Text),
        Column::new("cache_hits", DataType::Int),
        Column::new("cache_misses", DataType::Int),
    ]);
    let rows = metrics
        .statements()
        .into_iter()
        .map(|(shape, s)| {
            vec![
                Value::text(&shape),
                int(s.calls),
                int(s.errors),
                ms(s.total_nanos),
                ms(s.total_nanos.checked_div(s.calls).unwrap_or(0)),
                ms(s.min_nanos),
                ms(s.max_nanos),
                ms(s.latency.p50()),
                ms(s.latency.p95()),
                ms(s.latency.p99()),
                int(s.rows),
                s.last_plan.map(|p| Value::text(format!("{p:016x}"))).unwrap_or(Value::Null),
                int(s.cache_hits),
                int(s.cache_misses),
            ]
        })
        .collect();
    Table::with_rows(schema, rows)
}

fn solver_stats(metrics: &MetricsRegistry) -> Table {
    let schema = Schema::new(vec![
        Column::new("solver", DataType::Text),
        Column::new("method", DataType::Text),
        Column::new("runs", DataType::Int),
        Column::new("total_ms", DataType::Float),
        Column::new("iterations", DataType::Int),
        Column::new("nodes_explored", DataType::Int),
        Column::new("nodes_pruned", DataType::Int),
        Column::new("evaluations", DataType::Int),
        Column::new("restarts", DataType::Int),
        Column::new("presolve_cols", DataType::Int),
        Column::new("presolve_rows", DataType::Int),
        Column::new("presolve_bounds", DataType::Int),
        Column::new("blocks", DataType::Int),
        Column::new("matrix_class", DataType::Text),
        Column::new("integrality_proof", DataType::Text),
        Column::new("last_objective", DataType::Float),
        Column::new("incumbents", DataType::Text),
    ]);
    let rows = metrics
        .solvers()
        .into_iter()
        .map(|((solver, method), a)| {
            vec![
                Value::text(&solver),
                Value::text(&method),
                int(a.runs),
                ms(a.total_nanos),
                int(a.iterations),
                int(a.nodes_explored),
                int(a.nodes_pruned),
                int(a.evaluations),
                int(a.restarts),
                int(a.presolve_cols),
                int(a.presolve_rows),
                int(a.presolve_bounds),
                int(a.blocks),
                if a.last_matrix_class.is_empty() {
                    Value::Null
                } else {
                    Value::text(&a.last_matrix_class)
                },
                if a.last_integrality_proof.is_empty() {
                    Value::Null
                } else {
                    Value::text(&a.last_integrality_proof)
                },
                a.last_objective.map(Value::Float).unwrap_or(Value::Null),
                if a.last_incumbents.is_empty() {
                    Value::Null
                } else {
                    let traj: Vec<String> =
                        a.last_incumbents.iter().map(|&(at, obj)| format!("{obj}@{at}")).collect();
                    Value::text(format!("[{}]", traj.join(", ")))
                },
            ]
        })
        .collect();
    Table::with_rows(schema, rows)
}

/// One row per latency histogram: every pipeline-stage path recorded by
/// the tracer, plus the pooled per-statement latency as `statement`.
fn metrics_table(metrics: &MetricsRegistry) -> Table {
    let schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("count", DataType::Int),
        Column::new("total_ms", DataType::Float),
        Column::new("p50_ms", DataType::Float),
        Column::new("p90_ms", DataType::Float),
        Column::new("p99_ms", DataType::Float),
        Column::new("max_ms", DataType::Float),
    ]);
    let mut rows = Vec::new();
    let pooled = metrics.statement_latency();
    if !pooled.is_empty() {
        rows.push(hist_row("statement", &pooled));
    }
    for (name, h) in metrics.stages() {
        rows.push(hist_row(&name, &h));
    }
    Table::with_rows(schema, rows)
}

fn hist_row(name: &str, h: &obs::Histogram) -> Vec<Value> {
    vec![
        Value::text(name),
        int(h.count()),
        ms(h.sum()),
        ms(h.p50()),
        ms(h.p90()),
        ms(h.p99()),
        ms(h.max()),
    ]
}

fn sessions_table(sessions: Option<&SessionRegistry>) -> Table {
    let schema = Schema::new(vec![
        Column::new("session_id", DataType::Int),
        Column::new("uptime_ms", DataType::Float),
        Column::new("queries", DataType::Int),
        Column::new("bytes_in", DataType::Int),
        Column::new("bytes_out", DataType::Int),
        Column::new("kill", DataType::Bool),
    ]);
    let rows = sessions
        .map(|reg| {
            reg.snapshot()
                .into_iter()
                .map(|s| {
                    vec![
                        int(s.id),
                        ms(s.uptime_nanos),
                        int(s.queries),
                        int(s.bytes_in),
                        int(s.bytes_out),
                        Value::Bool(s.kill),
                    ]
                })
                .collect()
        })
        .unwrap_or_default();
    Table::with_rows(schema, rows)
}

impl VirtualTableProvider for ObsTables {
    fn names(&self) -> Vec<String> {
        OBS_TABLE_NAMES.iter().map(|s| s.to_string()).collect()
    }

    fn table(&self, name: &str) -> Option<Table> {
        match name {
            "sdb_stat_statements" => Some(stat_statements(&self.metrics)),
            "sdb_solver_stats" => Some(solver_stats(&self.metrics)),
            "sdb_metrics" => Some(metrics_table(&self.metrics)),
            "sdb_sessions" => Some(sessions_table(self.sessions.as_deref())),
            "sdb_storage" => Some(
                self.storage.as_ref().map(|e| e.status_table()).unwrap_or_else(empty_storage_table),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registries_yield_empty_tables() {
        let p = ObsTables::new(Arc::new(MetricsRegistry::default()), None, None);
        for name in OBS_TABLE_NAMES {
            let t = p.table(name).unwrap();
            assert_eq!(t.num_rows(), 0, "{name}");
            assert!(t.schema.len() >= 5, "{name}");
        }
        assert!(p.table("sdb_nothing").is_none());
    }

    #[test]
    fn solver_rows_carry_aggregates() {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.record_solver(
            &obs::SolverStats {
                solver: "solverlp".into(),
                method: "bb".into(),
                iterations: 7,
                nodes_explored: 3,
                presolve_cols: 2,
                presolve_bounds: 4,
                objective: Some(1.5),
                matrix_class: "setpart:2".into(),
                integrality_proof: "network-tu".into(),
                blocks: 3,
                ..obs::SolverStats::default()
            },
            2_000_000,
        );
        let t = ObsTables::new(metrics, None, None).table("sdb_solver_stats").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.rows[0][0], Value::text("solverlp"));
        assert_eq!(t.rows[0][2], Value::Int(1));
        assert_eq!(t.rows[0][4], Value::Int(7));
        assert_eq!(t.rows[0][9], Value::Int(2));
        assert_eq!(t.rows[0][11], Value::Int(4));
        assert_eq!(t.rows[0][12], Value::Int(3));
        assert_eq!(t.rows[0][13], Value::text("setpart:2"));
        assert_eq!(t.rows[0][14], Value::text("network-tu"));
        assert_eq!(t.rows[0][15], Value::Float(1.5));
    }

    #[test]
    fn solver_rows_render_the_incumbent_trajectory() {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.record_solver(
            &obs::SolverStats {
                solver: "solverlp".into(),
                method: "bb".into(),
                objective: Some(6.5),
                incumbents: vec![(1, 4.0), (3, 6.5)],
                ..obs::SolverStats::default()
            },
            1_000,
        );
        let t = ObsTables::new(metrics, None, None).table("sdb_solver_stats").unwrap();
        let last = t.rows[0].last().unwrap();
        assert_eq!(last, &Value::text("[4@1, 6.5@3]"));
    }

    #[test]
    fn metrics_table_surfaces_stage_and_statement_histograms() {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.record_stage("wal.fsync", 2_000_000);
        metrics.record_stage("wal.fsync", 4_000_000);
        metrics.record_statement_exec("SELECT ?", 1_000_000, 1, false, None, None);
        let t = ObsTables::new(metrics, None, None).table("sdb_metrics").unwrap();
        assert_eq!(t.schema.columns[0].name, "name");
        let names: Vec<String> = t.rows.iter().map(|r| format!("{}", r[0])).collect();
        assert!(names.contains(&"statement".to_string()), "{names:?}");
        assert!(names.contains(&"wal.fsync".to_string()), "{names:?}");
        let fsync = t.rows.iter().find(|r| format!("{}", r[0]) == "wal.fsync").unwrap();
        assert_eq!(fsync[1], Value::Int(2));
    }

    #[test]
    fn stat_statements_carry_latency_quantiles() {
        let metrics = Arc::new(MetricsRegistry::default());
        for _ in 0..10 {
            metrics.record_statement_exec("SELECT ?", 1_000_000, 1, false, None, None);
        }
        let t = ObsTables::new(metrics, None, None).table("sdb_stat_statements").unwrap();
        let p50_idx = t.schema.columns.iter().position(|c| c.name == "p50_ms").unwrap();
        match t.rows[0][p50_idx] {
            Value::Float(v) => assert!(v > 0.9 && v < 1.2, "p50 {v}"),
            ref other => panic!("got {other:?}"),
        }
    }
}
