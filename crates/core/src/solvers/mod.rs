//! Built-in solvers: LP/MIP, black-box global optimization, and the
//! predictive framework.

mod lp_solver;
mod predict;
mod swarmops;

pub use lp_solver::LpSolver;
pub use predict::{prepare, search_arima_order, ArimaSolver, LrSolver, PredictiveAdvisor};
pub use swarmops::SwarmOps;
