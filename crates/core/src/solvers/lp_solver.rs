//! `solverlp` — the LP/MIP solver of SolveDB+ (paper §4.1, `USING
//! solverlp.cbc()`), backed by this repository's simplex and
//! branch-and-bound instead of CBC/GLPK.

use crate::check::presolve::reduce::{reduce, Presolved};
use crate::check::presolve::Counts;
use crate::problem::{apply_solution, compile_linear, to_lp, ProblemInstance};
use crate::solver::{SolveContext, Solver};
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use std::collections::HashMap;

#[derive(Debug, Default)]
pub struct LpSolver;

impl Solver for LpSolver {
    fn name(&self) -> &str {
        "solverlp"
    }

    fn methods(&self) -> Vec<&str> {
        // cbc/glpk are accepted for compatibility with the paper's
        // listings; both route to the built-in simplex/branch-and-bound.
        vec!["cbc", "glpk", "simplex", "bb", "auto"]
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let (mut lp_prob, used) = ctx.stage("compile", || -> Result<_> {
            let rules = compile_linear(ctx.db, ctx.ctes, prob)?;
            Ok(to_lp(prob, &rules))
        })?;
        // Method `simplex` forces the LP relaxation even with integers.
        if prob.method.as_deref() == Some("simplex") {
            lp_prob.integer.iter_mut().for_each(|b| *b = false);
        }
        let node_limit = match prob.param_usize("node_limit") {
            Some(Ok(limit)) => Some(limit),
            _ => None,
        };
        // Interval-propagation presolve (on by default; `presolve := off`
        // disables it). Shrinks the problem the simplex/B&B actually
        // sees; the solution is un-crushed back to the full variable
        // space before post-processing.
        let presolve_on = prob
            .param_text("presolve")
            .map(|v| !matches!(v.to_ascii_lowercase().as_str(), "off" | "false" | "0"))
            .unwrap_or(true);
        let mut pre: Option<Presolved> =
            presolve_on.then(|| ctx.stage("presolve", || reduce(&lp_prob)));
        let counts = pre.as_ref().map(|p| p.counts()).unwrap_or_default();
        // Matrix classification (on by default; `matrixclass := off`
        // disables it): classify rows, look for an integrality proof,
        // and register the row classes on the problem the solver sees
        // (the registration point for future cut separators).
        let matrixclass_on = prob
            .param_text("matrixclass")
            .map(|v| !matches!(v.to_ascii_lowercase().as_str(), "off" | "false" | "0"))
            .unwrap_or(true);
        let analysis: Option<lp::matrix::MatrixAnalysis> = if matrixclass_on {
            let target = pre.as_mut().map(|p| &mut p.reduced).unwrap_or(&mut lp_prob);
            Some(ctx.stage("matrixclass", || {
                let a = lp::matrix::analyze(target);
                target.row_classes = a.row_classes.clone();
                a
            }))
        } else {
            None
        };
        let (sol, stats) = ctx.stage("solve-lp", || {
            if pre.as_ref().is_some_and(|p| p.infeasible()) {
                return (lp::Solution::infeasible(), None);
            }
            let target = pre.as_ref().map(|p| &p.reduced).unwrap_or(&lp_prob);
            if target.num_vars == 0 {
                // Propagation fixed every variable; the objective is
                // the folded constant and there is nothing to solve.
                return (
                    lp::Solution {
                        status: lp::Status::Optimal,
                        x: vec![],
                        objective: target.objective_constant,
                        iterations: 0,
                        nodes: 0,
                    },
                    None,
                );
            }
            if target.has_integers() {
                solve_mip(ctx, target, analysis.as_ref(), node_limit)
            } else {
                (lp::simplex::solve_lp(target), None)
            }
        });
        let (matrix_class, integrality_proof, blocks) = match &analysis {
            Some(a) => {
                let target = pre.as_ref().map(|p| &p.reduced).unwrap_or(&lp_prob);
                (a.census_label(), a.proof_label(target), lp::matrix::block_count(target) as u64)
            }
            None => (String::new(), String::new(), 0),
        };
        let sol = match &pre {
            Some(p) => p.uncrush_solution(sol),
            None => sol,
        };
        let mut tele = telemetry(&sol, stats.as_ref(), counts);
        tele.matrix_class = matrix_class;
        tele.integrality_proof = integrality_proof;
        tele.blocks = blocks;
        let incumbents = tele.incumbents.clone();
        ctx.report(tele);
        if sol.status == lp::Status::Interrupted {
            // Watchdog fired: surface the trajectory collected so far
            // instead of a result table.
            return Err(ctx.abort_error(&incumbents));
        }
        ctx.stage("post-process", || finish(prob, sol, &used))
    }
}

/// Integer-feasibility tolerance for accepting a shortcut solution;
/// matches the branch-and-bound's own tolerance.
const SHORTCUT_INT_TOL: f64 = 1e-6;

/// Solve the integer problem, acting on the matrix-classification
/// proofs when available:
///
/// - **Full certificate** (TU over integral data, or every declared
///   integer provably implied): solve the LP relaxation only. The
///   solution's integrality is *verified* before acceptance — the
///   certificate decides when to try the shortcut, never whether to
///   trust its result — so an unsound claim falls back to full
///   branch-and-bound instead of producing a wrong answer.
/// - **Partial implied integrality**: relax the provably-implied
///   integer declarations so branch-and-bound never branches on them
///   (shrinking the tree), verify, same fallback.
fn solve_mip(
    ctx: &SolveContext<'_>,
    target: &lp::Problem,
    analysis: Option<&lp::matrix::MatrixAnalysis>,
    node_limit: Option<usize>,
) -> (lp::Solution, Option<lp::mip::MipStats>) {
    if let Some(a) = analysis {
        let declared: Vec<usize> = (0..target.num_vars).filter(|&j| target.integer[j]).collect();
        let full_proof = a.exactness_proof().is_some()
            || (!declared.is_empty() && declared.iter().all(|&j| a.implied_integral[j]));
        if full_proof {
            let mut relaxed = target.clone();
            relaxed.integer.iter_mut().for_each(|b| *b = false);
            let mut sol = lp::simplex::solve_lp(&relaxed);
            if accept_integral(target, &mut sol, &declared) {
                let stats = lp::mip::MipStats {
                    simplex_iterations: sol.iterations,
                    incumbents: vec![(0, sol.objective)],
                    ..lp::mip::MipStats::default()
                };
                return (sol, Some(stats));
            }
        } else if !a.relaxable.is_empty() {
            let mut relaxed = target.clone();
            for &j in &a.relaxable {
                relaxed.integer[j] = false;
            }
            let (mut sol, stats) = branch_and_bound(ctx, &relaxed, node_limit);
            if sol.status != lp::Status::Optimal || accept_integral(target, &mut sol, &declared) {
                return (sol, Some(stats));
            }
        }
    }
    let (sol, stats) = branch_and_bound(ctx, target, node_limit);
    (sol, Some(stats))
}

/// Verify that `sol` is integral on `declared` within tolerance; on
/// success snap those entries to integers and recompute the objective.
fn accept_integral(target: &lp::Problem, sol: &mut lp::Solution, declared: &[usize]) -> bool {
    if sol.status != lp::Status::Optimal {
        return false;
    }
    let ok = declared.iter().all(|&j| (sol.x[j] - sol.x[j].round()).abs() <= SHORTCUT_INT_TOL);
    if ok {
        for &j in declared {
            sol.x[j] = sol.x[j].round();
        }
        sol.objective = target.objective_value(&sol.x);
    }
    ok
}

fn branch_and_bound(
    ctx: &SolveContext<'_>,
    target: &lp::Problem,
    node_limit: Option<usize>,
) -> (lp::Solution, lp::mip::MipStats) {
    let opts = match node_limit {
        Some(limit) => lp::mip::MipOptions { node_limit: limit, ..Default::default() },
        None => lp::mip::MipOptions::default(),
    };
    // Progress points double as the watchdog's cooperative cancellation
    // checks (every PROGRESS_NODE_INTERVAL nodes plus every new
    // incumbent).
    lp::mip::branch_and_bound_with(target, opts, &mut |p| {
        ctx.progress(obs::ProgressEvent {
            solver: "solverlp".into(),
            method: "mip".into(),
            nodes: p.nodes as u64,
            iterations: p.pivots as u64,
            incumbent: p.incumbent,
            best_bound: p.best_bound,
            ..obs::ProgressEvent::default()
        })
    })
}

/// Map an LP/MIP outcome onto the shared solver-telemetry shape.
fn telemetry(
    sol: &lp::Solution,
    stats: Option<&lp::mip::MipStats>,
    counts: Counts,
) -> obs::SolverStats {
    // Interrupted solves carry an objective only when an incumbent was
    // found before the watchdog fired.
    let objective = (matches!(sol.status, lp::Status::Optimal | lp::Status::NodeLimit)
        || (sol.status == lp::Status::Interrupted && !sol.x.is_empty()))
    .then_some(sol.objective);
    let mut out = match stats {
        Some(st) => obs::SolverStats {
            solver: "solverlp".into(),
            method: "bb".into(),
            iterations: st.simplex_iterations as u64,
            nodes_explored: st.nodes_explored as u64,
            nodes_pruned: st.nodes_pruned as u64,
            objective,
            incumbents: st.incumbents.iter().map(|&(n, v)| (n as u64, v)).collect(),
            ..obs::SolverStats::default()
        },
        None => obs::SolverStats {
            solver: "solverlp".into(),
            method: "simplex".into(),
            iterations: sol.iterations as u64,
            objective,
            ..obs::SolverStats::default()
        },
    };
    out.presolve_cols = counts.cols_removed;
    out.presolve_rows = counts.rows_removed;
    out.presolve_bounds = counts.bounds_tightened;
    out
}

fn finish(
    prob: &ProblemInstance,
    sol: lp::Solution,
    used: &[crate::symbolic::VarId],
) -> Result<Table> {
    match sol.status {
        lp::Status::Optimal | lp::Status::NodeLimit => {
            let assignment: HashMap<u32, f64> =
                used.iter().enumerate().map(|(i, &v)| (v, sol.x[i])).collect();
            Ok(apply_solution(prob, &|v| assignment.get(&v).copied()))
        }
        lp::Status::Infeasible => Err(Error::solver("the problem is infeasible")),
        lp::Status::Unbounded => Err(Error::solver("the problem is unbounded")),
        // Interrupted solves are turned into SolveTimeout before
        // post-processing; reaching here would be a solver bug.
        lp::Status::Interrupted => {
            Err(Error::solver("internal: interrupted solve was not aborted"))
        }
    }
}
