//! `solverlp` — the LP/MIP solver of SolveDB+ (paper §4.1, `USING
//! solverlp.cbc()`), backed by this repository's simplex and
//! branch-and-bound instead of CBC/GLPK.

use crate::problem::{apply_solution, compile_linear, to_lp, ProblemInstance};
use crate::solver::{SolveContext, Solver};
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use std::collections::HashMap;

#[derive(Debug, Default)]
pub struct LpSolver;

impl Solver for LpSolver {
    fn name(&self) -> &str {
        "solverlp"
    }

    fn methods(&self) -> Vec<&str> {
        // cbc/glpk are accepted for compatibility with the paper's
        // listings; both route to the built-in simplex/branch-and-bound.
        vec!["cbc", "glpk", "simplex", "bb", "auto"]
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let rules = compile_linear(ctx.db, ctx.ctes, prob)?;
        let (mut lp_prob, used) = to_lp(prob, &rules);
        // A node limit can be supplied for large MIPs.
        if let Some(Ok(limit)) = prob.param_usize("node_limit") {
            if lp_prob.has_integers() {
                let sol = lp::mip::branch_and_bound(
                    &lp_prob,
                    lp::mip::MipOptions { node_limit: limit, ..Default::default() },
                );
                return finish(prob, sol, &used);
            }
        }
        // Method `simplex` forces the LP relaxation even with integers.
        if prob.method.as_deref() == Some("simplex") {
            lp_prob.integer.iter_mut().for_each(|b| *b = false);
        }
        let sol = lp::solve(&lp_prob);
        finish(prob, sol, &used)
    }
}

fn finish(
    prob: &ProblemInstance,
    sol: lp::Solution,
    used: &[crate::symbolic::VarId],
) -> Result<Table> {
    match sol.status {
        lp::Status::Optimal | lp::Status::NodeLimit => {
            let assignment: HashMap<u32, f64> =
                used.iter().enumerate().map(|(i, &v)| (v, sol.x[i])).collect();
            Ok(apply_solution(prob, &|v| assignment.get(&v).copied()))
        }
        lp::Status::Infeasible => Err(Error::solver("the problem is infeasible")),
        lp::Status::Unbounded => Err(Error::solver("the problem is unbounded")),
    }
}
