//! `solverlp` — the LP/MIP solver of SolveDB+ (paper §4.1, `USING
//! solverlp.cbc()`), backed by this repository's simplex and
//! branch-and-bound instead of CBC/GLPK.

use crate::problem::{apply_solution, compile_linear, to_lp, ProblemInstance};
use crate::solver::{SolveContext, Solver};
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use std::collections::HashMap;

#[derive(Debug, Default)]
pub struct LpSolver;

impl Solver for LpSolver {
    fn name(&self) -> &str {
        "solverlp"
    }

    fn methods(&self) -> Vec<&str> {
        // cbc/glpk are accepted for compatibility with the paper's
        // listings; both route to the built-in simplex/branch-and-bound.
        vec!["cbc", "glpk", "simplex", "bb", "auto"]
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let (mut lp_prob, used) = ctx.stage("compile", || -> Result<_> {
            let rules = compile_linear(ctx.db, ctx.ctes, prob)?;
            Ok(to_lp(prob, &rules))
        })?;
        // Method `simplex` forces the LP relaxation even with integers.
        if prob.method.as_deref() == Some("simplex") {
            lp_prob.integer.iter_mut().for_each(|b| *b = false);
        }
        let node_limit = match prob.param_usize("node_limit") {
            Some(Ok(limit)) => Some(limit),
            _ => None,
        };
        let (sol, stats) = ctx.stage("solve-lp", || {
            if lp_prob.has_integers() {
                let opts = match node_limit {
                    Some(limit) => lp::mip::MipOptions { node_limit: limit, ..Default::default() },
                    None => lp::mip::MipOptions::default(),
                };
                let (sol, st) = lp::mip::branch_and_bound_stats(&lp_prob, opts);
                (sol, Some(st))
            } else {
                (lp::simplex::solve_lp(&lp_prob), None)
            }
        });
        ctx.report(telemetry(&sol, stats.as_ref()));
        ctx.stage("post-process", || finish(prob, sol, &used))
    }
}

/// Map an LP/MIP outcome onto the shared solver-telemetry shape.
fn telemetry(sol: &lp::Solution, stats: Option<&lp::mip::MipStats>) -> obs::SolverStats {
    let objective =
        matches!(sol.status, lp::Status::Optimal | lp::Status::NodeLimit).then_some(sol.objective);
    match stats {
        Some(st) => obs::SolverStats {
            solver: "solverlp".into(),
            method: "bb".into(),
            iterations: st.simplex_iterations as u64,
            nodes_explored: st.nodes_explored as u64,
            nodes_pruned: st.nodes_pruned as u64,
            objective,
            incumbents: st.incumbents.iter().map(|&(n, v)| (n as u64, v)).collect(),
            ..obs::SolverStats::default()
        },
        None => obs::SolverStats {
            solver: "solverlp".into(),
            method: "simplex".into(),
            iterations: sol.iterations as u64,
            objective,
            ..obs::SolverStats::default()
        },
    }
}

fn finish(
    prob: &ProblemInstance,
    sol: lp::Solution,
    used: &[crate::symbolic::VarId],
) -> Result<Table> {
    match sol.status {
        lp::Status::Optimal | lp::Status::NodeLimit => {
            let assignment: HashMap<u32, f64> =
                used.iter().enumerate().map(|(i, &v)| (v, sol.x[i])).collect();
            Ok(apply_solution(prob, &|v| assignment.get(&v).copied()))
        }
        lp::Status::Infeasible => Err(Error::solver("the problem is infeasible")),
        lp::Status::Unbounded => Err(Error::solver("the problem is unbounded")),
    }
}
