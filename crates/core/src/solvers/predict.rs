//! The in-DBMS Predictive Framework (paper §3): `lr_solver`,
//! `arima_solver` and the Predictive Advisor `predictive_solver`.
//!
//! All three are exposed as ordinary solvers: the decision columns of
//! the input relation are the series to forecast, rows with NULL
//! decision cells form the horizon, and the output relation is the
//! input with those cells filled (Table 4 of the paper). The framework
//! standardizes the four steps of Fig. 2 — prepare, train, validate,
//! predict — and caches calibrated models for reuse (P2.3).

use crate::problem::ProblemInstance;
use crate::solver::{SolveContext, Solver};
use forecast::{
    arima::arima_rmse, cross_validate, Arima, Forecaster, LinearRegression, MeanForecaster,
    SeasonalNaive,
};
use globalopt::{pso, PsoOptions, SearchSpace};
use parking_lot::RwLock;
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use sqlengine::types::{DataType, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// P2.1 Preparing: the analyzed input relation.
pub struct PredictTask {
    /// Row indexes in time order.
    pub order: Vec<usize>,
    /// Feature column indexes (from `features := col` or `features := 'a,b'`).
    pub feat_cols: Vec<usize>,
    /// Per decision column: (column index, training positions, horizon positions).
    pub targets: Vec<TargetSeries>,
}

/// One decision column's training data and horizon.
pub struct TargetSeries {
    pub col: usize,
    pub name: String,
    pub y: Vec<f64>,
    pub features: Vec<Vec<f64>>,
    pub future_features: Vec<Vec<f64>>,
    /// Row indexes (into the table) to fill with forecasts, time-ordered.
    pub fill_rows: Vec<usize>,
}

/// Analyze the input relation: detect the time column, order rows, split
/// decision columns into training history and horizon (step P2.1).
pub fn prepare(prob: &ProblemInstance) -> Result<PredictTask> {
    let rel = &prob.relations[0];
    let table = &rel.table;
    if rel.dec_cols.is_empty() {
        return Err(Error::solver("predictive solvers need at least one decision column"));
    }
    // Time ordering: use the first timestamp column if present.
    let time_col = table.schema.columns.iter().position(|c| c.ty == DataType::Timestamp);
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    if let Some(tc) = time_col {
        order.sort_by(|&a, &b| table.rows[a][tc].cmp_total(&table.rows[b][tc]));
    }

    // Feature columns.
    let mut feat_cols = Vec::new();
    if let Some(spec) = prob.param_text("features") {
        for name in spec.split(',').map(|s| s.trim().to_ascii_lowercase()) {
            if name.is_empty() {
                continue;
            }
            let idx = table
                .schema
                .index_of(&name)
                .ok_or_else(|| Error::solver(format!("feature column '{name}' not found")))?;
            feat_cols.push(idx);
        }
    }

    let time_window = prob.param_usize("time_window").transpose()?;

    let mut targets = Vec::new();
    for &col in &rel.dec_cols {
        if feat_cols.contains(&col) {
            return Err(Error::solver("a column cannot be both a feature and a decision column"));
        }
        let mut y = Vec::new();
        let mut features: Vec<Vec<f64>> = vec![Vec::new(); feat_cols.len()];
        let mut future_features: Vec<Vec<f64>> = vec![Vec::new(); feat_cols.len()];
        let mut fill_rows = Vec::new();
        for &r in &order {
            let cell = &table.rows[r][col];
            if cell.is_null() {
                fill_rows.push(r);
                for (k, &fc) in feat_cols.iter().enumerate() {
                    future_features[k].push(table.rows[r][fc].as_f64().unwrap_or(0.0));
                }
            } else {
                y.push(cell.as_f64()?);
                for (k, &fc) in feat_cols.iter().enumerate() {
                    features[k].push(table.rows[r][fc].as_f64().unwrap_or(0.0));
                }
            }
        }
        // Optional training window: keep only the trailing W points.
        if let Some(w) = time_window {
            if w > 0 && y.len() > w {
                let skip = y.len() - w;
                y.drain(..skip);
                for f in features.iter_mut() {
                    f.drain(..skip);
                }
            }
        }
        if y.is_empty() {
            return Err(Error::solver(format!(
                "decision column '{}' has no training data (all values are NULL)",
                table.schema.columns[col].name
            )));
        }
        targets.push(TargetSeries {
            col,
            name: table.schema.columns[col].name.clone(),
            y,
            features,
            future_features,
            fill_rows,
        });
    }
    Ok(PredictTask { order, feat_cols, targets })
}

/// P2.4 Predicting: fill horizon cells with forecasts and return the
/// output relation (a view over the input — no user tables change).
fn fill_output(prob: &ProblemInstance, task: &PredictTask, forecasts: &[Vec<f64>]) -> Table {
    let mut out = prob.relations[0].table.clone();
    for (t, f) in task.targets.iter().zip(forecasts) {
        for (k, &row) in t.fill_rows.iter().enumerate() {
            if let Some(&v) = f.get(k) {
                out.rows[row][t.col] = Value::Float(v);
                if out.schema.columns[t.col].ty == DataType::Unknown {
                    out.schema.columns[t.col].ty = DataType::Float;
                }
            }
        }
    }
    out
}

fn forecast_each(
    prob: &ProblemInstance,
    task: &PredictTask,
    mut make: impl FnMut(&TargetSeries) -> Result<Box<dyn Forecaster>>,
) -> Result<Table> {
    let mut all = Vec::new();
    for t in &task.targets {
        let mut model = make(t)?;
        model.fit(&t.y, &t.features).map_err(|e| {
            Error::solver(format!("fitting {} for '{}': {e}", model.name(), t.name))
        })?;
        let f = model
            .forecast(t.fill_rows.len(), &t.future_features)
            .map_err(|e| Error::solver(format!("forecasting '{}': {e}", t.name)))?;
        all.push(f);
    }
    Ok(fill_output(prob, task, &all))
}

// ---------------------------------------------------------------------------
// lr_solver
// ---------------------------------------------------------------------------

/// Linear-regression predictive solver (`USING lr_solver(features := x)`).
#[derive(Debug, Default)]
pub struct LrSolver;

impl Solver for LrSolver {
    fn name(&self) -> &str {
        "lr_solver"
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let task = ctx.stage("prepare", || prepare(prob))?;
        let out = ctx.stage("fit-predict", || {
            forecast_each(prob, &task, |t| {
                Ok(Box::new(if t.features.is_empty() {
                    LinearRegression::with_trend()
                } else {
                    LinearRegression::new()
                }))
            })
        });
        ctx.report(obs::SolverStats {
            solver: "lr_solver".into(),
            method: "lr".into(),
            evaluations: task.targets.len() as u64,
            ..obs::SolverStats::default()
        });
        out
    }
}

// ---------------------------------------------------------------------------
// arima_solver
// ---------------------------------------------------------------------------

/// ARIMA predictive solver. Orders can be fixed (`ar := 2, i := 1,
/// ma := 1`) or searched with PSO over `[0,5]³` minimizing the in-sample
/// RMSE — the parameter-estimation `SOLVESELECT` of §3.2, run natively.
#[derive(Debug, Default)]
pub struct ArimaSolver;

/// PSO order search matching the paper's setting (10 particles × 10
/// iterations over integer orders in [0,5]).
pub fn search_arima_order(y: &[f64], seed: u64) -> (usize, usize, usize) {
    search_arima_order_stats(y, seed).0
}

/// [`search_arima_order`] plus the number of RMSE evaluations the
/// search spent — the telemetry the solver reports.
pub fn search_arima_order_stats(y: &[f64], seed: u64) -> ((usize, usize, usize), usize) {
    let space =
        SearchSpace::continuous(vec![0.0; 3], vec![5.0, 2.0, 5.0]).with_integrality(vec![true; 3]);
    let r = pso(
        |x| arima_rmse(y, x[0] as usize, x[1] as usize, x[2] as usize),
        &space,
        PsoOptions { particles: 10, iterations: 10, seed, ..Default::default() },
    );
    ((r.x[0] as usize, r.x[1] as usize, r.x[2] as usize), r.evaluations)
}

impl Solver for ArimaSolver {
    fn name(&self) -> &str {
        "arima_solver"
    }

    fn methods(&self) -> Vec<&str> {
        vec!["auto", "fixed"]
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let task = ctx.stage("prepare", || prepare(prob))?;
        let fixed = match (
            prob.param_usize("ar").transpose()?,
            prob.param_usize("i").transpose()?,
            prob.param_usize("ma").transpose()?,
        ) {
            (Some(p), d, q) => Some((p, d.unwrap_or(0), q.unwrap_or(0))),
            (None, Some(d), q) => Some((0, d, q.unwrap_or(0))),
            (None, None, Some(q)) => Some((0, 0, q)),
            (None, None, None) => None,
        };
        let seed = prob.param_usize("seed").transpose()?.unwrap_or(0xA41A) as u64;
        let search_evals = std::cell::Cell::new(0u64);
        let out = ctx.stage("fit-predict", || {
            forecast_each(prob, &task, |t| {
                let (p, d, q) = match fixed {
                    Some(o) => o,
                    None => {
                        let (order, evals) = search_arima_order_stats(&t.y, seed);
                        search_evals.set(search_evals.get() + evals as u64);
                        order
                    }
                };
                // Fall back to simpler orders when the series is too short
                // for the requested/search-selected one.
                for (p, d, q) in [(p, d, q), (1, 0, 0), (0, 1, 0), (0, 0, 0)] {
                    if arima_rmse(&t.y, p, d, q).is_finite() {
                        return Ok(Box::new(Arima::new(p, d, q)) as Box<dyn Forecaster>);
                    }
                }
                Err(Error::solver(format!(
                    "series '{}' is too short for any ARIMA order ({} points)",
                    t.name,
                    t.y.len()
                )))
            })
        });
        ctx.report(obs::SolverStats {
            solver: "arima_solver".into(),
            method: if fixed.is_some() { "fixed".into() } else { "auto".into() },
            evaluations: search_evals.get(),
            ..obs::SolverStats::default()
        });
        out
    }
}

// ---------------------------------------------------------------------------
// predictive_solver — the Predictive Advisor
// ---------------------------------------------------------------------------

/// The Predictive Advisor (paper §3.1): candidate models are scored by
/// rolling-origin cross validation (P2.2–P2.3), the winner is refitted on
/// the full history and used to predict (P2.4). Selections are cached so
/// repeated invocations on the same series skip validation — the "model
/// instances stored for fast reuse" of P2.3.
pub struct PredictiveAdvisor {
    cache: RwLock<HashMap<String, String>>,
    cache_hits: AtomicUsize,
}

impl Default for PredictiveAdvisor {
    fn default() -> Self {
        PredictiveAdvisor { cache: RwLock::new(HashMap::new()), cache_hits: AtomicUsize::new(0) }
    }
}

impl PredictiveAdvisor {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    fn cache_key(t: &TargetSeries) -> String {
        format!(
            "{}:{}:{:.6}:{:.6}:{}",
            t.name,
            t.y.len(),
            t.y.first().copied().unwrap_or(0.0),
            t.y.last().copied().unwrap_or(0.0),
            t.features.len()
        )
    }

    fn candidates(
        has_features: bool,
        n: usize,
    ) -> Vec<(String, Box<dyn Fn() -> Box<dyn Forecaster>>)> {
        let mut c: Vec<(String, Box<dyn Fn() -> Box<dyn Forecaster>>)> = vec![(
            "mean".into(),
            Box::new(|| Box::new(MeanForecaster::default()) as Box<dyn Forecaster>),
        )];
        if n >= 48 {
            c.push((
                "seasonal24".into(),
                Box::new(|| Box::new(SeasonalNaive::new(24)) as Box<dyn Forecaster>),
            ));
        }
        if n >= 24 {
            c.push((
                "seasonal12".into(),
                Box::new(|| Box::new(SeasonalNaive::new(12)) as Box<dyn Forecaster>),
            ));
        }
        if has_features {
            c.push((
                "lr".into(),
                Box::new(|| Box::new(LinearRegression::new()) as Box<dyn Forecaster>),
            ));
        } else {
            c.push((
                "lr_trend".into(),
                Box::new(|| Box::new(LinearRegression::with_trend()) as Box<dyn Forecaster>),
            ));
        }
        c.push((
            "arima(1,0,0)".into(),
            Box::new(|| Box::new(Arima::new(1, 0, 0)) as Box<dyn Forecaster>),
        ));
        c.push((
            "arima(2,1,1)".into(),
            Box::new(|| Box::new(Arima::new(2, 1, 1)) as Box<dyn Forecaster>),
        ));
        c
    }

    fn make_named(name: &str, has_features: bool) -> Box<dyn Forecaster> {
        match name {
            "mean" => Box::new(MeanForecaster::default()),
            "seasonal24" => Box::new(SeasonalNaive::new(24)),
            "seasonal12" => Box::new(SeasonalNaive::new(12)),
            "lr" => Box::new(LinearRegression::new()),
            "lr_trend" => Box::new(LinearRegression::with_trend()),
            "arima(1,0,0)" => Box::new(Arima::new(1, 0, 0)),
            "arima(2,1,1)" => Box::new(Arima::new(2, 1, 1)),
            _ => {
                if has_features {
                    Box::new(LinearRegression::new())
                } else {
                    Box::new(LinearRegression::with_trend())
                }
            }
        }
    }
}

impl Solver for PredictiveAdvisor {
    fn name(&self) -> &str {
        "predictive_solver"
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let task = ctx.stage("prepare", || prepare(prob))?;
        let validations = std::cell::Cell::new(0u64);
        let hits_before = self.cache_hits();
        let out = ctx.stage("fit-predict", || {
            forecast_each(prob, &task, |t| {
                let has_features = !t.features.is_empty();
                let key = Self::cache_key(t);
                if let Some(name) = self.cache.read().get(&key).cloned() {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Self::make_named(&name, has_features));
                }
                // P2.2–P2.3: training + validation over the candidate pool.
                let horizon = t.fill_rows.len().max(1).min(t.y.len() / 3).max(1);
                let candidates = Self::candidates(has_features, t.y.len());
                let names: Vec<String> = candidates.iter().map(|(n, _)| n.clone()).collect();
                let mut best: Option<(String, f64)> = None;
                for (name, make) in &candidates {
                    let score = cross_validate(make.as_ref(), &t.y, &t.features, horizon, 3);
                    validations.set(validations.get() + 1);
                    if score.is_finite() && best.as_ref().map_or(true, |(_, s)| score < *s) {
                        best = Some((name.clone(), score));
                    }
                }
                let chosen = best.map(|(n, _)| n).ok_or_else(|| {
                    Error::solver(format!(
                        "no candidate model fits series '{}' (candidates: {})",
                        t.name,
                        names.join(", ")
                    ))
                })?;
                self.cache.write().insert(key, chosen.clone());
                Ok(Self::make_named(&chosen, has_features))
            })
        });
        ctx.report(obs::SolverStats {
            solver: "predictive_solver".into(),
            method: "advisor".into(),
            evaluations: validations.get(),
            // Cache hits this invocation, reported as avoided restarts.
            restarts: (self.cache_hits() - hits_before) as u64,
            ..obs::SolverStats::default()
        });
        out
    }
}
