//! `swarmops` — black-box global optimization solver (paper §3.2's
//! `swarmops.pso()` and §4.4's `swarmops.sa()`), backed by the
//! `globalopt` crate's PSO / SA / DE.
//!
//! The fitness function re-materializes the decision relations with the
//! candidate values and re-evaluates the `MINIMIZE`/`MAXIMIZE` query —
//! exactly the per-iteration cost the paper measures in Fig. 4(b).

use crate::problem::{apply_solution, blackbox_fitness, build_blackbox, ProblemInstance};
use crate::solver::{SolveContext, Solver};
use globalopt::{
    differential_evolution_with, pso_with, sa_from_with, DeOptions, PsoOptions, SaOptions,
    SearchProgress,
};
use sqlengine::error::Result;
use sqlengine::table::Table;

#[derive(Debug, Default)]
pub struct SwarmOps;

impl Solver for SwarmOps {
    fn name(&self) -> &str {
        "swarmops"
    }

    fn methods(&self) -> Vec<&str> {
        vec!["pso", "sa", "de"]
    }

    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
        let bb = ctx.stage("build", || build_blackbox(ctx.db, ctx.ctes, prob))?;
        let fitness = |x: &[f64]| blackbox_fitness(ctx.db, ctx.ctes, prob, &bb, x);
        let seed = prob.param_usize("seed").transpose()?.unwrap_or(0x5001_7EDB) as u64;
        let method = prob.method.as_deref().unwrap_or("pso");
        let search = ctx.trace.map(|t| t.span("search"));
        // One watchdog/progress callback shared by the three methods;
        // `interrupted` records whether it asked the search to stop.
        let mut interrupted = false;
        let mut on_progress = |sp: &SearchProgress| {
            let go = ctx.progress(obs::ProgressEvent {
                solver: "swarmops".into(),
                method: method.into(),
                iterations: sp.iteration as u64,
                evaluations: sp.evaluations as u64,
                incumbent: sp.best.is_finite().then_some(sp.best),
                ..obs::ProgressEvent::default()
            });
            if !go {
                interrupted = true;
            }
            go
        };
        let result = match method {
            "sa" => {
                let iterations = prob.param_usize("iterations").transpose()?.unwrap_or(2000);
                sa_from_with(
                    fitness,
                    &bb.space,
                    SaOptions { iterations, seed, ..Default::default() },
                    bb.start.clone(),
                    &mut on_progress,
                )
            }
            "de" => {
                let iterations = prob.param_usize("iterations").transpose()?.unwrap_or(60);
                let population = prob.param_usize("population").transpose()?.unwrap_or(20);
                differential_evolution_with(
                    fitness,
                    &bb.space,
                    DeOptions { iterations, population, seed, ..Default::default() },
                    &mut on_progress,
                )
            }
            _ => {
                // The paper's UC2 setting: 10 particles × 10 iterations.
                let iterations = prob.param_usize("iterations").transpose()?.unwrap_or(10);
                let particles = prob.param_usize("particles").transpose()?.unwrap_or(10);
                pso_with(
                    fitness,
                    &bb.space,
                    PsoOptions { particles, iterations, seed, ..Default::default() },
                    &mut on_progress,
                )
            }
        };
        drop(search);
        ctx.report(obs::SolverStats {
            solver: "swarmops".into(),
            method: method.into(),
            iterations: result.iterations as u64,
            evaluations: result.evaluations as u64,
            objective: Some(result.value),
            ..obs::SolverStats::default()
        });
        if interrupted {
            let trajectory =
                result.value.is_finite().then_some((result.iterations as u64, result.value));
            return Err(ctx.abort_error(trajectory.as_slice()));
        }
        let x = result.x;
        ctx.stage("post-process", || Ok(apply_solution(prob, &|v| Some(x[v as usize]))))
    }
}
