//! Symbolic evaluation of SQL over decision variables.
//!
//! When SolveDB+ compiles `MINIMIZE`/`SUBJECTTO` rule queries into solver
//! input (paper §4.1), every decision cell evaluates to a *symbolic
//! linear expression* instead of a number. SQL arithmetic over these
//! values builds the constraint matrix directly inside query execution —
//! this is the machinery behind the "model generation time" advantage of
//! Fig. 5. Comparisons over symbolic values produce *constraint* values,
//! which the rule collector turns into LP rows.

use sqlengine::error::{Error, Result};
use sqlengine::types::{custom, downcast, BinOp, CustomValue, UnOp, Value};
use std::any::Any;
use std::collections::BTreeMap;

/// Identifier of a decision variable.
pub type VarId = u32;

/// A linear expression `constant + Σ coef·var`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinExpr {
    pub constant: f64,
    /// Sorted, deduplicated terms.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    pub fn constant(c: f64) -> LinExpr {
        LinExpr { constant: c, terms: vec![] }
    }

    pub fn var(id: VarId) -> LinExpr {
        LinExpr { constant: 0.0, terms: vec![(id, 1.0)] }
    }

    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn merge(a: &LinExpr, b: &LinExpr, sign: f64) -> LinExpr {
        let mut map: BTreeMap<VarId, f64> = a.terms.iter().copied().collect();
        for &(v, c) in &b.terms {
            *map.entry(v).or_insert(0.0) += sign * c;
        }
        LinExpr {
            constant: a.constant + sign * b.constant,
            terms: map.into_iter().filter(|(_, c)| *c != 0.0).collect(),
        }
    }

    pub fn add(&self, other: &LinExpr) -> LinExpr {
        LinExpr::merge(self, other, 1.0)
    }

    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        LinExpr::merge(self, other, -1.0)
    }

    pub fn scale(&self, k: f64) -> LinExpr {
        LinExpr {
            constant: self.constant * k,
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
        }
    }

    pub fn neg(&self) -> LinExpr {
        self.scale(-1.0)
    }

    /// Evaluate under an assignment.
    pub fn eval(&self, x: &dyn Fn(VarId) -> f64) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * x(v)).sum::<f64>()
    }

    /// Variables referenced by this expression.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }
}

/// Extract a linear expression from a runtime value: numbers become
/// constants, symbolic values pass through.
pub fn as_linexpr(v: &Value) -> Result<LinExpr> {
    if let Some(sym) = downcast::<SymValue>(v) {
        return Ok(sym.0.clone());
    }
    match v {
        Value::Int(i) => Ok(LinExpr::constant(*i as f64)),
        Value::Float(f) => Ok(LinExpr::constant(*f)),
        Value::Null => {
            Err(Error::solver("NULL encountered where a linear expression was expected"))
        }
        other => Err(Error::solver(format!(
            "cannot interpret {} as a linear expression",
            other.data_type().sql_name()
        ))),
    }
}

/// Wrap a linear expression as a SQL value.
pub fn sym_value(e: LinExpr) -> Value {
    if e.is_constant() {
        Value::Float(e.constant)
    } else {
        custom(SymValue(e))
    }
}

/// The custom SQL value carrying a [`LinExpr`]. Overloads arithmetic and
/// comparisons; comparisons yield [`ConstraintValue`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SymValue(pub LinExpr);

impl CustomValue for SymValue {
    fn type_name(&self) -> &str {
        "linexpr"
    }

    fn to_text(&self) -> String {
        let mut s = String::new();
        for (i, (v, c)) in self.0.terms.iter().enumerate() {
            if i > 0 {
                s.push_str(" + ");
            }
            s.push_str(&format!("{c}*x{v}"));
        }
        if self.0.constant != 0.0 || self.0.terms.is_empty() {
            if !s.is_empty() {
                s.push_str(" + ");
            }
            s.push_str(&format!("{}", self.0.constant));
        }
        s
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn eq_custom(&self, other: &dyn CustomValue) -> bool {
        other.as_any().downcast_ref::<SymValue>() == Some(self)
    }

    fn binop(&self, op: BinOp, other: &Value, self_is_lhs: bool) -> Option<Result<Value>> {
        // NULL propagates like in plain SQL arithmetic.
        if other.is_null() {
            return Some(Ok(Value::Null));
        }
        let me = &self.0;
        let other_lin = match as_linexpr(other) {
            Ok(l) => l,
            Err(e) => {
                return Some(Err(Error::solver(format!(
                    "operator {} between a decision expression and {}: {e}",
                    op.symbol(),
                    other.data_type().sql_name()
                ))))
            }
        };
        let (lhs, rhs) =
            if self_is_lhs { (me.clone(), other_lin) } else { (other_lin, me.clone()) };
        let result: Result<Value> = match op {
            BinOp::Add => Ok(sym_value(lhs.add(&rhs))),
            BinOp::Sub => Ok(sym_value(lhs.sub(&rhs))),
            BinOp::Mul => {
                if lhs.is_constant() {
                    Ok(sym_value(rhs.scale(lhs.constant)))
                } else if rhs.is_constant() {
                    Ok(sym_value(lhs.scale(rhs.constant)))
                } else {
                    Err(Error::solver(
                        "product of two decision expressions is not linear (use a black-box solver)",
                    ))
                }
            }
            BinOp::Div => {
                if rhs.is_constant() {
                    if rhs.constant == 0.0 {
                        Err(Error::eval("division by zero"))
                    } else {
                        Ok(sym_value(lhs.scale(1.0 / rhs.constant)))
                    }
                } else {
                    Err(Error::solver("division by a decision expression is not linear"))
                }
            }
            BinOp::Pow => {
                if rhs.is_constant() && rhs.constant == 1.0 {
                    Ok(sym_value(lhs))
                } else {
                    Err(Error::solver(
                        "exponentiation of decision expressions is not linear (use a black-box solver)",
                    ))
                }
            }
            op if op.is_comparison() => {
                let rel = match op {
                    BinOp::Le | BinOp::Lt => Rel::Le,
                    BinOp::Ge | BinOp::Gt => Rel::Ge,
                    BinOp::Eq => Rel::Eq,
                    BinOp::Ne => {
                        return Some(Err(Error::solver(
                            "'<>' constraints are not representable in a linear program",
                        )))
                    }
                    _ => unreachable!(),
                };
                Ok(constraint_value(ConstraintValue::Cmp { lhs, rel, rhs }))
            }
            other_op => Err(Error::solver(format!(
                "operator {} is not defined for decision expressions",
                other_op.symbol()
            ))),
        };
        Some(result)
    }

    fn unop(&self, op: UnOp) -> Option<Result<Value>> {
        match op {
            UnOp::Neg => Some(Ok(sym_value(self.0.neg()))),
            _ => Some(Err(Error::solver(format!(
                "operator {} is not defined for decision expressions",
                op.symbol()
            )))),
        }
    }

    fn cast(&self, type_name: &str) -> Option<Result<Value>> {
        // Allow no-op numeric casts so `x::float8` works on decision cells.
        match type_name {
            "float8" | "float" | "double precision" | "numeric" | "int8" | "int4" | "int"
            | "integer" | "bigint" | "real" => Some(Ok(custom(self.clone()))),
            _ => None,
        }
    }
}

/// Linear constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    Le,
    Eq,
    Ge,
}

/// A constraint produced by comparing symbolic values: a single
/// comparison or a conjunction (from chained comparisons / `AND`).
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintValue {
    Cmp { lhs: LinExpr, rel: Rel, rhs: LinExpr },
    And(Vec<ConstraintValue>),
}

impl ConstraintValue {
    /// Flatten to a list of atomic comparisons.
    pub fn atoms(&self) -> Vec<(&LinExpr, Rel, &LinExpr)> {
        match self {
            ConstraintValue::Cmp { lhs, rel, rhs } => vec![(lhs, *rel, rhs)],
            ConstraintValue::And(cs) => cs.iter().flat_map(|c| c.atoms()).collect(),
        }
    }

    /// Is the constraint satisfied under an assignment (within `tol`)?
    pub fn satisfied(&self, x: &dyn Fn(VarId) -> f64, tol: f64) -> bool {
        self.atoms().iter().all(|(l, rel, r)| {
            let a = l.eval(x);
            let b = r.eval(x);
            match rel {
                Rel::Le => a <= b + tol,
                Rel::Ge => a >= b - tol,
                Rel::Eq => (a - b).abs() <= tol,
            }
        })
    }

    /// Total violation magnitude under an assignment (for penalties).
    pub fn violation(&self, x: &dyn Fn(VarId) -> f64) -> f64 {
        self.atoms()
            .iter()
            .map(|(l, rel, r)| {
                let a = l.eval(x);
                let b = r.eval(x);
                match rel {
                    Rel::Le => (a - b).max(0.0),
                    Rel::Ge => (b - a).max(0.0),
                    Rel::Eq => (a - b).abs(),
                }
            })
            .sum()
    }
}

/// Wrap a constraint as a SQL value.
pub fn constraint_value(c: ConstraintValue) -> Value {
    custom(ConstraintVal(c))
}

/// Custom SQL value carrying a [`ConstraintValue`]; supports `AND`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintVal(pub ConstraintValue);

impl CustomValue for ConstraintVal {
    fn type_name(&self) -> &str {
        "constraint"
    }

    fn to_text(&self) -> String {
        self.0
            .atoms()
            .iter()
            .map(|(l, rel, r)| {
                format!(
                    "{} {} {}",
                    SymValue((*l).clone()).to_text(),
                    match rel {
                        Rel::Le => "<=",
                        Rel::Eq => "=",
                        Rel::Ge => ">=",
                    },
                    SymValue((*r).clone()).to_text()
                )
            })
            .collect::<Vec<_>>()
            .join(" AND ")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn eq_custom(&self, other: &dyn CustomValue) -> bool {
        other.as_any().downcast_ref::<ConstraintVal>() == Some(self)
    }

    fn binop(&self, op: BinOp, other: &Value, _self_is_lhs: bool) -> Option<Result<Value>> {
        match (op, other) {
            (BinOp::And, Value::Bool(true)) => Some(Ok(custom(self.clone()))),
            (BinOp::And, Value::Bool(false)) => Some(Ok(Value::Bool(false))),
            (BinOp::And, Value::Null) => {
                Some(Err(Error::solver("cannot AND a constraint with NULL")))
            }
            (BinOp::And, v) => {
                if let Some(o) = downcast::<ConstraintVal>(v) {
                    Some(Ok(constraint_value(ConstraintValue::And(vec![
                        self.0.clone(),
                        o.0.clone(),
                    ]))))
                } else {
                    Some(Err(Error::solver(format!(
                        "cannot AND a constraint with {}",
                        v.data_type().sql_name()
                    ))))
                }
            }
            (BinOp::Or, _) => Some(Err(Error::solver(
                "disjunctive constraints are not representable in a linear program",
            ))),
            _ => Some(Err(Error::solver(format!(
                "operator {} is not defined for constraints",
                op.symbol()
            )))),
        }
    }

    fn unop(&self, op: UnOp) -> Option<Result<Value>> {
        Some(Err(Error::solver(format!("operator {} is not defined for constraints", op.symbol()))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: VarId) -> Value {
        sym_value(LinExpr::var(id))
    }

    #[test]
    fn arithmetic_builds_linear_forms() {
        // 2*x0 + 3 - x1/2
        let e = Value::binop(BinOp::Mul, &Value::Int(2), &v(0)).unwrap();
        let e = Value::binop(BinOp::Add, &e, &Value::Int(3)).unwrap();
        let half = Value::binop(BinOp::Div, &v(1), &Value::Float(2.0)).unwrap();
        let e = Value::binop(BinOp::Sub, &e, &half).unwrap();
        let lin = as_linexpr(&e).unwrap();
        assert_eq!(lin.constant, 3.0);
        assert_eq!(lin.terms, vec![(0, 2.0), (1, -0.5)]);
    }

    #[test]
    fn constants_collapse_to_floats() {
        let zero = Value::binop(BinOp::Sub, &v(0), &v(0)).unwrap();
        assert_eq!(zero, Value::Float(0.0));
    }

    #[test]
    fn nonlinear_products_error() {
        assert!(Value::binop(BinOp::Mul, &v(0), &v(1)).is_err());
        assert!(Value::binop(BinOp::Div, &Value::Int(1), &v(0)).is_err());
        assert!(Value::binop(BinOp::Pow, &v(0), &Value::Int(2)).is_err());
    }

    #[test]
    fn comparison_yields_constraint() {
        let c = Value::binop(BinOp::Le, &v(0), &Value::Int(5)).unwrap();
        let cv = downcast::<ConstraintVal>(&c).unwrap();
        let atoms = cv.0.atoms();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].1, Rel::Le);
        // x0 <= 5 with x0 = 3 holds; x0 = 7 violates by 2.
        assert!(cv.0.satisfied(&|_| 3.0, 1e-9));
        assert_eq!(cv.0.violation(&|_| 7.0), 2.0);
    }

    #[test]
    fn reversed_operand_side() {
        // 5 >= x0 (sym on rhs).
        let c = Value::binop(BinOp::Ge, &Value::Int(5), &v(0)).unwrap();
        let cv = downcast::<ConstraintVal>(&c).unwrap();
        let (l, rel, r) = (cv.0.atoms()[0].0, cv.0.atoms()[0].1, cv.0.atoms()[0].2);
        assert_eq!(rel, Rel::Ge);
        assert!(l.is_constant() && l.constant == 5.0);
        assert_eq!(r.terms, vec![(0, 1.0)]);
    }

    #[test]
    fn and_composes_constraints() {
        let c1 = Value::binop(BinOp::Ge, &v(0), &Value::Int(0)).unwrap();
        let c2 = Value::binop(BinOp::Le, &v(0), &Value::Int(5)).unwrap();
        let both = Value::binop(BinOp::And, &c1, &c2).unwrap();
        let cv = downcast::<ConstraintVal>(&both).unwrap();
        assert_eq!(cv.0.atoms().len(), 2);
        // AND with TRUE keeps the constraint; with FALSE collapses.
        let keep = Value::binop(BinOp::And, &c1, &Value::Bool(true)).unwrap();
        assert!(downcast::<ConstraintVal>(&keep).is_some());
        let dead = Value::binop(BinOp::And, &c1, &Value::Bool(false)).unwrap();
        assert_eq!(dead, Value::Bool(false));
    }

    #[test]
    fn neq_is_rejected() {
        assert!(Value::binop(BinOp::Ne, &v(0), &Value::Int(1)).is_err());
    }

    #[test]
    fn negation_and_null() {
        let n = Value::unop(UnOp::Neg, &v(0)).unwrap();
        let lin = as_linexpr(&n).unwrap();
        assert_eq!(lin.terms, vec![(0, -1.0)]);
        assert!(Value::binop(BinOp::Add, &v(0), &Value::Null).unwrap().is_null());
    }

    #[test]
    fn eval_under_assignment() {
        let e = LinExpr { constant: 1.0, terms: vec![(0, 2.0), (3, -1.0)] };
        assert_eq!(e.eval(&|v| v as f64), 1.0 + 0.0 - 3.0);
    }

    #[test]
    fn numeric_cast_is_noop() {
        use sqlengine::DataType;
        let x = v(0);
        let casted = x.cast(&DataType::Float).unwrap();
        assert!(downcast::<SymValue>(&casted).is_some());
        assert!(x.cast(&DataType::Text).is_err());
    }
}
