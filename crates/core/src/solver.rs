//! The solver framework: the [`Solver`] trait and the registry through
//! which `USING solver.method(...)` resolves (paper §4.1, RC3's
//! extensibility).

use crate::problem::ProblemInstance;
use parking_lot::RwLock;
use sqlengine::catalog::{Ctes, Database};
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cooperative solve was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The per-session wall-clock budget (`SET solver_timeout_ms` or the
    /// server default) ran out.
    Timeout { budget_ms: u64 },
    /// Another session requested the kill via `CANCEL <session>`.
    Cancelled,
}

impl AbortReason {
    /// Human-readable phrase used in `SolveTimeout` error messages.
    pub fn describe(&self) -> String {
        match self {
            AbortReason::Timeout { budget_ms } => {
                format!("solver wall-clock budget of {budget_ms} ms exceeded")
            }
            AbortReason::Cancelled => "solve cancelled by CANCEL".to_string(),
        }
    }
}

/// Minimum interval between two progress events handed to the sink, so
/// tight solver loops cannot flood a network connection or terminal.
const PROGRESS_MIN_INTERVAL: Duration = Duration::from_millis(100);

/// The solver watchdog: a wall-clock budget, a cooperative kill flag
/// and a throttled progress sink, checked by solvers at their natural
/// progress points (B&B node batches, metaheuristic iterations).
pub struct SolveControl {
    start: Instant,
    budget_ms: Option<u64>,
    kill: Option<Arc<obs::SessionCounters>>,
    sink: Option<Arc<dyn Fn(&obs::ProgressEvent) + Send + Sync>>,
    /// Elapsed nanos at the last emitted event (throttle state).
    last_emit_nanos: AtomicU64,
}

impl SolveControl {
    /// Build the watchdog from the session's database handle. Returns
    /// `None` when no budget, kill flag or sink is attached — solvers
    /// then run exactly as before, with zero per-iteration overhead.
    pub fn from_db(db: &Database) -> Option<SolveControl> {
        let budget_ms = db.solver_timeout_ms();
        let kill = db.own_counters().cloned();
        let sink = db.progress_sink().cloned();
        if budget_ms.is_none() && kill.is_none() && sink.is_none() {
            return None;
        }
        Some(SolveControl {
            start: Instant::now(),
            budget_ms,
            kill,
            sink,
            last_emit_nanos: AtomicU64::new(0),
        })
    }

    /// Construct a bare budget-only control (used by tests and the
    /// bench harness).
    pub fn with_budget_ms(budget_ms: u64) -> SolveControl {
        SolveControl {
            start: Instant::now(),
            budget_ms: Some(budget_ms),
            kill: None,
            sink: None,
            last_emit_nanos: AtomicU64::new(0),
        }
    }

    /// Time since the solve started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Check the kill flag and the wall-clock budget.
    pub fn should_stop(&self) -> Option<AbortReason> {
        if let Some(k) = &self.kill {
            if k.kill_requested() {
                return Some(AbortReason::Cancelled);
            }
        }
        if let Some(ms) = self.budget_ms {
            if self.start.elapsed() >= Duration::from_millis(ms) {
                return Some(AbortReason::Timeout { budget_ms: ms });
            }
        }
        None
    }

    /// Acknowledge a cancel: clear the kill flag so the session stays
    /// usable after the aborted statement returns its error.
    pub fn acknowledge_abort(&self, reason: AbortReason) {
        if reason == AbortReason::Cancelled {
            if let Some(k) = &self.kill {
                k.clear_kill();
            }
        }
    }

    /// Offer one progress snapshot. The event reaches the sink at most
    /// once per [`PROGRESS_MIN_INTERVAL`]; `elapsed_nanos` is filled in
    /// here. Returns `true` while the solve may continue.
    pub fn tick(&self, mut ev: obs::ProgressEvent) -> bool {
        if let Some(sink) = &self.sink {
            let nanos = self.start.elapsed().as_nanos() as u64;
            let last = self.last_emit_nanos.load(Ordering::Relaxed);
            if nanos.saturating_sub(last) >= PROGRESS_MIN_INTERVAL.as_nanos() as u64 {
                self.last_emit_nanos.store(nanos, Ordering::Relaxed);
                ev.elapsed_nanos = nanos;
                sink(&ev);
            }
        }
        self.should_stop().is_none()
    }
}

/// Execution context handed to solvers: catalog access plus the CTE
/// environment the `SOLVESELECT` ran under, the query trace (when the
/// statement is being instrumented) into which solvers record
/// sub-stages and [`obs::SolverStats`] telemetry, and the optional
/// watchdog ([`SolveControl`]) solvers poll at progress points.
pub struct SolveContext<'a> {
    pub db: &'a Database,
    pub ctes: &'a Ctes,
    pub trace: Option<&'a obs::Trace>,
    pub control: Option<&'a SolveControl>,
}

impl SolveContext<'_> {
    /// Report solver telemetry, if a trace is recording.
    pub fn report(&self, stats: obs::SolverStats) {
        if let Some(t) = self.trace {
            t.solver(stats);
        }
    }

    /// Time a sub-stage of the solve, if a trace is recording.
    pub fn stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        obs::trace::span_time(self.trace, name, f)
    }

    /// Offer a progress snapshot to the watchdog; `true` means keep
    /// going. With no watchdog attached this is a no-op returning
    /// `true`.
    pub fn progress(&self, ev: obs::ProgressEvent) -> bool {
        match self.control {
            Some(c) => c.tick(ev),
            None => true,
        }
    }

    /// Why the watchdog wants the solve stopped, if it does.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.control.and_then(|c| c.should_stop())
    }

    /// Build the `SolveTimeout` error for an interrupted solve,
    /// attaching the incumbent trajectory collected so far and clearing
    /// the kill flag so the session remains usable.
    pub fn abort_error(&self, incumbents: &[(u64, f64)]) -> Error {
        let reason = self.abort_reason().unwrap_or(AbortReason::Cancelled);
        if let Some(c) = self.control {
            c.acknowledge_abort(reason);
        }
        let mut msg = reason.describe();
        if incumbents.is_empty() {
            msg.push_str("; no incumbent found yet");
        } else {
            let traj: Vec<String> =
                incumbents.iter().map(|&(at, obj)| format!("{obj}@{at}")).collect();
            msg.push_str(&format!("; incumbents=[{}]", traj.join(", ")));
        }
        Error::solve_timeout(msg)
    }
}

/// A SolveDB+ solver. Solvers receive the built problem instance
/// (materialized relations, rules, parameters) and return the output
/// relation in the schema of the input relation.
pub trait Solver: Send + Sync {
    /// Registry name (`USING <name>`).
    fn name(&self) -> &str;

    /// Supported method names (`USING name.<method>`); empty = any.
    fn methods(&self) -> Vec<&str> {
        vec![]
    }

    /// Solve and produce the output relation.
    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table>;
}

/// Thread-safe solver registry.
#[derive(Default)]
pub struct SolverRegistry {
    solvers: RwLock<HashMap<String, Arc<dyn Solver>>>,
}

impl SolverRegistry {
    pub fn new() -> SolverRegistry {
        SolverRegistry::default()
    }

    /// Install (or replace) a solver — the `CREATE SOLVER` analogue.
    pub fn register(&self, solver: Arc<dyn Solver>) {
        self.solvers.write().insert(solver.name().to_string(), solver);
    }

    pub fn get(&self, name: &str) -> Result<Arc<dyn Solver>> {
        self.solvers.read().get(name).cloned().ok_or_else(|| {
            Error::solver(format!(
                "no solver named '{name}' is installed (available: {})",
                self.names().join(", ")
            ))
        })
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.solvers.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Validate a method name against the solver's declared methods.
    pub fn check_method(solver: &dyn Solver, method: &Option<String>) -> Result<()> {
        if let Some(m) = method {
            let methods = solver.methods();
            if !methods.is_empty() && !methods.iter().any(|x| x == m) {
                return Err(Error::solver(format!(
                    "solver '{}' has no method '{m}' (methods: {})",
                    solver.name(),
                    methods.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Solver for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn methods(&self) -> Vec<&str> {
            vec!["fast", "slow"]
        }
        fn solve(&self, _ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
            Ok(prob.relations[0].table.clone())
        }
    }

    #[test]
    fn register_and_lookup() {
        let reg = SolverRegistry::new();
        reg.register(Arc::new(Dummy));
        assert!(reg.get("dummy").is_ok());
        let err = match reg.get("nope") {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(err.to_string().contains("dummy"));
        assert_eq!(reg.names(), vec!["dummy"]);
    }

    #[test]
    fn method_validation() {
        let d = Dummy;
        assert!(SolverRegistry::check_method(&d, &None).is_ok());
        assert!(SolverRegistry::check_method(&d, &Some("fast".into())).is_ok());
        assert!(SolverRegistry::check_method(&d, &Some("warp".into())).is_err());
    }
}
