//! The solver framework: the [`Solver`] trait and the registry through
//! which `USING solver.method(...)` resolves (paper §4.1, RC3's
//! extensibility).

use crate::problem::ProblemInstance;
use parking_lot::RwLock;
use sqlengine::catalog::{Ctes, Database};
use sqlengine::error::{Error, Result};
use sqlengine::table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// Execution context handed to solvers: catalog access plus the CTE
/// environment the `SOLVESELECT` ran under, and the query trace (when
/// the statement is being instrumented) into which solvers record
/// sub-stages and [`obs::SolverStats`] telemetry.
pub struct SolveContext<'a> {
    pub db: &'a Database,
    pub ctes: &'a Ctes,
    pub trace: Option<&'a obs::Trace>,
}

impl SolveContext<'_> {
    /// Report solver telemetry, if a trace is recording.
    pub fn report(&self, stats: obs::SolverStats) {
        if let Some(t) = self.trace {
            t.solver(stats);
        }
    }

    /// Time a sub-stage of the solve, if a trace is recording.
    pub fn stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        obs::trace::span_time(self.trace, name, f)
    }
}

/// A SolveDB+ solver. Solvers receive the built problem instance
/// (materialized relations, rules, parameters) and return the output
/// relation in the schema of the input relation.
pub trait Solver: Send + Sync {
    /// Registry name (`USING <name>`).
    fn name(&self) -> &str;

    /// Supported method names (`USING name.<method>`); empty = any.
    fn methods(&self) -> Vec<&str> {
        vec![]
    }

    /// Solve and produce the output relation.
    fn solve(&self, ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table>;
}

/// Thread-safe solver registry.
#[derive(Default)]
pub struct SolverRegistry {
    solvers: RwLock<HashMap<String, Arc<dyn Solver>>>,
}

impl SolverRegistry {
    pub fn new() -> SolverRegistry {
        SolverRegistry::default()
    }

    /// Install (or replace) a solver — the `CREATE SOLVER` analogue.
    pub fn register(&self, solver: Arc<dyn Solver>) {
        self.solvers.write().insert(solver.name().to_string(), solver);
    }

    pub fn get(&self, name: &str) -> Result<Arc<dyn Solver>> {
        self.solvers.read().get(name).cloned().ok_or_else(|| {
            Error::solver(format!(
                "no solver named '{name}' is installed (available: {})",
                self.names().join(", ")
            ))
        })
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.solvers.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Validate a method name against the solver's declared methods.
    pub fn check_method(solver: &dyn Solver, method: &Option<String>) -> Result<()> {
        if let Some(m) = method {
            let methods = solver.methods();
            if !methods.is_empty() && !methods.iter().any(|x| x == m) {
                return Err(Error::solver(format!(
                    "solver '{}' has no method '{m}' (methods: {})",
                    solver.name(),
                    methods.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Solver for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn methods(&self) -> Vec<&str> {
            vec!["fast", "slow"]
        }
        fn solve(&self, _ctx: &SolveContext<'_>, prob: &ProblemInstance) -> Result<Table> {
            Ok(prob.relations[0].table.clone())
        }
    }

    #[test]
    fn register_and_lookup() {
        let reg = SolverRegistry::new();
        reg.register(Arc::new(Dummy));
        assert!(reg.get("dummy").is_ok());
        let err = match reg.get("nope") {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(err.to_string().contains("dummy"));
        assert_eq!(reg.names(), vec!["dummy"]);
    }

    #[test]
    fn method_validation() {
        let d = Dummy;
        assert!(SolverRegistry::check_method(&d, &None).is_ok());
        assert!(SolverRegistry::check_method(&d, &Some("fast".into())).is_ok());
        assert!(SolverRegistry::check_method(&d, &Some("warp".into())).is_err());
    }
}
