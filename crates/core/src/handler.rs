//! The engine hook: routes `SOLVESELECT`, `SOLVEMODEL` expressions and
//! `MODELEVAL` from query execution into the solver framework.

use crate::check;
use crate::explain;
use crate::model::{expect_model, ModelValue};
use crate::problem::{build_problem, build_problem_traced, materialize_env, CellPatch};
use crate::solver::{SolveContext, SolveControl, SolverRegistry};
use sqlengine::ast::{Query, SolveKind, SolveStmt};
use sqlengine::catalog::{Ctes, Database, SolveHandler};
use sqlengine::diag::Diagnostic;
use sqlengine::error::{Error, Result};
use sqlengine::exec::run_query;
use sqlengine::table::{Column, Schema, Table};
use sqlengine::types::{custom, DataType, Value};
use std::sync::Arc;

/// SolveDB+'s implementation of the engine's [`SolveHandler`] hook.
pub struct Handler {
    pub registry: Arc<SolverRegistry>,
}

impl Handler {
    pub fn new(registry: Arc<SolverRegistry>) -> Handler {
        Handler { registry }
    }
}

impl SolveHandler for Handler {
    fn solve_select(
        &self,
        db: &Database,
        stmt: &SolveStmt,
        ctes: &Ctes,
        warnings: &mut Vec<Diagnostic>,
        trace: Option<&obs::Trace>,
    ) -> Result<Table> {
        let using = stmt
            .using
            .as_ref()
            .ok_or_else(|| Error::solver("SOLVESELECT requires a USING clause naming a solver"))?;
        let (solver, prob) = {
            let _plan = trace.map(|t| t.span("plan"));
            let solver = self.registry.get(&using.solver)?;
            SolverRegistry::check_method(solver.as_ref(), &using.method)?;
            (solver, build_problem_traced(db, ctes, stmt, trace)?)
        };
        // Pre-solve static analysis. All findings go into the sink; the
        // executor keeps only advisory (Warning/Note) severities on the
        // result — Error-level findings predict a solver failure that
        // the solve call below reports in its own words.
        obs::trace::span_time(trace, "check", || {
            warnings.extend(check::check_problem(db, ctes, &prob));
        });
        let control = SolveControl::from_db(db);
        let ctx = SolveContext { db, ctes, trace, control: control.as_ref() };
        let span = trace.map(|t| {
            let s = t.span("solve");
            s.note("solver", &using.solver);
            if let Some(m) = &using.method {
                s.note("method", m);
            }
            s
        });
        let out = solver.solve(&ctx, &prob);
        if let (Some(s), Ok(t)) = (span, &out) {
            s.rows(t.num_rows() as u64);
        }
        out
    }

    fn explain_solve(&self, db: &Database, stmt: &SolveStmt, ctes: &Ctes) -> Result<Table> {
        let e = explain::explain_stmt(db, ctes, stmt)?;
        let schema = Schema::new(vec![Column::new("plan", DataType::Text)]);
        let rows = e.render().lines().map(|l| vec![Value::text(l)]).collect();
        Ok(Table::with_rows(schema, rows))
    }

    fn check_solve(&self, db: &Database, stmt: &SolveStmt, ctes: &Ctes) -> Result<Vec<Diagnostic>> {
        check::check_stmt(db, ctes, stmt)
    }

    fn presolve_solve(&self, db: &Database, stmt: &SolveStmt, ctes: &Ctes) -> Result<Table> {
        let prob = build_problem(db, ctes, stmt)?;
        let lines = check::presolve::reduce::explain_presolve(db, ctes, &prob);
        let schema = Schema::new(vec![Column::new("plan", DataType::Text)]);
        let rows = lines.into_iter().map(|l| vec![Value::text(&l)]).collect();
        Ok(Table::with_rows(schema, rows))
    }

    fn solve_model(&self, _db: &Database, stmt: &SolveStmt, _ctes: &Ctes) -> Result<Value> {
        // A SOLVEMODEL (or SOLVESELECT used as a model expression) is pure
        // AST capture — nothing evaluates until instantiation/inlining.
        let mut s = stmt.clone();
        s.kind = SolveKind::Model;
        Ok(custom(ModelValue::new(s)))
    }

    fn model_eval(
        &self,
        db: &Database,
        select: &Query,
        model: &Query,
        ctes: &Ctes,
    ) -> Result<Table> {
        let mv = expect_model(&run_query(db, ctes, model, None)?.scalar()?)?;
        // Turn the model's relations into CTEs (materialized with their
        // initial values) and evaluate the SELECT in that context.
        let prob = build_problem(db, ctes, &mv.stmt)?;
        let env = materialize_env(db, ctes, &prob, &CellPatch::Initial)?;
        run_query(db, &env, select, None)
    }
}
