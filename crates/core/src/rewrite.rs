//! The CDTE → single-input-relation rewrite of paper §4.3.
//!
//! SolveDB+ evaluates `SOLVESELECT` queries with decision-bearing CDTEs
//! either natively (the default path in [`crate::problem`]) or by
//! rewriting them to a *single* input relation: all decision-bearing
//! relations are row-aligned into one table `__l` with a bit-string
//! `c_mask` column marking which relation(s) each row belongs to
//! (Table 5), and each original relation is reconstructed as a plain
//! CDTE projecting `__l` filtered by its mask bit. The paper prefers
//! this path because it is transparent to every registered solver; here
//! it serves as a semantics cross-check and an ablation subject.

use crate::problem::{build_problem, ProblemInstance};
use sqlengine::ast::{
    DecCols, DecRel, Expr, Literal, Query, Select, SelectItem, SolveStmt, TableRef,
};
use sqlengine::catalog::{Ctes, Database};
use sqlengine::error::{Error, Result};
use sqlengine::table::{Column, Schema, Table};
use sqlengine::types::{BinOp, BitString, DataType, Value};
use std::sync::Arc;

/// Name of the synthetic combined relation.
pub const COMBINED: &str = "__l";
/// Name of the mask column (paper Table 5).
pub const C_MASK: &str = "c_mask";

/// Result of the rewrite: a transformed statement plus the materialized
/// combined relation to expose as a CTE.
pub struct CdteRewrite {
    pub stmt: SolveStmt,
    pub combined: Table,
}

/// Does the statement have more than one decision-bearing relation
/// (i.e. would the rewrite change anything)?
pub fn needs_rewrite(stmt: &SolveStmt) -> bool {
    let mut n = usize::from(!stmt.input.dec_cols.is_none());
    n += stmt.ctes.iter().filter(|c| !c.dec_cols.is_none()).count();
    n > 1
}

/// Apply the §4.3 rewrite. The decision-bearing relations are
/// materialized (via [`build_problem`]'s machinery), row-aligned into
/// the combined table with prefixed column names and a `c_mask`, and the
/// statement is rewritten so its only decision relation is
/// `SELECT * FROM __l` while the original aliases become mask-filtered
/// projections.
pub fn rewrite_cdtes(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<CdteRewrite> {
    // Materialize everything once (also expands INLINE).
    let prob: ProblemInstance = build_problem(db, ctes, stmt)?;
    let stmt = if stmt.inlines.is_empty() {
        stmt.clone()
    } else {
        crate::problem::inline_models(db, ctes, stmt)?
    };

    // Decision-bearing relations, in order.
    let mut dec_rels: Vec<(usize, String)> = Vec::new(); // (relation idx, alias)
    for (i, rel) in prob.relations.iter().enumerate() {
        if !rel.dec_cols.is_empty() {
            let alias = rel
                .alias
                .clone()
                .ok_or_else(|| Error::solver("the CDTE rewrite requires aliased relations"))?;
            dec_rels.push((i, alias));
        }
    }
    if dec_rels.len() < 2 {
        return Err(Error::solver(
            "the CDTE rewrite applies only with two or more decision relations",
        ));
    }
    if dec_rels.len() > 64 {
        return Err(Error::solver("c_mask supports at most 64 decision relations"));
    }
    let width = dec_rels.len() as u8;

    // Build the combined schema: alias__col for every column of every
    // decision relation, plus c_mask.
    let mut columns: Vec<Column> = Vec::new();
    let mut col_offsets: Vec<usize> = Vec::new();
    for &(ri, ref alias) in &dec_rels {
        col_offsets.push(columns.len());
        for c in &prob.relations[ri].table.schema.columns {
            columns.push(Column::new(format!("{alias}__{}", c.name), c.ty.clone()));
        }
    }
    let mask_col = columns.len();
    columns.push(Column::new(C_MASK, DataType::Bits));

    // Row-align: row r of the combined table carries row r of each
    // relation that is long enough; the mask records membership.
    let max_rows =
        dec_rels.iter().map(|&(ri, _)| prob.relations[ri].table.num_rows()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(max_rows);
    for r in 0..max_rows {
        let mut row: Vec<Value> = vec![Value::Null; columns.len()];
        let mut mask = 0u64;
        for (k, &(ri, _)) in dec_rels.iter().enumerate() {
            let t = &prob.relations[ri].table;
            if r < t.num_rows() {
                mask |= 1u64 << (width - 1 - k as u8);
                for (ci, v) in t.rows[r].iter().enumerate() {
                    row[col_offsets[k] + ci] = v.clone();
                }
            }
        }
        row[mask_col] = Value::Bits(BitString::new(width, mask)?);
        rows.push(row);
    }
    let combined = Table::with_rows(Schema::new(columns), rows);

    // Decision columns of the combined relation.
    let mut dec_col_names = Vec::new();
    for &(ri, ref alias) in &dec_rels {
        let rel = &prob.relations[ri];
        for &c in &rel.dec_cols {
            dec_col_names.push(format!("{alias}__{}", rel.table.schema.columns[c].name));
        }
    }

    // Rewritten statement: input = SELECT * FROM __l with the combined
    // decision columns; each original alias becomes a mask-filtered
    // projection CDTE; decision-free CDTEs keep their original queries.
    let mut new_stmt = stmt.clone();
    new_stmt.input = DecRel {
        alias: Some("l".to_string()),
        dec_cols: DecCols::List(dec_col_names),
        query: Query::simple(Select {
            distinct: false,
            projection: vec![SelectItem::Wildcard { qualifier: None }],
            from: vec![TableRef::Named { name: COMBINED.into(), alias: None }],
            where_: None,
            group_by: vec![],
            grouping_sets: None,
            having: None,
        }),
    };
    let mut new_ctes: Vec<DecRel> = Vec::new();
    for (k, &(ri, ref alias)) in dec_rels.iter().enumerate() {
        let rel = &prob.relations[ri];
        let mask = BitString::single(width, k as u8)?;
        let zero = BitString::new(width, 0)?;
        // SELECT l.<alias>__c AS c, ... FROM l WHERE (c_mask & b'mask') <> b'0..0'
        let projection: Vec<SelectItem> = rel
            .table
            .schema
            .columns
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::Column { qualifier: None, name: format!("{alias}__{}", c.name) },
                alias: Some(c.name.clone()),
            })
            .collect();
        let filter = Expr::BinOp {
            op: BinOp::Ne,
            lhs: Box::new(Expr::BinOp {
                op: BinOp::BitAnd,
                lhs: Box::new(Expr::col(C_MASK)),
                rhs: Box::new(Expr::Literal(Literal::BitStr(mask.to_string()))),
            }),
            rhs: Box::new(Expr::Literal(Literal::BitStr(zero.to_string()))),
        };
        new_ctes.push(DecRel {
            alias: Some(alias.clone()),
            dec_cols: DecCols::None,
            query: Query::simple(Select {
                distinct: false,
                projection,
                from: vec![TableRef::Named { name: "l".into(), alias: None }],
                where_: Some(filter),
                group_by: vec![],
                grouping_sets: None,
                having: None,
            }),
        });
    }
    // Keep decision-free CDTEs (they may derive from the reconstructed
    // relations).
    for cte in &stmt.ctes {
        if cte.dec_cols.is_none() {
            new_ctes.push(cte.clone());
        }
    }
    new_stmt.ctes = new_ctes;
    new_stmt.inlines.clear();

    Ok(CdteRewrite { stmt: new_stmt, combined })
}

/// Execute a `SOLVESELECT` through the rewrite path and return the
/// output in the original input relation's shape.
pub fn solve_via_rewrite(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<Table> {
    let handler = db.solve_handler()?;
    let rw = rewrite_cdtes(db, ctes, stmt)?;
    let env = ctes.with(COMBINED, Arc::new(rw.combined));
    let solved = handler.solve_select(db, &rw.stmt, &env, &mut Vec::new(), None)?;

    // Project the combined output back to the original input relation.
    let orig_alias = stmt
        .input
        .alias
        .clone()
        .ok_or_else(|| Error::solver("rewrite requires an aliased input relation"))?;
    let prefix = format!("{orig_alias}__");
    let mut keep: Vec<(usize, String)> = Vec::new();
    for (i, c) in solved.schema.columns.iter().enumerate() {
        if let Some(orig) = c.name.strip_prefix(&prefix) {
            keep.push((i, orig.to_string()));
        }
    }
    let mask_idx = solved
        .schema
        .index_of(C_MASK)
        .ok_or_else(|| Error::solver("rewritten output lost its c_mask column"))?;
    // Find the input relation's membership bit.
    let prob = build_problem(db, ctes, stmt)?;
    let mut bit = None;
    let mut k = 0u8;
    for rel in &prob.relations {
        if !rel.dec_cols.is_empty() {
            if rel.alias.as_deref() == Some(orig_alias.as_str()) {
                bit = Some(k);
            }
            k += 1;
        }
    }
    let bit = bit.ok_or_else(|| {
        Error::solver("the input relation has no decision columns; rewrite not applicable")
    })?;
    let width = k;
    let sel_mask = BitString::single(width, bit)?;

    let mut schema_cols = Vec::new();
    for (_, name) in &keep {
        let orig_idx = prob.relations[0].table.schema.index_of(name).unwrap_or(0);
        schema_cols.push(prob.relations[0].table.schema.columns[orig_idx].clone());
    }
    let mut rows = Vec::new();
    for row in &solved.rows {
        let Value::Bits(mask) = &row[mask_idx] else {
            return Err(Error::solver("c_mask column is not a bit string"));
        };
        if mask.and(&sel_mask)?.is_zero() {
            continue;
        }
        rows.push(keep.iter().map(|(i, _)| row[*i].clone()).collect());
    }
    Ok(Table::with_rows(Schema::new(schema_cols), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::ast::Statement;
    use sqlengine::parser;

    fn solve_stmt(sql: &str) -> SolveStmt {
        match parser::parse_statement(sql).unwrap() {
            Statement::Solve(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn needs_rewrite_detection() {
        let single = solve_stmt("SOLVESELECT t(x) AS (SELECT 1 AS x) USING s()");
        assert!(!needs_rewrite(&single));
        let multi = solve_stmt(
            "SOLVESELECT t(x) AS (SELECT 1 AS x) WITH e(y) AS (SELECT 2 AS y) USING s()",
        );
        assert!(needs_rewrite(&multi));
        let no_dec_cte =
            solve_stmt("SOLVESELECT t(x) AS (SELECT 1 AS x) WITH e AS (SELECT 2 AS y) USING s()");
        assert!(!needs_rewrite(&no_dec_cte));
    }

    #[test]
    fn combined_table_shape_matches_table5() {
        use sqlengine::execute_script;
        let mut db = Database::new();
        execute_script(
            &mut db,
            "CREATE TABLE pars (a float8); INSERT INTO pars VALUES (NULL);
             CREATE TABLE obs (x float8, err float8);
             INSERT INTO obs VALUES (1, NULL), (2, NULL), (3, NULL);",
        )
        .unwrap();
        let stmt = solve_stmt(
            "SOLVESELECT p(a) AS (SELECT * FROM pars) \
             WITH e(err) AS (SELECT * FROM obs) \
             MINIMIZE (SELECT sum(err) FROM e) \
             SUBJECTTO (SELECT -1*err <= a * x - 2 * x <= err FROM e, p) \
             USING solverlp()",
        );
        let rw = rewrite_cdtes(&db, &Ctes::new(), &stmt).unwrap();
        let t = &rw.combined;
        // max(1, 3) rows; columns p__a, e__x, e__err, c_mask.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema.names(), vec!["p__a", "e__x", "e__err", C_MASK]);
        // Row 0 belongs to both relations; rows 1-2 only to e (Table 5).
        assert_eq!(t.value(0, 3).to_string(), "11");
        assert_eq!(t.value(1, 3).to_string(), "01");
        assert_eq!(t.value(2, 3).to_string(), "01");
        // The rewritten statement has a single decision relation.
        assert!(!needs_rewrite(&rw.stmt));
        assert_eq!(rw.stmt.input.dec_cols, DecCols::List(vec!["p__a".into(), "e__err".into()]));
    }

    #[test]
    fn rewrite_path_matches_native_solution() {
        use crate::Session;
        // L1 regression: fit a so that a*x ≈ y, with y = 2x exactly.
        let setup = "CREATE TABLE pars (a float8); INSERT INTO pars VALUES (NULL);
             CREATE TABLE obs (x float8, y float8);
             INSERT INTO obs VALUES (1, 2), (2, 4), (3, 6);";
        let sql = "SOLVESELECT p(a) AS (SELECT * FROM pars) \
             WITH e(err) AS (SELECT x, y, NULL::float8 AS err FROM obs) \
             MINIMIZE (SELECT sum(err) FROM e) \
             SUBJECTTO (SELECT -1*err <= a * x - y <= err FROM e, p) \
             USING solverlp()";

        // Native path.
        let mut s = Session::new();
        s.execute_script(setup).unwrap();
        let native = s.query(sql).unwrap();

        // Rewrite path.
        let stmt = solve_stmt(sql);
        let rewritten = solve_via_rewrite(s.db(), &Ctes::new(), &stmt).unwrap();

        assert_eq!(native.schema.names(), rewritten.schema.names());
        assert_eq!(native.num_rows(), rewritten.num_rows());
        let a_native = native.value_by_name(0, "a").unwrap().as_f64().unwrap();
        let a_rewritten = rewritten.value_by_name(0, "a").unwrap().as_f64().unwrap();
        assert!((a_native - 2.0).abs() < 1e-6);
        assert!((a_native - a_rewritten).abs() < 1e-9);
    }

    #[test]
    fn rewrite_rejects_single_relation() {
        let db = Database::new();
        let stmt = solve_stmt("SOLVESELECT t(x) AS (SELECT 1.0 AS x) USING s()");
        assert!(rewrite_cdtes(&db, &Ctes::new(), &stmt).is_err());
    }
}
