//! The SolveDB+ session: a database with the solver framework, built-in
//! solvers and the PA-oriented UDFs installed — the equivalent of a
//! PostgreSQL connection to a SolveDB+-patched server.

use crate::handler::Handler;
use crate::obs_tables::ObsTables;
use crate::solver::{Solver, SolverRegistry};
use crate::solvers::{ArimaSolver, LpSolver, PredictiveAdvisor, SwarmOps};
use forecast::arima::arima_rmse;
use obs::{MetricsRegistry, QueryTrace, SessionRegistry};
use parking_lot::RwLock;
use sqlengine::ast::Statement;
use sqlengine::catalog::ScalarUdf;
use sqlengine::error::{Error, Result};
use sqlengine::exec::Outcome;
use sqlengine::{execute_statement_timed, parser, Database, ExecResult, Table, Value};
use ssmodel::{simulation_sse, Lti};
use std::sync::Arc;
use storage::{SessionHook, StorageEngine};

/// The process-wide solver infrastructure shared by every session a
/// server creates: the solver registry (RC3 extensibility) and the
/// Predictive Advisor with its model cache. In the paper's terms this
/// is the state a PostgreSQL backend shares across connections, while
/// each [`Session`] keeps its own catalog namespace.
///
/// Cloning is cheap (two `Arc`s); a solver installed through any clone
/// is visible to all sessions built from it.
#[derive(Clone)]
pub struct SharedSolvers {
    registry: Arc<SolverRegistry>,
    advisor: Arc<PredictiveAdvisor>,
    metrics: Arc<MetricsRegistry>,
}

impl SharedSolvers {
    /// Build the built-in solver suite: `solverlp`, `swarmops`,
    /// `lr_solver`, `arima_solver`, `predictive_solver`.
    pub fn new() -> SharedSolvers {
        let registry = Arc::new(SolverRegistry::new());
        registry.register(Arc::new(LpSolver));
        registry.register(Arc::new(SwarmOps));
        registry.register(Arc::new(crate::solvers::LrSolver));
        registry.register(Arc::new(ArimaSolver));
        let advisor = Arc::new(PredictiveAdvisor::new());
        registry.register(advisor.clone() as Arc<dyn Solver>);
        SharedSolvers { registry, advisor, metrics: Arc::new(MetricsRegistry::new()) }
    }

    pub fn registry(&self) -> &Arc<SolverRegistry> {
        &self.registry
    }

    pub fn advisor(&self) -> &Arc<PredictiveAdvisor> {
        &self.advisor
    }

    /// The shared metrics store backing `sdb_stat_statements` and
    /// `sdb_solver_stats` in every session built from these solvers.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }
}

impl Default for SharedSolvers {
    fn default() -> Self {
        Self::new()
    }
}

/// A SolveDB+ session.
pub struct Session {
    db: Database,
    registry: Arc<SolverRegistry>,
    advisor: Arc<PredictiveAdvisor>,
    metrics: Arc<MetricsRegistry>,
    /// Live-session registry a server attached (for `sdb_sessions`).
    session_registry: Option<Arc<SessionRegistry>>,
    /// Durability engine when running with a data directory; the
    /// session group-commits its WAL batch after every statement.
    storage: Option<Arc<StorageEngine>>,
    /// This session's private commit buffer over the shared engine —
    /// a group commit covers exactly this session's statement, never a
    /// concurrent connection's mid-statement mutations.
    storage_hook: Option<Arc<SessionHook>>,
    /// Training series backing the `arima_rmse(ar, i, ma)` UDF.
    arima_training: Arc<RwLock<Vec<f64>>>,
    /// Training data backing the `hvac_sse(a1, b1, b2)` UDF:
    /// `(inputs (outtemp, hload), measured intemp)`.
    hvac_training: Arc<RwLock<(Vec<Vec<f64>>, Vec<f64>)>>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Create a stand-alone session with its own copy of the built-in
    /// solver suite (see [`SharedSolvers::new`]).
    pub fn new() -> Session {
        Session::with_solvers(&SharedSolvers::new())
    }

    /// Create a session on top of shared solver infrastructure — the
    /// cheap per-connection constructor used by `solvedbd`: the catalog
    /// (tables, views, UDF training state) is private to this session,
    /// while the solver registry and predictive model cache are shared.
    pub fn with_solvers(shared: &SharedSolvers) -> Session {
        let registry = shared.registry.clone();
        let advisor = shared.advisor.clone();
        let metrics = shared.metrics.clone();

        let mut db = Database::new();
        db.set_solve_handler(Arc::new(Handler::new(registry.clone())));
        db.set_virtual_tables(Arc::new(ObsTables::new(metrics.clone(), None, None)));

        let arima_training: Arc<RwLock<Vec<f64>>> = Arc::new(RwLock::new(Vec::new()));
        let hvac_training: Arc<RwLock<(Vec<Vec<f64>>, Vec<f64>)>> =
            Arc::new(RwLock::new((Vec::new(), Vec::new())));

        // arima_rmse(ar, i, ma): the order-search fitness of §3.2,
        // evaluated over the session's registered training series.
        let series = arima_training.clone();
        db.register_udf(ScalarUdf {
            name: "arima_rmse".into(),
            param_names: vec!["ar".into(), "i".into(), "ma".into()],
            defaults: Default::default(),
            func: Arc::new(move |args| {
                let y = series.read();
                if y.is_empty() {
                    return Err(Error::solver(
                        "arima_rmse: no training series registered \
                         (use Session::set_arima_training)",
                    ));
                }
                let p = args[0].as_i64()?.max(0) as usize;
                let d = args[1].as_i64()?.max(0) as usize;
                let q = args[2].as_i64()?.max(0) as usize;
                let e = arima_rmse(&y, p, d, q);
                Ok(Value::Float(if e.is_finite() { e } else { 1e18 }))
            }),
        });

        // hvac_sse(a1, b1, b2): the P3 fitness (the paper implements this
        // as a PL/pgSQL UDF, §5.3).
        let hvac = hvac_training.clone();
        db.register_udf(ScalarUdf {
            name: "hvac_sse".into(),
            param_names: vec!["a1".into(), "b1".into(), "b2".into()],
            defaults: Default::default(),
            func: Arc::new(move |args| {
                let data = hvac.read();
                let (u, measured) = (&data.0, &data.1);
                if measured.is_empty() {
                    return Err(Error::solver(
                        "hvac_sse: no training data registered \
                         (use Session::set_hvac_training)",
                    ));
                }
                let m = Lti::hvac(args[0].as_f64()?, args[1].as_f64()?, args[2].as_f64()?);
                Ok(Value::Float(simulation_sse(&m, &[measured[0]], u, measured)))
            }),
        });

        Session {
            db,
            registry,
            advisor,
            metrics,
            session_registry: None,
            storage: None,
            storage_hook: None,
            arima_training,
            hvac_training,
        }
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let (parsed, parse_time) = obs::timed(|| parser::parse_statement(sql));
        self.run_recorded(&parsed?, Some(parse_time.as_nanos() as u64))
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecResult> {
        let stmts = parser::parse_statements(sql)?;
        let mut last = ExecResult::done();
        for s in &stmts {
            last = self.run_recorded(s, None)?;
        }
        Ok(last)
    }

    /// Execute one already-parsed statement — the statement-by-statement
    /// path shared by the CLI's script/remote modes and the server,
    /// which need a result per statement rather than the last one.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<ExecResult> {
        self.run_recorded(stmt, None)
    }

    /// Execute a statement and fold the outcome into the session's
    /// metrics registry: one `sdb_stat_statements` row per statement
    /// shape, plus per-solver aggregates when the statement was traced.
    fn run_recorded(&mut self, stmt: &Statement, parse_nanos: Option<u64>) -> Result<ExecResult> {
        let shape = sqlengine::statement_shape(stmt);
        let (out, elapsed) =
            obs::timed(|| execute_statement_timed(&mut self.db, stmt, parse_nanos));
        let nanos = elapsed.as_nanos() as u64;
        // Fold per-stage latency distributions in before the group
        // commit appends its wal.append stage: the WAL histograms are
        // recorded by the storage engine itself, so recording the
        // appended stage here would double-count them.
        if let Ok(res) = &out {
            if let Some(tr) = &res.trace {
                self.metrics.record_trace_stages(tr);
            }
        }
        // Group commit: everything the statement logged goes to the WAL
        // in one write (and at most one fsync, per policy). This runs
        // even when the statement errored — partial in-memory effects
        // were already flushed to the hook and the log must mirror them.
        // A durability failure fails the statement: the caller must not
        // observe un-logged state as committed.
        let mut out = out;
        if let Some(hook) = &self.storage_hook {
            match hook.commit() {
                Ok((records, commit_nanos)) => {
                    if records > 0 {
                        if let Ok(res) = &mut out {
                            if let Some(tr) = &mut res.trace {
                                tr.stages.push(StorageEngine::append_stage(records, commit_nanos));
                            }
                        }
                    }
                }
                Err(e) => {
                    self.metrics.record_statement(&shape, nanos, 0, true);
                    return Err(e);
                }
            }
        }
        match &out {
            Ok(res) => {
                let rows = match &res.outcome {
                    Outcome::Table(t) => t.num_rows() as u64,
                    Outcome::Count(n) => *n as u64,
                    Outcome::Done => 0,
                };
                self.metrics.record_statement_exec(
                    &shape,
                    nanos,
                    rows,
                    false,
                    res.plan_fingerprint,
                    res.plan_cache_hit,
                );
                if let Some(tr) = &res.trace {
                    let solve_nanos = solve_stage_nanos(tr);
                    for st in &tr.solvers {
                        self.metrics.record_solver(st, solve_nanos);
                    }
                }
            }
            Err(_) => self.metrics.record_statement(&shape, nanos, 0, true),
        }
        out
    }

    /// Run the pre-solve static analyzer over a `SOLVESELECT` without
    /// solving it (the programmatic face of `EXPLAIN CHECK`). Returns
    /// all findings, every severity included.
    pub fn check(&self, sql: &str) -> Result<Vec<sqlengine::diag::Diagnostic>> {
        crate::check::check_sql(&self.db, sql)
    }

    /// Run the whole-script static analyzer (`scriptcheck`, SD013–SD018)
    /// over a multi-statement script against this session's catalog —
    /// the programmatic face of `EXPLAIN SCRIPT`. Nothing is executed.
    pub fn check_script(&self, sql: &str) -> Result<sqlengine::script::ScriptAnalysis> {
        let snapshot = sqlengine::script::CatalogSnapshot::from_db(&self.db);
        sqlengine::script::analyze_sql(sql, &snapshot)
    }

    /// Execute and expect a result set.
    pub fn query(&mut self, sql: &str) -> Result<Table> {
        self.execute(sql)?.into_table()
    }

    /// Execute and expect a single scalar.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Value> {
        self.query(sql)?.scalar()
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Install a custom solver (RC3 extensibility).
    pub fn install_solver(&self, solver: Arc<dyn Solver>) {
        self.registry.register(solver);
    }

    pub fn solver_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// The Predictive Advisor instance (exposes its model cache stats).
    pub fn advisor(&self) -> &PredictiveAdvisor {
        &self.advisor
    }

    /// The metrics store this session records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Expose a server's live-session registry through `sdb_sessions`
    /// (called by `solvedbd` when it builds a connection's session).
    /// Also makes `CANCEL <session>` resolvable from this session.
    pub fn attach_session_registry(&mut self, sessions: Arc<SessionRegistry>) {
        self.db.set_session_registry(Some(sessions.clone()));
        self.session_registry = Some(sessions);
        self.rebuild_virtual_tables();
    }

    /// Attach this session's own per-connection counters, making it
    /// killable via `CANCEL` (the watchdog polls the kill flag at
    /// solver progress points).
    pub fn attach_own_counters(&mut self, counters: Arc<obs::SessionCounters>) {
        self.db.set_own_counters(Some(counters));
    }

    /// Install the live-progress sink solvers emit [`obs::ProgressEvent`]s
    /// into (throttled by the watchdog to ~10 Hz).
    pub fn set_progress_sink(&mut self, sink: Arc<dyn Fn(&obs::ProgressEvent) + Send + Sync>) {
        self.db.set_progress_sink(Some(sink));
    }

    /// Set (or clear, with `None`/`Some(0)`) the solver wall-clock
    /// budget — the programmatic face of `SET solver_timeout_ms`.
    pub fn set_solver_timeout_ms(&mut self, ms: Option<u64>) {
        self.db.set_solver_timeout_ms(ms.filter(|&v| v > 0));
    }

    /// Make the session durable: hydrate the catalog from the engine's
    /// recovered state, then register a per-session [`SessionHook`]
    /// over the engine as the catalog's durability hook so every
    /// subsequent mutation is WAL-logged. Hydration runs *before* the
    /// hook attaches, so replayed history is not logged a second time.
    pub fn attach_storage(&mut self, engine: Arc<StorageEngine>) -> Result<()> {
        engine.attach_metrics(self.metrics.clone());
        engine.hydrate(&mut self.db)?;
        let hook = Arc::new(SessionHook::new(engine.clone()));
        self.db.set_durability_hook(hook.clone());
        self.storage = Some(engine);
        self.storage_hook = Some(hook);
        self.rebuild_virtual_tables();
        Ok(())
    }

    /// The attached storage engine, if the session is durable.
    pub fn storage(&self) -> Option<&Arc<StorageEngine>> {
        self.storage.as_ref()
    }

    fn rebuild_virtual_tables(&mut self) {
        self.db.set_virtual_tables(Arc::new(ObsTables::new(
            self.metrics.clone(),
            self.session_registry.clone(),
            self.storage.clone(),
        )));
    }

    /// Register the training series used by the `arima_rmse` UDF.
    pub fn set_arima_training(&self, y: Vec<f64>) {
        *self.arima_training.write() = y;
    }

    /// Register training data for the `hvac_sse` UDF: inputs are
    /// `(outtemp, hload)` rows; `measured[0]` is the initial state.
    pub fn set_hvac_training(&self, u: Vec<Vec<f64>>, measured: Vec<f64>) {
        *self.hvac_training.write() = (u, measured);
    }
}

/// Wall-clock attributable to solving: the root `solve` stage when the
/// trace has one, the whole statement otherwise.
fn solve_stage_nanos(tr: &QueryTrace) -> u64 {
    tr.stages.iter().find(|s| s.name == "solve").map(|s| s.nanos).unwrap_or(tr.total_nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_is_send() {
        // solvedbd moves each connection's Session into a worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<SharedSolvers>();
    }

    #[test]
    fn sessions_share_installed_solvers() {
        let shared = SharedSolvers::new();
        let a = Session::with_solvers(&shared);
        let b = Session::with_solvers(&shared);
        struct Nop;
        impl Solver for Nop {
            fn name(&self) -> &str {
                "nop_shared"
            }
            fn solve(
                &self,
                _ctx: &crate::solver::SolveContext<'_>,
                _prob: &crate::problem::ProblemInstance,
            ) -> Result<Table> {
                Err(Error::solver("nop"))
            }
        }
        a.install_solver(Arc::new(Nop));
        assert!(b.solver_names().iter().any(|n| n == "nop_shared"));
    }

    #[test]
    fn sessions_have_private_catalogs() {
        let shared = SharedSolvers::new();
        let mut a = Session::with_solvers(&shared);
        let mut b = Session::with_solvers(&shared);
        a.execute("CREATE TABLE only_in_a (x int)").unwrap();
        assert!(b.execute("SELECT * FROM only_in_a").is_err());
    }

    #[test]
    fn execute_statement_runs_parsed_statements() {
        let mut s = Session::new();
        let stmts = sqlengine::parser::parse_statements(
            "CREATE TABLE t (x int); INSERT INTO t VALUES (4); SELECT x FROM t",
        )
        .unwrap();
        let mut last = None;
        for st in &stmts {
            last = Some(s.execute_statement(st).unwrap());
        }
        let table = last.unwrap().into_table().unwrap();
        assert_eq!(table.rows, vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn session_has_builtin_solvers() {
        let s = Session::new();
        let names = s.solver_names();
        for expected in ["solverlp", "swarmops", "lr_solver", "arima_solver", "predictive_solver"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn basic_sql_roundtrip() {
        let mut s = Session::new();
        s.execute_script("CREATE TABLE t (x int); INSERT INTO t VALUES (1), (2)").unwrap();
        assert_eq!(s.query_scalar("SELECT sum(x) FROM t").unwrap(), Value::Int(3));
    }

    #[test]
    fn arima_rmse_udf_requires_training_data() {
        let mut s = Session::new();
        assert!(s.query_scalar("SELECT arima_rmse(1, 0, 0)").is_err());
        s.set_arima_training((0..100).map(|i| (i % 7) as f64).collect());
        let v = s.query_scalar("SELECT arima_rmse(1, 0, 0)").unwrap();
        assert!(v.as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn hvac_sse_udf() {
        let mut s = Session::new();
        assert!(s.query_scalar("SELECT hvac_sse(0.9, 0.1, 0.0)").is_err());
        let truth = Lti::hvac(0.9, 0.05, 0.0004);
        let u: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 100.0]).collect();
        let (states, _) = truth.simulate(&[21.0], &u);
        let measured: Vec<f64> = states.iter().map(|s| s[0]).collect();
        s.set_hvac_training(u, measured);
        let perfect =
            s.query_scalar("SELECT hvac_sse(0.9, 0.05, 0.0004)").unwrap().as_f64().unwrap();
        assert!(perfect < 1e-15);
        let off = s.query_scalar("SELECT hvac_sse(0.5, 0.05, 0.0004)").unwrap().as_f64().unwrap();
        assert!(off > perfect);
    }
}
