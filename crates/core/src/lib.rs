//! # solvedbplus-core — the SolveDB+ layer
//!
//! Implements the paper's contributions on top of the `sqlengine`
//! substrate: the solver framework and registry (§4.1), symbolic
//! compilation of rules into linear programs, shared problem models with
//! instantiation (`<<`, Algorithm 1) and inlining (`INLINE`,
//! Algorithm 2), `MODELEVAL`, the CDTE machinery incl. the `c_mask`
//! rewrite (§4.3), and the in-DBMS Predictive Framework (§3).
//!
//! Entry point: [`Session`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod check;
pub mod explain;
pub mod handler;
pub mod model;
pub mod obs_tables;
pub mod problem;
pub mod rewrite;
pub mod session;
pub mod solver;
pub mod solvers;
pub mod symbolic;

pub use check::{check_sql, check_stmt};
pub use explain::{explain_sql, Explanation};
pub use model::ModelValue;
pub use obs_tables::ObsTables;
pub use problem::{build_problem, ProblemInstance};
pub use session::{Session, SharedSolvers};
pub use solver::{SolveContext, Solver, SolverRegistry};
