//! SD019 — block-diagonal model structure detection.
//!
//! Two decision variables are *coupled* when some constraint row
//! references both; the transitive closure of coupling partitions the
//! variables (and the rows) into independent blocks. A model with K ≥ 2
//! blocks is block-diagonal: each block is a self-contained subproblem
//! that can be solved in isolation, and (for a separable objective,
//! which every linear objective is) the solutions concatenate into the
//! global optimum. This is exactly the decomposition a partitioned
//! parallel solver consumes (ROADMAP item 1), surfaced today as the
//! informational diagnostic SD019.
//!
//! The detection is a union-find over the coefficient matrix: for each
//! constraint atom, union all variables it references; blocks are the
//! resulting components among *constrained* variables (variables no
//! rule references are SD003's business, not a "block").

use super::{Atom, CheckedModel};
use crate::problem::{collect_constraints, materialize_env, CellPatch, ProblemInstance};
use crate::symbolic::VarId;
use sqlengine::catalog::{Ctes, Database};
use sqlengine::diag::Diagnostic;
use std::collections::HashMap;

/// One independent block of the constraint structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The decision variables of the block, ascending.
    pub vars: Vec<VarId>,
    /// Number of constraint rows that reference only this block.
    pub rows: usize,
}

/// Partition the constraint atoms into variable-disjoint blocks.
/// Deterministic: blocks are ordered by their smallest variable id.
pub fn blocks(atoms: &[Atom]) -> Vec<Block> {
    let mut uf = UnionFind::default();
    for atom in atoms {
        let mut vars = atom.diff.vars();
        if let Some(first) = vars.next() {
            uf.ensure(first);
            for v in vars {
                uf.union(first, v);
            }
        }
    }
    // Group variables by root.
    let var_ids: Vec<VarId> = uf.ids();
    let mut by_root: HashMap<VarId, Block> = HashMap::new();
    for v in var_ids {
        let root = uf.find(v);
        by_root.entry(root).or_insert_with(|| Block { vars: vec![], rows: 0 }).vars.push(v);
    }
    for atom in atoms {
        if let Some(v) = atom.diff.vars().next() {
            let root = uf.find(v);
            if let Some(block) = by_root.get_mut(&root) {
                block.rows += 1;
            }
        }
    }
    let mut out: Vec<Block> = by_root.into_values().collect();
    for b in &mut out {
        b.vars.sort_unstable();
    }
    out.sort_by_key(|b| b.vars.first().copied().unwrap_or(VarId::MAX));
    out
}

/// SD019: informational finding when the model splits into independent
/// blocks. Requires a complete symbolic picture (otherwise an
/// unevaluated rule might couple the blocks) and at least one genuine
/// multi-variable constraint (a model of pure per-variable bounds would
/// otherwise report every variable as its own "block").
pub fn sd019_decomposable(model: &CheckedModel, diags: &mut Vec<Diagnostic>) {
    if !model.complete {
        return;
    }
    let has_coupling = model.atoms.iter().any(|a| {
        let mut vars = a.diff.vars();
        let first = vars.next();
        vars.any(|v| Some(v) != first)
    });
    if !has_coupling {
        return;
    }
    let blocks = blocks(&model.atoms);
    if blocks.len() < 2 {
        return;
    }
    const SHOWN: usize = 8;
    let mut lines: Vec<String> = blocks
        .iter()
        .take(SHOWN)
        .enumerate()
        .map(|(i, b)| {
            format!("block {}: {} variable(s), {} constraint row(s)", i + 1, b.vars.len(), b.rows)
        })
        .collect();
    if blocks.len() > SHOWN {
        lines.push(format!("... and {} more block(s)", blocks.len() - SHOWN));
    }
    lines.push(
        "the blocks share no decision variables; each can be solved as an \
         independent subproblem"
            .to_string(),
    );
    diags.push(
        Diagnostic::note(
            "SD019",
            format!("decomposable model: {} independent blocks", blocks.len()),
        )
        .with_detail(lines.join("\n")),
    );
}

/// Compute the block structure of a compiled problem instance from
/// scratch (the entry point for tests and the future partitioned
/// solver). Returns an empty vector when the model cannot be evaluated
/// symbolically — callers must treat that as "no decomposition known".
pub fn problem_blocks(db: &Database, ctes: &Ctes, prob: &ProblemInstance) -> Vec<Block> {
    let Ok(env) = materialize_env(db, ctes, prob, &CellPatch::Symbolic) else {
        return Vec::new();
    };
    let mut atoms = Vec::new();
    for rule in &prob.subjectto {
        let mut collected = Vec::new();
        if collect_constraints(db, &env, std::slice::from_ref(rule), &mut collected).is_err() {
            return Vec::new(); // incomplete picture: no sound decomposition
        }
        for c in &collected {
            for (l, rel, r) in c.atoms() {
                atoms.push(Atom { diff: l.sub(r), rel, rule: String::new() });
            }
        }
    }
    blocks(&atoms)
}

/// Minimal path-halving union-find over sparse `VarId`s.
#[derive(Default)]
struct UnionFind {
    parent: HashMap<VarId, VarId>,
}

impl UnionFind {
    fn ensure(&mut self, v: VarId) {
        self.parent.entry(v).or_insert(v);
    }

    fn find(&mut self, v: VarId) -> VarId {
        self.ensure(v);
        let mut x = v;
        loop {
            let p = self.parent[&x];
            if p == x {
                break;
            }
            let gp = self.parent[&p];
            self.parent.insert(x, gp);
            x = gp;
        }
        x
    }

    fn union(&mut self, a: VarId, b: VarId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn ids(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = self.parent.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{LinExpr, Rel};

    fn atom(vars: &[(VarId, f64)]) -> Atom {
        Atom {
            diff: LinExpr { constant: 0.0, terms: vars.to_vec() },
            rel: Rel::Le,
            rule: String::new(),
        }
    }

    #[test]
    fn disjoint_rows_make_two_blocks() {
        let atoms =
            vec![atom(&[(0, 1.0), (1, 1.0)]), atom(&[(2, 1.0), (3, 1.0)]), atom(&[(1, 2.0)])];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].vars, vec![0, 1]);
        assert_eq!(b[0].rows, 2);
        assert_eq!(b[1].vars, vec![2, 3]);
        assert_eq!(b[1].rows, 1);
    }

    #[test]
    fn coupling_row_merges_blocks() {
        let atoms = vec![
            atom(&[(0, 1.0), (1, 1.0)]),
            atom(&[(2, 1.0), (3, 1.0)]),
            atom(&[(1, 1.0), (2, 1.0)]), // couples the two
        ];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].vars, vec![0, 1, 2, 3]);
        assert_eq!(b[0].rows, 3);
    }

    #[test]
    fn constant_atoms_are_ignored() {
        let atoms = vec![atom(&[]), atom(&[(5, 1.0)])];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].rows, 1);
    }

    #[test]
    fn empty_atom_list_yields_no_blocks() {
        assert!(blocks(&[]).is_empty());
        // All-constant atoms are equivalent to no atoms at all.
        assert!(blocks(&[atom(&[]), atom(&[])]).is_empty());
    }

    #[test]
    fn single_variable_model_is_one_block() {
        // One variable referenced by several rows: one block, every row
        // attributed to it.
        let atoms = vec![atom(&[(7, 1.0)]), atom(&[(7, -2.0)]), atom(&[(7, 0.5)])];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].vars, vec![7]);
        assert_eq!(b[0].rows, 3);
    }

    #[test]
    fn fully_coupled_model_is_one_block() {
        // A chain of pairwise couplings merges everything transitively,
        // regardless of insertion order.
        let atoms = vec![
            atom(&[(3, 1.0), (0, 1.0)]),
            atom(&[(1, 1.0), (2, 1.0)]),
            atom(&[(0, 1.0), (1, 1.0)]),
            atom(&[(2, 1.0), (4, 1.0)]),
        ];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].vars, vec![0, 1, 2, 3, 4]);
        assert_eq!(b[0].rows, 4);
    }

    #[test]
    fn blocks_are_ordered_by_smallest_variable() {
        let atoms = vec![atom(&[(9, 1.0), (8, 1.0)]), atom(&[(1, 1.0), (5, 1.0)])];
        let b = blocks(&atoms);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].vars, vec![1, 5]);
        assert_eq!(b[1].vars, vec![8, 9]);
    }
}
