//! Matrix classification of the checked model: SD020–SD025.
//!
//! The analyzers up to SD019 reason about bounds, references and block
//! structure; this pass looks at the *constraint matrix itself*, the
//! way a modern MIP engine would. It digests the checked model's atoms
//! into an [`lp::Problem`] using exactly `to_lp`'s translation (single
//! variable non-equality atoms become box bounds, everything else a
//! row) and runs [`lp::matrix::analyze`] over it, so the classification
//! reported by `EXPLAIN CHECK` is the same one `solverlp` acts on at
//! run time.
//!
//! The findings (emitted by [`diag`]):
//!
//! - **SD020** (note) — row-class census: how many rows have special
//!   structure (set-partitioning/-packing/-covering, cardinality,
//!   knapsack/cover, variable bounds, flow balance). The detail is the
//!   full matrix-summary section.
//! - **SD021** (note) — the matrix is an interval matrix (consecutive
//!   ones), hence totally unimodular.
//! - **SD022** (note) — the matrix is a network matrix
//!   (Heller–Tompkins), hence totally unimodular.
//! - **SD023** (note) — integrality of some declared-integer variables
//!   is implied by equality rows; branch-and-bound need not branch on
//!   them.
//! - **SD024** (warning) — a set-partitioning-shaped row ranges over
//!   non-binary variables (usually a missing integer declaration).
//! - **SD025** (warning) — a knapsack row carries an item heavier than
//!   the capacity; the variable is forced to zero.

pub mod diag;

use super::CheckedModel;
use crate::symbolic::{Rel, VarId};

/// The checked model digested into lp form, with provenance: which atom
/// each lp row came from, and which decision variable each lp column is.
pub struct LpView {
    pub problem: lp::Problem,
    /// `used[j]` is the decision variable behind lp column `j`.
    pub used: Vec<VarId>,
    /// `atom_of_row[i]` is the index into `CheckedModel::atoms` of the
    /// atom behind lp row `i`.
    pub atom_of_row: Vec<usize>,
}

/// Digest the checked atoms into an [`lp::Problem`], mirroring
/// `problem::to_lp`: variables referenced by the objective or any atom
/// become columns, single-variable non-equality atoms become box
/// bounds, every other atom becomes a constraint row. Returns `None`
/// when no atom references a variable (nothing to classify).
pub fn lp_view(m: &CheckedModel<'_>) -> Option<LpView> {
    let mut used: Vec<VarId> = Vec::new();
    let mut seen = vec![false; m.prob.num_vars()];
    let mut mark = |vs: &[(VarId, f64)], used: &mut Vec<VarId>| {
        for &(v, _) in vs {
            if !seen[v as usize] {
                seen[v as usize] = true;
                used.push(v);
            }
        }
    };
    if let Some(obj) = &m.objective {
        mark(&obj.terms, &mut used);
    }
    for a in &m.atoms {
        mark(&a.diff.terms, &mut used);
    }
    if used.is_empty() {
        return None;
    }
    used.sort_unstable();
    let index: std::collections::HashMap<VarId, usize> =
        used.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let mut p = if m.minimize {
        lp::Problem::minimize(used.len())
    } else {
        lp::Problem::maximize(used.len())
    };
    for (i, &v) in used.iter().enumerate() {
        p.integer[i] = m.prob.vars[v as usize].integer;
    }
    if let Some(obj) = &m.objective {
        p.objective_constant = obj.constant;
        p.set_objective(obj.terms.iter().map(|&(v, c)| (index[&v], c)).collect());
    }
    let mut atom_of_row = Vec::new();
    for (ai, a) in m.atoms.iter().enumerate() {
        let rhs = -a.diff.constant;
        if a.diff.terms.len() == 1 && a.rel != Rel::Eq {
            let (v, coef) = a.diff.terms[0];
            if coef == 0.0 {
                continue;
            }
            let bound = rhs / coef;
            let j = index[&v];
            if (a.rel == Rel::Le) == (coef > 0.0) {
                p.tighten(j, f64::NEG_INFINITY, bound);
            } else {
                p.tighten(j, bound, f64::INFINITY);
            }
        } else {
            let lprel = match a.rel {
                Rel::Le => lp::Rel::Le,
                Rel::Ge => lp::Rel::Ge,
                Rel::Eq => lp::Rel::Eq,
            };
            p.add_constraint(
                a.diff.terms.iter().map(|&(v, c)| (index[&v], c)).collect(),
                lprel,
                rhs,
            );
            atom_of_row.push(ai);
        }
    }
    Some(LpView { problem: p, used, atom_of_row })
}
