//! The diagnostic face of the matrix classification pass: SD020–SD025.

use super::super::CheckedModel;
use super::{lp_view, LpView};
use crate::explain::var_name;
use lp::matrix::{MatrixAnalysis, RowClass, TuCertificate};
use sqlengine::diag::Diagnostic;

/// Per-code cap on individual findings; the rest fold into a summary.
const MAX_PER_CODE: usize = 8;

/// Run the matrix classification over the checked model and report
/// SD020 (row-class census + matrix summary), SD021/SD022 (total
/// unimodularity), SD023 (implied integrality), SD024 (set row over
/// non-binary variables) and SD025 (knapsack item over capacity).
pub fn matrix_rules(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    if !m.complete || m.atoms.is_empty() {
        return;
    }
    let Some(view) = lp_view(m) else {
        return;
    };
    // The classification serves integer machinery — cut separation,
    // integrality proofs, branching. On a pure LP it changes nothing,
    // so stay silent rather than annotate every continuous model.
    if view.problem.constraints.is_empty() || !view.problem.has_integers() {
        return;
    }
    let a = lp::matrix::analyze(&view.problem);

    sd020_census(m, &view, &a, diags);
    sd021_sd022_tu(m, &view, &a, diags);
    sd023_implied(m, &view, &a, diags);
    sd024_set_over_continuous(m, &view, diags);
    sd025_oversized_item(m, &view, &a, diags);
}

/// Render lp row `i` of the view in terms of the model's variable names.
fn render_row(m: &CheckedModel<'_>, view: &LpView, i: usize) -> String {
    let c = &view.problem.constraints[i];
    let parts: Vec<String> = c
        .coeffs
        .iter()
        .map(|&(j, a)| {
            let name = var_name(m.prob, view.used[j]);
            if a == 1.0 {
                name
            } else if a == -1.0 {
                format!("-{name}")
            } else {
                format!("{a}*{name}")
            }
        })
        .collect();
    format!("{} {} {}", parts.join(" + "), c.rel, c.rhs)
}

/// Rule label of the atom behind lp row `i`.
fn row_rule<'a>(m: &'a CheckedModel<'_>, view: &LpView, i: usize) -> &'a str {
    &m.atoms[view.atom_of_row[i]].rule
}

/// SD020 — the census note. Its detail is the full matrix summary
/// (`EXPLAIN CHECK`'s matrix-summary section): per-class counts with an
/// example row each, the TU verdict, and the implied-integrality tally.
fn sd020_census(
    m: &CheckedModel<'_>,
    view: &LpView,
    a: &MatrixAnalysis,
    diags: &mut Vec<Diagnostic>,
) {
    let census = a.census();
    if census.is_empty() {
        return;
    }
    let total = a.row_classes.len();
    let special = a.special_rows();
    let mut lines = vec![format!("rows: {total} total, {special} with special structure")];
    for &(class, count) in &census {
        let example = a
            .row_classes
            .iter()
            .position(|&c| c == class)
            .map(|i| format!("  e.g. {} (rule {})", render_row(m, view, i), row_rule(m, view, i)))
            .unwrap_or_default();
        lines.push(format!("{} × {}{example}", count, class_name(class)));
    }
    lines.push(match a.tu {
        Some(TuCertificate::Interval) => {
            "total unimodularity: proven (interval matrix)".to_string()
        }
        Some(TuCertificate::Network) => "total unimodularity: proven (network matrix)".to_string(),
        None => "total unimodularity: not detected".to_string(),
    });
    let declared = view.problem.integer.iter().filter(|&&b| b).count();
    if declared > 0 {
        lines.push(format!(
            "implied integrality: {} of {declared} integer declaration(s) provable",
            a.relaxable.len()
        ));
    }
    lines.push(
        "classified rows are registered with the solver as cut-separation candidates".to_string(),
    );
    diags.push(
        Diagnostic::note(
            "SD020",
            format!("matrix classification: {special} of {total} rows have special structure"),
        )
        .with_detail(lines.join("\n")),
    );
}

/// SD021/SD022 — whole-matrix total unimodularity.
fn sd021_sd022_tu(
    m: &CheckedModel<'_>,
    view: &LpView,
    a: &MatrixAnalysis,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(tu) = a.tu else { return };
    let (code, shape) = match tu {
        TuCertificate::Interval => ("SD021", "an interval matrix (consecutive ones in every row)"),
        TuCertificate::Network => {
            ("SD022", "a network matrix (±1 entries, two per column, bipartition exists)")
        }
    };
    let has_integers = view.problem.has_integers();
    let detail = if !has_integers {
        "the model has no integer variables, so the proof changes nothing here; \
         it documents that every vertex the simplex visits is integral when the \
         data is"
            .to_string()
    } else if a.integral_data {
        "every right-hand side and finite bound is integral, so every vertex of \
         the LP relaxation is integral: solverlp solves the relaxation once and \
         skips branch-and-bound entirely (0 nodes)"
            .to_string()
    } else {
        "the matrix is totally unimodular, but a fractional right-hand side or \
         bound keeps the LP vertices fractional; branch-and-bound still runs"
            .to_string()
    };
    let _ = m;
    diags.push(
        Diagnostic::note(code, format!("the constraint matrix is {shape} — totally unimodular"))
            .with_detail(detail),
    );
}

/// SD023 — per-variable implied integrality (the partial case; a full
/// TU proof is SD021/SD022's story).
fn sd023_implied(
    m: &CheckedModel<'_>,
    view: &LpView,
    a: &MatrixAnalysis,
    diags: &mut Vec<Diagnostic>,
) {
    if a.exactness_proof().is_some() || a.relaxable.is_empty() {
        return;
    }
    let names: Vec<String> =
        a.relaxable.iter().take(MAX_PER_CODE).map(|&j| var_name(m.prob, view.used[j])).collect();
    let declared = view.problem.integer.iter().filter(|&&b| b).count();
    let all = a.relaxable.len() == declared;
    diags.push(
        Diagnostic::note(
            "SD023",
            format!(
                "integrality of {} integer declaration(s) is implied by equality constraints{}",
                a.relaxable.len(),
                if all { " — branch-and-bound is unnecessary" } else { "" }
            ),
        )
        .with_detail(format!(
            "{}{} take integral values in every solution where the remaining \
             integer variables do; solverlp relaxes them so branch-and-bound \
             never branches on them",
            names.join(", "),
            if a.relaxable.len() > MAX_PER_CODE {
                format!(", ... ({} more)", a.relaxable.len() - MAX_PER_CODE)
            } else {
                String::new()
            }
        )),
    );
}

/// SD024 — an all-ones row with right-hand side 1 over at least one
/// non-binary variable: the set-partitioning shape only means "pick
/// one" when the variables are binary.
fn sd024_set_over_continuous(m: &CheckedModel<'_>, view: &LpView, diags: &mut Vec<Diagnostic>) {
    let p = &view.problem;
    let is_binary = |j: usize| p.integer[j] && p.lower[j] == 0.0 && p.upper[j] == 1.0;
    let mut found: Vec<String> = Vec::new();
    for (i, c) in p.constraints.iter().enumerate() {
        if c.coeffs.len() < 2 || c.rhs != 1.0 {
            continue;
        }
        if !c.coeffs.iter().all(|&(_, a)| a == 1.0) {
            continue;
        }
        if c.coeffs.iter().all(|&(j, _)| is_binary(j)) {
            continue; // the genuine set row; SD020 counted it
        }
        found.push(format!("'{}' (rule {})", render_row(m, view, i), row_rule(m, view, i)));
    }
    capped(diags, &found, |item| {
        Diagnostic::warning(
            "SD024",
            format!("set-partitioning-shaped constraint {item} ranges over non-binary variables"),
        )
        .with_detail(
            "a sum-to-one row only means \"choose one\" when its variables are \
             binary; as written, fractional splits satisfy it — declare the \
             decision columns int with bounds 0..1 if selection was intended",
        )
    });
}

/// SD025 — a knapsack item whose weight alone exceeds the capacity is
/// unselectable; the row silently forces it to zero.
fn sd025_oversized_item(
    m: &CheckedModel<'_>,
    view: &LpView,
    a: &MatrixAnalysis,
    diags: &mut Vec<Diagnostic>,
) {
    let p = &view.problem;
    let mut found: Vec<String> = Vec::new();
    for (i, c) in p.constraints.iter().enumerate() {
        if a.row_classes.get(i) != Some(&RowClass::Knapsack) {
            continue;
        }
        for &(j, w) in &c.coeffs {
            // Nonnegative variable with weight above capacity: any
            // positive value violates the row on its own.
            if w > c.rhs && p.lower[j] >= 0.0 {
                found.push(format!(
                    "{} in '{}' (rule {}): weight {w} exceeds capacity {}",
                    var_name(m.prob, view.used[j]),
                    render_row(m, view, i),
                    row_rule(m, view, i),
                    c.rhs
                ));
            }
        }
    }
    capped(diags, &found, |item| {
        Diagnostic::warning("SD025", format!("unselectable knapsack item: {item}")).with_detail(
            "the item's weight alone exceeds the row's capacity, so the \
                 variable is forced to 0 in every feasible solution; drop the \
                 item or fix the data if selection was meant to be possible",
        )
    });
}

fn class_name(c: RowClass) -> &'static str {
    match c {
        RowClass::SetPartitioning => "set-partitioning (sum = 1 over binaries)",
        RowClass::SetPacking => "set-packing (sum <= 1 over binaries)",
        RowClass::SetCovering => "set-covering (sum >= 1 over binaries)",
        RowClass::Cardinality => "cardinality (sum ⋈ k over binaries)",
        RowClass::VariableBound => "variable bound (binary switches a variable)",
        RowClass::Knapsack => "knapsack (weighted sum <= capacity)",
        RowClass::Cover => "cover (weighted sum >= demand)",
        RowClass::FlowBalance => "flow balance (±1 equality)",
        RowClass::General => "general",
    }
}

/// Emit up to [`MAX_PER_CODE`] individual findings, folding the rest
/// into one summary diagnostic (mirrors `presolve::diag::capped`).
fn capped(diags: &mut Vec<Diagnostic>, items: &[String], mk: impl Fn(&str) -> Diagnostic) {
    for item in items.iter().take(MAX_PER_CODE) {
        diags.push(mk(item));
    }
    if items.len() > MAX_PER_CODE {
        let sample = mk(&items[0]);
        diags.push(Diagnostic {
            message: format!("... and {} more findings like it", items.len() - MAX_PER_CODE),
            detail: None,
            ..sample
        });
    }
}
