//! `solvecheck` — a pre-solve static analyzer for `SOLVESELECT` models.
//!
//! SolveDB+'s pitch (paper §2) is that keeping the whole prescriptive
//! pipeline inside the DBMS makes problems *inspectable*. This module is
//! the layer that makes them *checkable*: it runs over a compiled
//! [`ProblemInstance`] before any solver is invoked and emits structured
//! [`Diagnostic`]s with stable `SD0xx` codes (catalogued in
//! `DIAGNOSTICS.md` at the repository root):
//!
//! | code  | severity | finding                                            |
//! |-------|----------|----------------------------------------------------|
//! | SD001 | warning  | decision variable unbounded in the objective direction |
//! | SD002 | error    | nonlinear rule but the linear solver is named      |
//! | SD003 | warning  | decision columns never referenced by any rule      |
//! | SD004 | error    | trivially infeasible constant constraint           |
//! | SD005 | warning/note | duplicate / shadowed constraints               |
//! | SD006 | warning  | objective contains no decision variables           |
//! | SD007 | error    | multiple objectives for a single-objective solver  |
//! | SD008 | error    | interval propagation proves the model infeasible   |
//! | SD009 | note     | decision variable implied fixed by propagation     |
//! | SD010 | warning/note | forcing / redundant constraint                 |
//! | SD011 | note     | empty or singleton constraint row                  |
//! | SD012 | warning  | pathological constraint coefficient range          |
//! | SD019 | note     | decomposable model: K independent blocks           |
//! | SD020 | note     | matrix classification: row-class census            |
//! | SD021 | note     | interval-matrix total unimodularity                |
//! | SD022 | note     | network-matrix total unimodularity                 |
//! | SD023 | note     | implied integrality of declared-integer variables  |
//! | SD024 | warning  | set-partitioning row over non-binary variables     |
//! | SD025 | warning  | knapsack item heavier than the row's capacity      |
//!
//! (SD013–SD018 are the *cross-statement* diagnostics of the whole-script
//! analyzer, `sqlengine::script` — see that module.)
//!
//! The analysis reuses the symbolic compilation machinery of §4.1: rules
//! are evaluated over a symbolically materialized environment, and the
//! checks inspect the resulting linear atoms. Evaluation is per-rule, so
//! one defective rule does not hide findings in the others. SD008–SD012
//! additionally run the abstract-interpretation engine of [`presolve`]
//! over those atoms. Everything here is advisory — the analyzer never
//! fails a statement itself; `Error`-level findings predict what the
//! solver will reject.

pub mod matrixclass;
pub mod presolve;
pub mod rules;
pub mod structure;

use crate::problem::{
    collect_constraints, materialize_env, rule_label, CellPatch, ProblemInstance,
};
use crate::symbolic::{as_linexpr, LinExpr, Rel};
use sqlengine::ast::{SolveStmt, Statement};
use sqlengine::catalog::{Ctes, Database};
use sqlengine::diag::{Diagnostic, Severity};
use sqlengine::error::{Error, Result};
use sqlengine::exec::run_query;
use sqlengine::parser;

/// Solvers whose rule system must compile to a *linear* program.
const LINEAR_SOLVERS: &[&str] = &["solverlp"];
/// Optimization solvers that accept exactly one objective.
const SINGLE_OBJECTIVE_SOLVERS: &[&str] = &["solverlp", "swarmops"];

/// Comparison tolerance for constant-constraint evaluation.
pub(crate) const TOL: f64 = 1e-9;

/// One flattened constraint atom, pre-digested for the checks:
/// `diff ⋈ 0` where `diff = lhs - rhs`, tagged with the rule it came
/// from.
pub struct Atom {
    pub diff: LinExpr,
    pub rel: Rel,
    /// Human-readable label of the originating rule.
    pub rule: String,
}

/// The digested model the structural checks run over.
pub struct CheckedModel<'a> {
    pub prob: &'a ProblemInstance,
    /// All constraint atoms that evaluated symbolically.
    pub atoms: Vec<Atom>,
    /// The objective, when it compiled to a linear expression.
    pub objective: Option<LinExpr>,
    pub minimize: bool,
    /// True when every rule (and the objective, if present) evaluated
    /// symbolically — the reference- and bound-sensitive checks (SD001,
    /// SD003) only run on a complete picture.
    pub complete: bool,
}

fn is_nonlinear(msg: &str) -> bool {
    msg.contains("not linear") || msg.contains("not representable in a linear program")
}

/// Run the analyzer over an already-compiled problem instance.
///
/// Never returns an error: a model the analyzer cannot evaluate at all
/// simply yields no (or only structural) findings, and the solver
/// reports the failure at run time.
pub fn check_problem(db: &Database, ctes: &Ctes, prob: &ProblemInstance) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let solver = prob.solver.as_deref();
    let linear_solver = solver.is_some_and(|s| LINEAR_SOLVERS.contains(&s));

    // No rules at all (predictive solvers, plain fills): nothing to
    // analyze — every variable is legitimately "unreferenced".
    let has_rules =
        prob.minimize.is_some() || prob.maximize.is_some() || !prob.subjectto.is_empty();
    if !has_rules {
        return diags;
    }

    // SD007: multiple objectives for a single-objective solver.
    let both_objectives = prob.minimize.is_some() && prob.maximize.is_some();
    if both_objectives && solver.is_some_and(|s| SINGLE_OBJECTIVE_SOLVERS.contains(&s)) {
        diags.push(
            Diagnostic::error(
                "SD007",
                format!(
                    "both MINIMIZE and MAXIMIZE are specified, but '{}' is single-objective",
                    solver.unwrap_or_default()
                ),
            )
            .with_detail(
                "drop one objective, or fold it into the other as a weighted sum \
                 (e.g. MINIMIZE cost - w * profit)",
            ),
        );
    }

    // Symbolic environment. Lenient: derived relations that cannot be
    // expressed symbolically stay unavailable, and rules referencing
    // them are reported per-rule below.
    let Ok(env) = materialize_env(db, ctes, prob, &CellPatch::Symbolic) else {
        return diags;
    };

    // Objective: evaluate symbolically unless both are present (then
    // SD007 already fired and neither compiles meaningfully).
    let (obj_query, minimize) = match (&prob.minimize, &prob.maximize) {
        (Some(q), None) => (Some(q), true),
        (None, Some(q)) => (Some(q), false),
        _ => (None, true),
    };
    let mut objective = None;
    if let Some(q) = obj_query {
        let clause = if minimize { "MINIMIZE" } else { "MAXIMIZE" };
        match run_query(db, &env, q, None).and_then(|t| t.scalar()).and_then(|v| as_linexpr(&v)) {
            Ok(lin) => {
                // SD006: objective with no decision variables.
                if lin.is_constant() {
                    diags.push(
                        Diagnostic::warning("SD006", "objective contains no decision variables")
                            .with_detail(format!(
                                "the {clause} expression evaluates to the constant {}; \
                                 every feasible solution is equally optimal",
                                lin.constant
                            )),
                    );
                }
                objective = Some(lin);
            }
            Err(e) if linear_solver && is_nonlinear(&e.to_string()) => {
                // SD002 (objective side). Mirror the runtime wording so
                // the diagnostic and the eventual solver error agree.
                diags.push(
                    Diagnostic::error(
                        "SD002",
                        format!("in {clause} rule {}: {e}", rule_label(None, q)),
                    )
                    .with_detail(
                        "nonlinear rules need a black-box solver: \
                         try USING swarmops.pso() instead of solverlp",
                    ),
                );
            }
            Err(_) => {} // the solver reports non-linearity findings at run time
        }
    }

    // Constraints, rule by rule, so one defective rule does not abort
    // analysis of the rest.
    let mut all_rules_ok = true;
    let mut atoms = Vec::new();
    for rule in &prob.subjectto {
        let label = rule_label(rule.alias.as_deref(), &rule.query);
        let mut collected = Vec::new();
        match collect_constraints(db, &env, std::slice::from_ref(rule), &mut collected) {
            Ok(()) => {
                for c in &collected {
                    for (l, rel, r) in c.atoms() {
                        atoms.push(Atom { diff: l.sub(r), rel, rule: label.clone() });
                    }
                }
            }
            Err(e) => {
                all_rules_ok = false;
                let msg = e.to_string();
                if msg.contains("trivially false") {
                    // SD004 (constant FALSE cell, caught during eval).
                    diags.push(Diagnostic::error("SD004", msg).with_detail(
                        "a constraint cell evaluated to constant FALSE; \
                         no assignment of the decision variables can satisfy it",
                    ));
                } else if linear_solver && is_nonlinear(&msg) {
                    diags.push(Diagnostic::error("SD002", msg).with_detail(
                        "nonlinear rules need a black-box solver: \
                         try USING swarmops.pso() instead of solverlp",
                    ));
                }
                // Other evaluation failures (unavailable derived
                // relations, type errors) are the solver's to report.
            }
        }
    }

    let complete = all_rules_ok && !both_objectives && (obj_query.is_none() || objective.is_some());
    let model = CheckedModel { prob, atoms, objective, minimize, complete };
    rules::sd004_infeasible_constants(&model, &mut diags);
    rules::sd005_duplicate_or_shadowed(&model, &mut diags);
    rules::sd001_unbounded_in_objective(&model, &mut diags);
    rules::sd003_unreferenced_columns(&model, &mut diags);
    presolve::diag::presolve_rules(&model, &mut diags);
    structure::sd019_decomposable(&model, &mut diags);
    matrixclass::diag::matrix_rules(&model, &mut diags);

    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(&b.code)));
    diags
}

/// Compile a `SOLVESELECT` and run the analyzer (the `EXPLAIN CHECK`
/// entry point). Errors only when the statement itself fails to compile
/// into a problem instance.
pub fn check_stmt(db: &Database, ctes: &Ctes, stmt: &SolveStmt) -> Result<Vec<Diagnostic>> {
    let prob = crate::problem::build_problem(db, ctes, stmt)?;
    Ok(check_problem(db, ctes, &prob))
}

/// Parse and check a single `SOLVESELECT` statement.
pub fn check_sql(db: &Database, sql: &str) -> Result<Vec<Diagnostic>> {
    match parser::parse_statement(sql)? {
        Statement::Solve(stmt) => check_stmt(db, &Ctes::new(), &stmt),
        Statement::Explain { stmt, .. } => check_stmt(db, &Ctes::new(), &stmt),
        _ => Err(Error::solver("CHECK is only defined for SOLVESELECT statements")),
    }
}

/// True when any diagnostic is `Error`-level (the model cannot solve as
/// written).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}
