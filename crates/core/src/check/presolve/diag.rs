//! The diagnostic face of the presolve fixpoint: SD008–SD012.
//!
//! The engine runs over the same digested atoms as the structural
//! checks in [`crate::check::rules`], mirroring `to_lp`'s translation:
//! single-variable non-equality atoms become initial bounds (so this
//! pass never re-reports what SD005 says about shadowed bounds), and
//! everything else becomes a propagation row. Findings derived from a
//! subset of the constraints remain valid for the whole model —
//! propagation only shrinks intervals, so an infeasibility, redundancy
//! or fixing proven early can never be retracted by more constraints.

use super::super::{Atom, CheckedModel, LINEAR_SOLVERS};
use super::{propagate, Infeasibility, Interval, Model, Row, RowRel};
use crate::explain::{render_linexpr, var_name};
use crate::symbolic::Rel;
use sqlengine::diag::Diagnostic;
use std::collections::BTreeMap;

/// Coefficient magnitude ratio beyond which SD012 fires.
const COEFF_RATIO_LIMIT: f64 = 1e8;
/// Per-code cap on individual findings; the rest fold into one summary.
const MAX_PER_CODE: usize = 8;

/// One engine row traced back to its source rule (for messages).
struct TracedRow {
    rule: String,
    rendered: String,
}

/// Run interval propagation over the checked model and report SD008
/// (proven infeasible), SD009 (implied-fixed variable), SD010
/// (redundant / forcing constraint), SD011 (empty or singleton row)
/// and SD012 (pathological coefficient range).
pub fn presolve_rules(m: &CheckedModel<'_>, diags: &mut Vec<Diagnostic>) {
    if m.atoms.is_empty() {
        return;
    }

    let n = m.prob.num_vars();
    let mut model = Model {
        intervals: vec![Interval::FREE; n],
        integer: m.prob.vars.iter().map(|v| v.integer).collect(),
        rows: Vec::new(),
    };
    let mut traced: Vec<TracedRow> = Vec::new();
    let (mut min_abs, mut max_abs) = (f64::INFINITY, 0.0f64);

    for a in &m.atoms {
        let terms = merged_terms(a);
        for &(_, c) in &terms {
            min_abs = min_abs.min(c.abs());
            max_abs = max_abs.max(c.abs());
        }
        let rhs = -a.diff.constant;
        match terms.len() {
            // Constant atoms: violated ones are SD004's; satisfied ones
            // add nothing and are worth a note.
            0 => {
                let violated = match a.rel {
                    Rel::Le => a.diff.constant > super::FEAS,
                    Rel::Ge => a.diff.constant < -super::FEAS,
                    Rel::Eq => a.diff.constant.abs() > super::FEAS,
                };
                if !violated {
                    diags.push(
                        Diagnostic::note(
                            "SD011",
                            format!(
                                "constraint in rule {} is trivially satisfied: {}",
                                a.rule,
                                render_atom(m, a)
                            ),
                        )
                        .with_detail(
                            "the decision variables cancel out, leaving a constant \
                             comparison that always holds; the constraint can be removed",
                        ),
                    );
                }
            }
            // Single-variable bounds mirror `to_lp`: they seed the
            // intervals instead of becoming rows (SD005 already covers
            // duplicate/shadowed bounds). Singleton equalities stay as
            // rows so the engine records the fixing (SD011).
            1 if a.rel != Rel::Eq => {
                let (v, c) = terms[0];
                let bound = rhs / c;
                let upper = (a.rel == Rel::Le) == (c > 0.0);
                let iv = if upper {
                    Interval::new(f64::NEG_INFINITY, bound)
                } else {
                    Interval::new(bound, f64::INFINITY)
                };
                model.intervals[v as usize] = model.intervals[v as usize].meet(iv);
            }
            _ => {
                let (row, rendered) = normalize_row(terms, a.rel, rhs, m);
                model.rows.push(row);
                traced.push(TracedRow { rule: a.rule.clone(), rendered });
            }
        }
    }

    // SD012 — pathological coefficient range (linear solvers factor the
    // matrix; ranges this wide destroy pivot accuracy).
    let linear_solver = m.prob.solver.as_deref().is_some_and(|s| LINEAR_SOLVERS.contains(&s));
    if linear_solver && min_abs > 0.0 && max_abs / min_abs > COEFF_RATIO_LIMIT {
        let orders = (max_abs / min_abs).log10().round();
        diags.push(
            Diagnostic::warning(
                "SD012",
                format!(
                    "constraint coefficients span {orders} orders of magnitude \
                     (|a| from {min_abs:e} to {max_abs:e})"
                ),
            )
            .with_detail(
                "rescale the model's units so coefficient magnitudes are comparable; \
                 ranges beyond 1e8 make simplex pivoting numerically unreliable",
            ),
        );
    }

    // First-pass classification: judge each row against the *declared*
    // bounds alone, so every finding is attributable to the single
    // constraint the user wrote. Cascaded reductions (normal presolve
    // work — clue pinning rippling through a one-hot encoding, say)
    // are healthy and render under `EXPLAIN PRESOLVE`, not as smells.
    let mut forcing: Vec<String> = Vec::new();
    let mut redundant: Vec<String> = Vec::new();
    let mut noop_singleton: Vec<String> = Vec::new();
    for (i, row) in model.rows.iter().enumerate() {
        let label = format!("'{}' (rule {})", traced[i].rendered, traced[i].rule);
        let (minact, maxact) = declared_activity(row, &model.intervals);
        let tol = super::FEAS * (1.0 + row.rhs.abs());
        if let [(j, c)] = row.coeffs[..] {
            // Only singleton *equalities* reach here (inequalities
            // seeded the intervals above). Pinning a cell is idiomatic
            // — flag just the no-op case where the declared bounds
            // already say the same thing.
            let iv = model.intervals[j];
            if row.rel == RowRel::Eq && iv.is_point() && (iv.lo - row.rhs / c).abs() <= tol {
                noop_singleton.push(label);
            }
            continue;
        }
        match row.rel {
            RowRel::Le => {
                if maxact <= row.rhs + tol {
                    redundant.push(label);
                } else if minact.is_finite() && minact >= row.rhs - tol {
                    forcing.push(label);
                }
            }
            RowRel::Eq => {
                let pinned_lo = minact.is_finite() && (minact - row.rhs).abs() <= tol;
                let pinned_hi = maxact.is_finite() && (maxact - row.rhs).abs() <= tol;
                if pinned_lo && pinned_hi {
                    redundant.push(label);
                } else if pinned_lo || pinned_hi {
                    forcing.push(label);
                }
            }
        }
    }

    let out = propagate(&model);

    // SD008 — propagation proves the model infeasible.
    if let Some(inf) = &out.infeasible {
        let detail = match inf {
            Infeasibility::RowActivity { row, minact, maxact } => format!(
                "constraint '{}' (rule {}) cannot be satisfied: its activity stays within \
                 [{minact}, {maxact}] under the propagated variable bounds",
                traced[*row].rendered, traced[*row].rule
            ),
            Infeasibility::EmptyBounds { var } => format!(
                "bound propagation empties the domain of {}: the constraints imply \
                 contradictory lower and upper bounds",
                var_name(m.prob, *var as u32)
            ),
        };
        diags.push(
            Diagnostic::error("SD008", "interval propagation proves the model infeasible")
                .with_detail(detail),
        );
        // Reductions logged before the contradiction are unreliable
        // partial states; report only the proof.
        return;
    }

    // SD009 — the constraints fully determine every decision variable:
    // the model solves, but there is no decision left to make.
    if !out.fixed.is_empty() && out.fixed.iter().all(Option::is_some) {
        let values: Vec<String> = out
            .fixed
            .iter()
            .enumerate()
            .take(MAX_PER_CODE)
            .filter_map(|(v, f)| f.map(|x| format!("{} = {x}", var_name(m.prob, v as u32))))
            .collect();
        diags.push(
            Diagnostic::warning(
                "SD009",
                "the constraints fix every decision variable before the solver runs",
            )
            .with_detail(format!(
                "bound propagation alone determines the unique feasible assignment \
                 ({}{}); the objective cannot influence the outcome",
                values.join(", "),
                if out.fixed.len() > MAX_PER_CODE { ", ..." } else { "" }
            )),
        );
    }

    // SD010 — forcing constraints (warning: satisfiable only with every
    // referenced variable at its declared bound, which usually means
    // the model is tighter than meant).
    capped(diags, &forcing, |item| {
        Diagnostic::warning("SD010", format!("constraint {item} is forcing")).with_detail(
            "under the declared bounds this constraint is satisfiable only with \
                 every variable it references pinned at a bound; if that is intended, \
                 fix the variables directly",
        )
    });

    // SD010 — redundant constraints (note).
    capped(diags, &redundant, |item| {
        Diagnostic::note("SD010", format!("constraint {item} is redundant")).with_detail(
            "the declared variable bounds already imply this constraint; it can \
                 be dropped without changing the feasible set",
        )
    });

    // SD011 — no-op singleton equalities.
    capped(diags, &noop_singleton, |item| {
        Diagnostic::note("SD011", format!("singleton equality {item} is a no-op")).with_detail(
            "the declared bounds already pin this variable to the same value; \
                 the constraint adds nothing",
        )
    });
}

/// Activity range of a row under a set of intervals. Lows only ever
/// accumulate finite values or `-inf` (and highs `+inf`), so the sums
/// never produce NaN.
fn declared_activity(row: &Row, iv: &[Interval]) -> (f64, f64) {
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for &(j, c) in &row.coeffs {
        let (a, b) =
            if c >= 0.0 { (c * iv[j].lo, c * iv[j].hi) } else { (c * iv[j].hi, c * iv[j].lo) };
        lo += a;
        hi += b;
    }
    (lo, hi)
}

/// Emit up to [`MAX_PER_CODE`] individual findings, folding the rest
/// into one summary diagnostic so large models stay readable.
fn capped(diags: &mut Vec<Diagnostic>, items: &[String], mk: impl Fn(&str) -> Diagnostic) {
    for item in items.iter().take(MAX_PER_CODE) {
        diags.push(mk(item));
    }
    if items.len() > MAX_PER_CODE {
        let sample = mk(&items[0]);
        diags.push(Diagnostic {
            message: format!("... and {} more findings like it", items.len() - MAX_PER_CODE),
            detail: None,
            ..sample
        });
    }
}

/// Merge duplicate variables in an atom's difference expression and
/// drop zero coefficients.
fn merged_terms(a: &Atom) -> Vec<(u32, f64)> {
    let mut merged: BTreeMap<u32, f64> = BTreeMap::new();
    for &(v, c) in &a.diff.terms {
        *merged.entry(v).or_insert(0.0) += c;
    }
    merged.into_iter().filter(|&(_, c)| c != 0.0).collect()
}

/// Normalize an atom into an engine row (`Ge` negated into `Le`) and
/// render it for messages.
fn normalize_row(
    terms: Vec<(u32, f64)>,
    rel: Rel,
    rhs: f64,
    m: &CheckedModel<'_>,
) -> (Row, String) {
    let rendered = {
        let parts: Vec<String> = terms
            .iter()
            .map(|&(v, c)| {
                if c == 1.0 {
                    var_name(m.prob, v)
                } else if c == -1.0 {
                    format!("-{}", var_name(m.prob, v))
                } else {
                    format!("{c}*{}", var_name(m.prob, v))
                }
            })
            .collect();
        let op = match rel {
            Rel::Le => "<=",
            Rel::Eq => "=",
            Rel::Ge => ">=",
        };
        format!("{} {op} {rhs}", parts.join(" + "))
    };
    let (coeffs, row_rel, row_rhs) = match rel {
        Rel::Ge => (terms.into_iter().map(|(v, c)| (v as usize, -c)).collect(), RowRel::Le, -rhs),
        Rel::Le => (terms.into_iter().map(|(v, c)| (v as usize, c)).collect(), RowRel::Le, rhs),
        Rel::Eq => (terms.into_iter().map(|(v, c)| (v as usize, c)).collect(), RowRel::Eq, rhs),
    };
    (Row { coeffs, rel: row_rel, rhs: row_rhs }, rendered)
}

/// Render an atom `diff ⋈ 0` for messages (mirrors `rules::render_atom`).
fn render_atom(m: &CheckedModel<'_>, a: &Atom) -> String {
    let op = match a.rel {
        Rel::Le => "<=",
        Rel::Eq => "=",
        Rel::Ge => ">=",
    };
    format!("{} {op} 0", render_linexpr(m.prob, &a.diff))
}
