//! Model reduction for `lp::Problem`: run the interval fixpoint, build
//! a smaller problem (fixed variables substituted out, redundant and
//! singleton rows removed, bounds tightened), and un-crush solutions of
//! the reduced problem back into the original variable space.

use super::{
    propagate, Counts, DropCause, FixCause, Infeasibility, Interval, Model, Outcome, Reduction,
    Row, RowRel,
};
use crate::explain::var_name;
use crate::problem::{compile_linear, to_lp, ProblemInstance};
use crate::symbolic::VarId;
use sqlengine::catalog::{Ctes, Database};
use std::collections::BTreeMap;

/// The result of presolving an [`lp::Problem`].
#[derive(Debug, Clone)]
pub struct Presolved {
    /// Variable count of the original problem.
    pub original_vars: usize,
    /// Row count of the original problem (after coefficient merging).
    pub original_rows: usize,
    /// The fixpoint outcome: intervals, fixings, reduction log.
    pub outcome: Outcome,
    /// The reduced problem (empty when the model is proven infeasible).
    pub reduced: lp::Problem,
    /// Reduced-space index → original variable index.
    pub kept: Vec<usize>,
}

impl Presolved {
    pub fn infeasible(&self) -> bool {
        self.outcome.infeasible.is_some()
    }

    pub fn counts(&self) -> Counts {
        self.outcome.counts()
    }

    /// Map a reduced-space point back onto the original variables:
    /// kept variables take the solved value, fixed variables their
    /// propagated value.
    pub fn uncrush(&self, x: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.original_vars];
        for (j, f) in self.outcome.fixed.iter().enumerate() {
            if let Some(v) = f {
                full[j] = *v;
            }
        }
        for (new, &old) in self.kept.iter().enumerate() {
            full[old] = x[new];
        }
        full
    }

    /// Un-crush a whole solution. The objective needs no adjustment:
    /// fixed variables' objective contributions were folded into the
    /// reduced problem's `objective_constant`.
    pub fn uncrush_solution(&self, sol: lp::Solution) -> lp::Solution {
        if sol.x.len() != self.kept.len() {
            // Infeasible/unbounded outcomes (and node-limited runs with
            // no incumbent) carry no point to map back.
            return sol;
        }
        let x = self.uncrush(&sol.x);
        lp::Solution { x, ..sol }
    }
}

/// Normalize an `lp::Problem` into the abstract [`Model`]: bounds
/// become intervals, `>=` rows are negated into `<=`, duplicate
/// coefficients are merged and zeros dropped. Rows keep their original
/// index so the reduction log stays renderable against the input.
pub fn model_of(p: &lp::Problem) -> Model {
    let intervals =
        (0..p.num_vars).map(|j| Interval::new(p.lower[j], p.upper[j])).collect::<Vec<_>>();
    let rows = p.constraints.iter().map(row_of).collect();
    Model { intervals, integer: p.integer.clone(), rows }
}

fn row_of(c: &lp::Constraint) -> Row {
    let mut merged: BTreeMap<usize, f64> = BTreeMap::new();
    for &(j, coef) in &c.coeffs {
        *merged.entry(j).or_insert(0.0) += coef;
    }
    let (mut coeffs, mut rhs): (Vec<(usize, f64)>, f64) =
        (merged.into_iter().filter(|&(_, coef)| coef != 0.0).collect(), c.rhs);
    let rel = match c.rel {
        lp::Rel::Le => RowRel::Le,
        lp::Rel::Eq => RowRel::Eq,
        lp::Rel::Ge => {
            for t in &mut coeffs {
                t.1 = -t.1;
            }
            rhs = -rhs;
            RowRel::Le
        }
    };
    Row { coeffs, rel, rhs }
}

/// Presolve an LP/MIP: propagate intervals to a fixpoint, then build
/// the reduced problem. Sound by construction — the feasible set is
/// preserved (bounds only shrink to implied bounds; removed rows are
/// implied by the surviving box), so optimal objective values match.
pub fn reduce(p: &lp::Problem) -> Presolved {
    let model = model_of(p);
    let outcome = propagate(&model);
    let original_rows = model.rows.len();

    if outcome.infeasible.is_some() {
        return Presolved {
            original_vars: p.num_vars,
            original_rows,
            outcome,
            reduced: if p.minimize { lp::Problem::minimize(0) } else { lp::Problem::maximize(0) },
            kept: vec![],
        };
    }

    let kept: Vec<usize> = (0..p.num_vars).filter(|&j| outcome.fixed[j].is_none()).collect();
    let mut remap = vec![usize::MAX; p.num_vars];
    for (new, &old) in kept.iter().enumerate() {
        remap[old] = new;
    }

    let mut r = if p.minimize {
        lp::Problem::minimize(kept.len())
    } else {
        lp::Problem::maximize(kept.len())
    };
    for (new, &old) in kept.iter().enumerate() {
        r.lower[new] = outcome.intervals[old].lo;
        r.upper[new] = outcome.intervals[old].hi;
        r.integer[new] = p.integer[old];
    }

    // Objective: fixed variables contribute constants.
    let mut constant = p.objective_constant;
    let mut objective = Vec::new();
    for &(j, c) in &p.objective {
        match outcome.fixed[j] {
            Some(v) => constant += c * v,
            None => objective.push((remap[j], c)),
        }
    }
    r.objective_constant = constant;
    r.set_objective(objective);

    // Surviving rows with fixed variables substituted out.
    for (ri, row) in model.rows.iter().enumerate() {
        if !outcome.live[ri] {
            continue;
        }
        let mut coeffs = Vec::with_capacity(row.coeffs.len());
        let mut rhs = row.rhs;
        for &(j, c) in &row.coeffs {
            match outcome.fixed[j] {
                Some(v) => rhs -= c * v,
                None => coeffs.push((remap[j], c)),
            }
        }
        if coeffs.is_empty() {
            continue; // fully substituted; propagation proved it holds
        }
        let rel = match row.rel {
            RowRel::Le => lp::Rel::Le,
            RowRel::Eq => lp::Rel::Eq,
        };
        r.add_constraint(coeffs, rel, rhs);
    }

    Presolved { original_vars: p.num_vars, original_rows, outcome, reduced: r, kept }
}

// ---------------------------------------------------------------------------
// EXPLAIN PRESOLVE rendering
// ---------------------------------------------------------------------------

/// How many reduction-log lines render before eliding the rest.
const MAX_LOG_LINES: usize = 40;

/// Compile a problem instance to its LP, presolve it, and render the
/// reduction log — the body of `EXPLAIN PRESOLVE SOLVESELECT`. Models
/// that do not compile to a linear program get a one-line explanation
/// instead of an error: presolve simply does not apply to them.
pub fn explain_presolve(db: &Database, ctes: &Ctes, prob: &ProblemInstance) -> Vec<String> {
    let rules = match compile_linear(db, ctes, prob) {
        Ok(r) => r,
        Err(e) => {
            return vec![format!(
                "presolve: rules do not compile to a linear program; no reductions apply ({e})"
            )];
        }
    };
    let (lp_prob, used) = to_lp(prob, &rules);
    let pre = reduce(&lp_prob);
    let name = |j: usize| var_name(prob, used[j]);

    let mut lines = Vec::new();
    if let Some(inf) = &pre.outcome.infeasible {
        lines.push("presolve: interval propagation proves the model infeasible".to_string());
        lines.push(match inf {
            Infeasibility::RowActivity { row, minact, maxact } => format!(
                "  row '{}' cannot hold: activity stays within [{minact}, {maxact}]",
                render_model_row(&model_of(&lp_prob).rows[*row], prob, &used),
            ),
            Infeasibility::EmptyBounds { var } => {
                format!("  the constraints imply contradictory bounds on {}", name(*var))
            }
        });
        return lines;
    }

    lines.push(format!(
        "presolve: {} vars, {} rows -> {} vars, {} rows",
        pre.original_vars,
        pre.original_rows,
        pre.reduced.num_vars,
        pre.reduced.constraints.len()
    ));
    let model = model_of(&lp_prob);
    let mut entries = Vec::new();
    for r in &pre.outcome.log {
        entries.push(match r {
            Reduction::Tightened { var, upper, old, new } => {
                let side = if *upper { "upper" } else { "lower" };
                format!("  tightened {}: {side} {old} -> {new}", name(*var))
            }
            Reduction::Fixed { var, value, cause } => {
                let why = match cause {
                    FixCause::Propagation => "bound propagation",
                    FixCause::Forcing => "forcing row",
                    FixCause::SingletonRow => "singleton equality",
                };
                format!("  fixed {} = {value} ({why})", name(*var))
            }
            Reduction::RowDropped { row, cause } => {
                let why = match cause {
                    DropCause::Redundant => "redundant",
                    DropCause::Forcing => "forcing",
                    DropCause::Singleton => "singleton",
                    DropCause::Empty => "empty",
                };
                format!(
                    "  removed row '{}' ({why})",
                    render_model_row(&model.rows[*row], prob, &used)
                )
            }
        });
    }
    let extra = entries.len().saturating_sub(MAX_LOG_LINES);
    lines.extend(entries.into_iter().take(MAX_LOG_LINES));
    if extra > 0 {
        lines.push(format!("  ... and {extra} more reductions"));
    }
    let c = pre.counts();
    lines.push(format!(
        "variables fixed: {}, bounds tightened: {}, rows removed: {}",
        c.cols_removed, c.bounds_tightened, c.rows_removed
    ));
    if pre.reduced.num_vars == 0 {
        lines.push("all variables fixed by propagation; no solver call needed".to_string());
    }
    lines
}

/// Render a normalized engine row back into `alias[row].col` terms.
fn render_model_row(row: &Row, prob: &ProblemInstance, used: &[VarId]) -> String {
    let parts: Vec<String> = row
        .coeffs
        .iter()
        .map(|&(j, c)| {
            let n = var_name(prob, used[j]);
            if c == 1.0 {
                n
            } else if c == -1.0 {
                format!("-{n}")
            } else {
                format!("{c}*{n}")
            }
        })
        .collect();
    let op = match row.rel {
        RowRel::Le => "<=",
        RowRel::Eq => "=",
    };
    format!("{} {op} {}", parts.join(" + "), row.rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_preserves_the_optimum() {
        // min x + y  s.t.  x = 2, x + y >= 5, y <= 100 (redundant),
        // 0 <= x,y <= 50. Optimum: x=2, y=3, obj 5.
        let mut p = lp::Problem::minimize(2);
        p.set_objective(vec![(0, 1.0), (1, 1.0)]);
        p.tighten(0, 0.0, 50.0);
        p.tighten(1, 0.0, 50.0);
        p.add_constraint(vec![(0, 1.0)], lp::Rel::Eq, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], lp::Rel::Ge, 5.0);
        p.add_constraint(vec![(1, 1.0)], lp::Rel::Le, 100.0);

        let pre = reduce(&p);
        assert!(!pre.infeasible());
        assert_eq!(pre.reduced.num_vars, 1); // x fixed at 2
        let reduced_sol = lp::solve(&pre.reduced);
        assert_eq!(reduced_sol.status, lp::Status::Optimal);
        let full = pre.uncrush_solution(reduced_sol.clone());
        assert!((full.objective - 5.0).abs() < 1e-6);
        assert!((full.x[0] - 2.0).abs() < 1e-6);
        assert!((full.x[1] - 3.0).abs() < 1e-6);

        let direct = lp::solve(&p);
        assert!((direct.objective - full.objective).abs() < 1e-6);
    }

    #[test]
    fn fully_fixed_model_reduces_to_zero_variables() {
        let mut p = lp::Problem::maximize(1);
        p.set_objective(vec![(0, 3.0)]);
        p.add_constraint(vec![(0, 1.0)], lp::Rel::Eq, 4.0);
        let pre = reduce(&p);
        assert_eq!(pre.reduced.num_vars, 0);
        assert_eq!(pre.reduced.constraints.len(), 0);
        assert!((pre.reduced.objective_constant - 12.0).abs() < 1e-9);
        assert_eq!(pre.uncrush(&[]), vec![4.0]);
    }

    #[test]
    fn infeasible_models_are_caught_before_the_solver() {
        let mut p = lp::Problem::minimize(1);
        p.tighten(0, 0.0, 1.0);
        p.add_constraint(vec![(0, 1.0)], lp::Rel::Ge, 2.0);
        let pre = reduce(&p);
        assert!(pre.infeasible());
    }

    #[test]
    fn integer_rounding_makes_relaxation_integral() {
        // max x, x integer, 2x <= 7 → presolve gives x <= 3; the LP
        // relaxation of the reduced problem is already integral.
        let mut p = lp::Problem::maximize(1);
        p.set_objective(vec![(0, 1.0)]);
        p.integer[0] = true;
        p.tighten(0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(0, 2.0)], lp::Rel::Le, 7.0);
        let pre = reduce(&p);
        assert_eq!(pre.reduced.upper[0], 3.0);
        let (sol, stats) = lp::mip::branch_and_bound_stats(&pre.reduced, Default::default());
        assert_eq!(sol.status, lp::Status::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-6);
        // An integral root relaxation means no branching at all.
        assert_eq!(stats.nodes_explored, 0, "root relaxation should be integral");

        // Without presolve the relaxation tops out at x = 3.5 and the
        // search has to branch.
        let (off_sol, off_stats) = lp::mip::branch_and_bound_stats(&p, Default::default());
        assert!((off_sol.objective - 3.0).abs() < 1e-6);
        assert!(off_stats.nodes_explored > stats.nodes_explored);
    }

    #[test]
    fn counts_report_removed_structure() {
        let mut p = lp::Problem::minimize(2);
        p.tighten(0, 0.0, 1.0);
        p.tighten(1, 0.0, 1.0);
        p.add_constraint(vec![(0, 1.0)], lp::Rel::Eq, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], lp::Rel::Le, 10.0);
        let pre = reduce(&p);
        let c = pre.counts();
        assert_eq!(c.cols_removed, 1);
        assert_eq!(c.rows_removed, 2);
    }

    #[test]
    fn ge_rows_normalize_and_duplicate_coefficients_merge() {
        let c = lp::Constraint::new(vec![(0, 1.0), (0, 1.0), (1, 0.0)], lp::Rel::Ge, 4.0);
        let row = row_of(&c);
        assert_eq!(row.rel, RowRel::Le);
        assert_eq!(row.coeffs, vec![(0, -2.0)]);
        assert_eq!(row.rhs, -4.0);
    }
}
